//! Plan binding and batch execution.
//!
//! [`Executor::bind`] compiles a [`QueryPlan`] against a concrete
//! [`TpchData`]: aliases become slot indices, column names become column
//! references, string literals become dictionary-code masks, and each join
//! edge gets a primary-key hash index (built once per dataset and shared
//! through [`IndexCache`] — the multi-tenant AQP system binds the same 22
//! plans for every submitted job). [`Executor::process_rows`] then performs
//! genuine per-row work: hash-join probes, predicate evaluation, and
//! aggregate updates, returning operation counts the cost model converts to
//! virtual time.
//!
//! # Parallel batch execution
//!
//! Batch execution is the data plane of the control-plane/data-plane split
//! (see DESIGN.md): [`Executor::process_rows_with`] cuts a batch into
//! fixed-size row chunks ([`PAR_CHUNK_ROWS`], independent of the thread
//! count), evaluates joins/filters/expressions per chunk on a
//! [`rotary_par::ThreadPool`], and folds the chunk outputs back serially in
//! **fixed chunk order**. Two fold strategies exist:
//!
//! * **replay** (the default, used by every system path): chunks emit the
//!   surviving rows' group keys and expression values, and the fold replays
//!   `AggState::update` in original row order — *bit-identical* to the
//!   row-at-a-time oracle at every thread count, which is what keeps the
//!   EXPERIMENTS.md calibrations valid;
//! * **state merge** ([`Executor::process_rows_with_merge`]): chunks fold
//!   into per-chunk group accumulators that are combined with the parallel
//!   Welford merge in chunk order — still deterministic across thread
//!   counts (the chunk grid is fixed), maximally parallel, but rounded
//!   differently from the sequential fold, so it is reserved for paths
//!   without legacy calibrations.
//!
//! # Columnar data plane
//!
//! Since the columnar rewrite, every chunk — including the sequential
//! [`Executor::process_rows`] path, which is just the chunk loop run inline
//! — is evaluated by [`crate::columnar`]: batch hash probes through
//! deterministic open-addressed [`crate::kernels::PkIndex`]es, predicate
//! trees folded into selection bitmaps, and column-at-a-time expression
//! kernels. The pre-rewrite row interpreter survives as
//! [`Executor::process_rows_rowwise`], the oracle the columnar engine is
//! proven bit-identical against (`tests/kernel_equivalence.rs`, the golden
//! trace, and the determinism suite).

use std::collections::BTreeMap;
use std::sync::Arc;

use rotary_core::RotaryError;
use rotary_par::ThreadPool;
use rotary_tpch::date::year_of;
use rotary_tpch::{Column, Table, TpchData};

use crate::agg::AggState;
use crate::columnar::{self, ChunkScratch, FoldCost};
use crate::expr::{CmpOp, ColRef, Expr, Pred};
use crate::kernels::{PkIndex, PkIndex2};
use crate::plan::{GroupKey, QueryPlan};

/// A shared single-column primary-key index (deterministic open addressing —
/// see [`crate::kernels::PkIndex`]).
type SingleIndex = Arc<PkIndex>;
/// A shared composite (two-column) primary-key index.
type CompositeIndex = Arc<PkIndex2>;

/// Shared primary-key indexes, keyed by `(table, key-columns)`.
///
/// One cache must only ever be used with the dataset it was first populated
/// from; the AQP system owns one cache per dataset.
#[derive(Debug, Default)]
pub struct IndexCache {
    single: BTreeMap<(String, String), SingleIndex>,
    composite: BTreeMap<(String, String, String), CompositeIndex>,
}

impl IndexCache {
    /// An empty cache.
    pub fn new() -> IndexCache {
        IndexCache::default()
    }

    fn single_index(&mut self, table: &Table, key: &str) -> SingleIndex {
        self.single
            .entry((table.name().to_string(), key.to_string()))
            .or_insert_with(|| {
                let Column::Int(values) = table.column_required(key) else {
                    panic!("primary key column {key} must be Int");
                };
                Arc::new(PkIndex::build(values))
            })
            .clone()
    }

    fn composite_index(&mut self, table: &Table, key_a: &str, key_b: &str) -> CompositeIndex {
        self.composite
            .entry((table.name().to_string(), key_a.to_string(), key_b.to_string()))
            .or_insert_with(|| {
                let (Column::Int(a), Column::Int(b)) =
                    (table.column_required(key_a), table.column_required(key_b))
                else {
                    panic!("composite key columns {key_a}/{key_b} must be Int");
                };
                Arc::new(PkIndex2::build(a, b))
            })
            .clone()
    }

    /// Total entries across all cached indexes (for memory estimation).
    pub fn total_entries(&self) -> usize {
        self.single.values().map(|m| m.len()).sum::<usize>()
            + self.composite.values().map(|m| m.len()).sum::<usize>()
    }
}

/// A bound join index — shared, deterministic, probe-only.
#[derive(Debug, Clone)]
pub(crate) enum BoundIndex {
    /// Single-column primary key.
    Single(SingleIndex),
    /// Two-column composite primary key.
    Composite(CompositeIndex),
}

/// One bound join edge: FK columns on `src_slot` probing `index`.
#[derive(Debug, Clone)]
pub(crate) struct BoundEdge<'a> {
    pub(crate) src_slot: usize,
    pub(crate) fk: Vec<&'a Column>,
    pub(crate) index: BoundIndex,
}

/// A bound aggregate expression tree (slots + column refs resolved).
#[derive(Debug, Clone)]
pub(crate) enum BoundExpr<'a> {
    /// A column read through a slot's resolved row.
    Col {
        /// Slot whose resolved row id indexes the column.
        slot: usize,
        /// The column itself.
        col: &'a Column,
    },
    /// A literal constant.
    Lit(f64),
    /// Element-wise sum.
    Add(Box<BoundExpr<'a>>, Box<BoundExpr<'a>>),
    /// Element-wise difference.
    Sub(Box<BoundExpr<'a>>, Box<BoundExpr<'a>>),
    /// Element-wise product.
    Mul(Box<BoundExpr<'a>>, Box<BoundExpr<'a>>),
    /// Guarded element-wise division (`x / 0 = 0`).
    Div(Box<BoundExpr<'a>>, Box<BoundExpr<'a>>),
    /// Predicate-as-value: 1.0 when true, 0.0 when false.
    PredVal(Box<BoundPred<'a>>),
}

impl BoundExpr<'_> {
    fn eval(&self, ctx: &[u32]) -> f64 {
        match self {
            BoundExpr::Col { slot, col } => col.numeric(ctx[*slot] as usize),
            BoundExpr::Lit(v) => *v,
            BoundExpr::Add(a, b) => a.eval(ctx) + b.eval(ctx),
            BoundExpr::Sub(a, b) => a.eval(ctx) - b.eval(ctx),
            BoundExpr::Mul(a, b) => a.eval(ctx) * b.eval(ctx),
            BoundExpr::Div(a, b) => {
                let d = b.eval(ctx);
                if d == 0.0 {
                    0.0
                } else {
                    a.eval(ctx) / d
                }
            }
            BoundExpr::PredVal(p) => {
                if p.eval(ctx) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// A bound predicate tree. All leaves are total and side-effect-free — the
/// property the columnar bitmap evaluation relies on.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub(crate) enum BoundPred<'a> {
    True,
    IntRange { slot: usize, col: &'a Column, lo: i64, hi: i64 },
    IntIn { slot: usize, col: &'a Column, values: Vec<i64> },
    FloatRange { slot: usize, col: &'a Column, lo: f64, hi: f64 },
    DateRange { slot: usize, col: &'a Column, lo: i32, hi: i32 },
    CatMask { slot: usize, col: &'a Column, mask: Vec<bool> },
    RefCmp { a_slot: usize, a: &'a Column, op: CmpOp, b_slot: usize, b: &'a Column },
    And(Vec<BoundPred<'a>>),
    Or(Vec<BoundPred<'a>>),
    Not(Box<BoundPred<'a>>),
}

impl BoundPred<'_> {
    fn eval(&self, ctx: &[u32]) -> bool {
        match self {
            BoundPred::True => true,
            BoundPred::IntRange { slot, col, lo, hi } => {
                let v = col.int(ctx[*slot] as usize);
                *lo <= v && v <= *hi
            }
            BoundPred::IntIn { slot, col, values } => {
                values.contains(&col.int(ctx[*slot] as usize))
            }
            BoundPred::FloatRange { slot, col, lo, hi } => {
                let v = col.float(ctx[*slot] as usize);
                *lo <= v && v <= *hi
            }
            BoundPred::DateRange { slot, col, lo, hi } => {
                let v = col.date_at(ctx[*slot] as usize);
                *lo <= v && v < *hi
            }
            BoundPred::CatMask { slot, col, mask } => {
                mask[col.cat_code(ctx[*slot] as usize) as usize]
            }
            BoundPred::RefCmp { a_slot, a, op, b_slot, b } => {
                let x = a.numeric(ctx[*a_slot] as usize);
                let y = b.numeric(ctx[*b_slot] as usize);
                match op {
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Eq => x == y,
                }
            }
            BoundPred::And(ps) => ps.iter().all(|p| p.eval(ctx)),
            BoundPred::Or(ps) => ps.iter().any(|p| p.eval(ctx)),
            BoundPred::Not(p) => !p.eval(ctx),
        }
    }
}

/// A bound group-by key extractor.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub(crate) enum BoundGroup<'a> {
    Raw { slot: usize, col: &'a Column },
    Year { slot: usize, col: &'a Column },
}

impl BoundGroup<'_> {
    fn eval(&self, ctx: &[u32]) -> i64 {
        match self {
            BoundGroup::Raw { slot, col } => match col {
                Column::Int(v) => v[ctx[*slot] as usize],
                Column::Date(v) => v[ctx[*slot] as usize] as i64,
                Column::Cat { codes, .. } => codes[ctx[*slot] as usize] as i64,
                Column::Float(_) => {
                    // Unreachable in practice: `Executor::bind` rejects
                    // float group columns with a typed error before any
                    // BoundGroup is constructed.
                    debug_assert!(false, "bind rejects float group columns");
                    0
                }
            },
            BoundGroup::Year { slot, col } => year_of(col.date_at(ctx[*slot] as usize)) as i64,
        }
    }
}

/// Work counters for one `process_rows` call; the cost model converts these
/// to virtual time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Fact rows scanned.
    pub rows_scanned: u64,
    /// Hash-join probes performed.
    pub probes: u64,
    /// Rows that survived joins + filter and updated aggregates.
    pub rows_aggregated: u64,
}

impl BatchStats {
    /// Total primitive row operations — the cost model's unit of work.
    pub fn row_ops(&self) -> u64 {
        self.rows_scanned + self.probes + self.rows_aggregated
    }

    /// Accumulates another batch's counters.
    pub fn add(&mut self, other: BatchStats) {
        self.rows_scanned += other.rows_scanned;
        self.probes += other.probes;
        self.rows_aggregated += other.rows_aggregated;
    }
}

/// Rows per parallel chunk. The chunk grid is a function of the batch
/// alone — never of the thread count — so any pool size produces the same
/// decomposition and, with the fixed-order fold, the same result.
pub const PAR_CHUNK_ROWS: usize = 1024;

/// Batches below this many rows skip the fan-out in
/// [`Executor::process_rows_with`]; the replay fold makes the outcome
/// bit-identical either way, so the threshold is purely a latency knob.
pub const PAR_MIN_ROWS: usize = 2 * PAR_CHUNK_ROWS;

/// A plan bound to a dataset, ready to consume fact-row batches.
#[derive(Debug)]
pub struct Executor<'a> {
    fact_rows: usize,
    pub(crate) edges: Vec<BoundEdge<'a>>,
    pub(crate) filter: BoundPred<'a>,
    pub(crate) groups: Vec<BoundGroup<'a>>,
    pub(crate) agg_exprs: Vec<BoundExpr<'a>>,
    state: AggState,
    totals: BatchStats,
    ctx_buf: Vec<u32>,
    key_buf: Vec<i64>,
    val_buf: Vec<f64>,
    scratch: ChunkScratch,
}

struct Binder<'a> {
    slots: Vec<&'a Table>,
    aliases: Vec<String>,
}

impl<'a> Binder<'a> {
    fn slot_of(&self, alias: &Option<String>) -> Result<usize, String> {
        match alias {
            None => Ok(0),
            Some(a) => self
                .aliases
                .iter()
                .position(|x| x == a)
                .map(|i| i + 1)
                .ok_or_else(|| format!("unknown alias {a}")),
        }
    }

    fn column(&self, r: &ColRef) -> Result<(usize, &'a Column), String> {
        let slot = self.slot_of(&r.alias)?;
        let table = self.slots[slot];
        table
            .column(&r.column)
            .map(|c| (slot, c))
            .ok_or_else(|| format!("table {} has no column {}", table.name(), r.column))
    }

    fn pred(&self, p: &Pred) -> Result<BoundPred<'a>, String> {
        Ok(match p {
            Pred::True => BoundPred::True,
            Pred::IntRange { col, lo, hi } => {
                let (slot, c) = self.column(col)?;
                BoundPred::IntRange { slot, col: c, lo: *lo, hi: *hi }
            }
            Pred::IntIn { col, values } => {
                let (slot, c) = self.column(col)?;
                BoundPred::IntIn { slot, col: c, values: values.clone() }
            }
            Pred::FloatRange { col, lo, hi } => {
                let (slot, c) = self.column(col)?;
                BoundPred::FloatRange { slot, col: c, lo: *lo, hi: *hi }
            }
            Pred::DateRange { col, lo, hi } => {
                let (slot, c) = self.column(col)?;
                BoundPred::DateRange { slot, col: c, lo: *lo, hi: *hi }
            }
            Pred::CatEq { col, value } => self.cat_mask(col, |s| s == value)?,
            Pred::CatIn { col, values } => self.cat_mask(col, |s| values.iter().any(|v| v == s))?,
            Pred::CatPrefix { col, prefix } => self.cat_mask(col, |s| s.starts_with(prefix))?,
            Pred::CatContains { col, substr } => self.cat_mask(col, |s| s.contains(substr))?,
            Pred::RefCmp { a, op, b } => {
                let (a_slot, ac) = self.column(a)?;
                let (b_slot, bc) = self.column(b)?;
                BoundPred::RefCmp { a_slot, a: ac, op: *op, b_slot, b: bc }
            }
            Pred::And(ps) => {
                BoundPred::And(ps.iter().map(|p| self.pred(p)).collect::<Result<_, _>>()?)
            }
            Pred::Or(ps) => {
                BoundPred::Or(ps.iter().map(|p| self.pred(p)).collect::<Result<_, _>>()?)
            }
            Pred::Not(p) => BoundPred::Not(Box::new(self.pred(p)?)),
        })
    }

    fn cat_mask(
        &self,
        col: &ColRef,
        matches: impl Fn(&str) -> bool,
    ) -> Result<BoundPred<'a>, String> {
        let (slot, c) = self.column(col)?;
        let Column::Cat { dict, .. } = c else {
            return Err(format!("{col} is not a category column"));
        };
        let mask = dict.iter().map(|s| matches(s)).collect();
        Ok(BoundPred::CatMask { slot, col: c, mask })
    }

    fn expr(&self, e: &Expr) -> Result<BoundExpr<'a>, String> {
        Ok(match e {
            Expr::Col(c) => {
                let (slot, col) = self.column(c)?;
                BoundExpr::Col { slot, col }
            }
            Expr::Lit(v) => BoundExpr::Lit(*v),
            Expr::Add(a, b) => BoundExpr::Add(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Sub(a, b) => BoundExpr::Sub(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Mul(a, b) => BoundExpr::Mul(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Div(a, b) => BoundExpr::Div(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::PredVal(p) => BoundExpr::PredVal(Box::new(self.pred(p)?)),
        })
    }
}

impl<'a> Executor<'a> {
    /// Binds a plan to a dataset, building/reusing hash indexes via `cache`.
    ///
    /// Binding failures (unknown tables or columns, alias misuse,
    /// unsupported join shapes, float group columns) come back as
    /// [`RotaryError::PlanBind`] carrying the plan label.
    pub fn bind(
        plan: &QueryPlan,
        data: &'a TpchData,
        cache: &mut IndexCache,
    ) -> rotary_core::Result<Executor<'a>> {
        Executor::bind_inner(plan, data, cache)
            .map_err(|message| RotaryError::PlanBind { plan: plan.label.clone(), message })
    }

    fn bind_inner(
        plan: &QueryPlan,
        data: &'a TpchData,
        cache: &mut IndexCache,
    ) -> Result<Executor<'a>, String> {
        plan.validate()?;
        let fact =
            data.table(&plan.fact).ok_or_else(|| format!("unknown fact table {}", plan.fact))?;
        let mut binder = Binder { slots: vec![fact], aliases: Vec::new() };
        let mut edges = Vec::with_capacity(plan.joins.len());
        for edge in &plan.joins {
            let target = data
                .table(&edge.table)
                .ok_or_else(|| format!("unknown join table {}", edge.table))?;
            // All FK columns of one edge must come from the same slot.
            let mut src_slot = None;
            let mut fk_cols = Vec::with_capacity(edge.fk.len());
            for fk in &edge.fk {
                let (slot, col) = binder.column(fk)?;
                if *src_slot.get_or_insert(slot) != slot {
                    return Err(format!("join {}: FK columns span slots", edge.alias));
                }
                fk_cols.push(col);
            }
            let index = match edge.pk.as_slice() {
                [k] => BoundIndex::Single(cache.single_index(target, k)),
                [k1, k2] => BoundIndex::Composite(cache.composite_index(target, k1, k2)),
                _ => return Err(format!("join {}: unsupported key arity", edge.alias)),
            };
            let src_slot = src_slot.ok_or_else(|| format!("join {}: no FK columns", edge.alias))?;
            edges.push(BoundEdge { src_slot, fk: fk_cols, index });
            binder.slots.push(target);
            binder.aliases.push(edge.alias.clone());
        }

        let filter = binder.pred(&plan.filter)?;
        let groups = plan
            .group_by
            .iter()
            .map(|g| {
                let (slot, col) = binder.column(g.col())?;
                if matches!((g, col), (GroupKey::Raw(_), Column::Float(_))) {
                    return Err(format!("cannot group by float column {}", g.col()));
                }
                Ok(match g {
                    GroupKey::Raw(_) => BoundGroup::Raw { slot, col },
                    GroupKey::Year(_) => BoundGroup::Year { slot, col },
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let agg_exprs = plan
            .aggregates
            .iter()
            .map(|a| binder.expr(&a.expr))
            .collect::<Result<Vec<_>, String>>()?;
        let funcs = plan.aggregates.iter().map(|a| a.func).collect();

        let slots = binder.slots.len();
        Ok(Executor {
            fact_rows: fact.rows(),
            edges,
            filter,
            groups,
            agg_exprs,
            state: AggState::new(funcs),
            totals: BatchStats::default(),
            ctx_buf: vec![0; slots],
            key_buf: Vec::new(),
            val_buf: Vec::new(),
            scratch: ChunkScratch::default(),
        })
    }

    /// Navigates one fact row: resolves every join edge into `ctx` and
    /// applies the filter. Returns `true` iff the row survives (inner-join
    /// semantics: any missed probe drops the row). Used only by the
    /// row-at-a-time oracle path ([`Executor::process_rows_rowwise`]).
    #[inline]
    fn resolve_row(&self, row: u32, ctx: &mut [u32], stats: &mut BatchStats) -> bool {
        debug_assert!((row as usize) < self.fact_rows, "row index out of range");
        ctx[0] = row;
        for (i, edge) in self.edges.iter().enumerate() {
            stats.probes += 1;
            let src = ctx[edge.src_slot] as usize;
            let hit = match &edge.index {
                BoundIndex::Single(index) => index.get(edge.fk[0].int(src)),
                BoundIndex::Composite(index) => index.get(edge.fk[0].int(src), edge.fk[1].int(src)),
            };
            match hit {
                Some(target_row) => ctx[i + 1] = target_row,
                None => return false, // inner-join semantics
            }
        }
        self.filter.eval(ctx)
    }

    /// Processes a batch of fact-row indices, updating aggregate state.
    ///
    /// This is the sequential columnar path: the batch is cut into the same
    /// fixed [`PAR_CHUNK_ROWS`] grid the parallel paths use, each chunk is
    /// evaluated by the vectorized kernels in [`crate::columnar`], and the
    /// surviving rows replay through `AggState::update` in original row
    /// order — bit-identical to [`Executor::process_rows_rowwise`].
    pub fn process_rows(&mut self, rows: &[u32]) -> BatchStats {
        let ka = self.groups.len();
        let va = self.agg_exprs.len();
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut stats = BatchStats::default();
        for chunk in rows.chunks(PAR_CHUNK_ROWS) {
            let out = columnar::eval_chunk(self, chunk, &mut scratch);
            stats.add(out.stats);
            for r in 0..out.stats.rows_aggregated as usize {
                self.state.update(&out.keys[r * ka..(r + 1) * ka], &out.vals[r * va..(r + 1) * va]);
            }
        }
        self.scratch = scratch;
        self.totals.add(stats);
        stats
    }

    /// The pre-columnar row-at-a-time interpreter, kept verbatim as the
    /// oracle the columnar engine is proven bit-identical against (golden
    /// trace, kernel-equivalence suite, determinism tests). Semantics and
    /// counters match [`Executor::process_rows`] exactly.
    pub fn process_rows_rowwise(&mut self, rows: &[u32]) -> BatchStats {
        let mut stats = BatchStats { rows_scanned: rows.len() as u64, ..Default::default() };
        let mut ctx = std::mem::take(&mut self.ctx_buf);
        let mut key = std::mem::take(&mut self.key_buf);
        let mut val = std::mem::take(&mut self.val_buf);
        for &row in rows {
            if !self.resolve_row(row, &mut ctx, &mut stats) {
                continue;
            }
            key.clear();
            for g in &self.groups {
                key.push(g.eval(&ctx));
            }
            val.clear();
            for e in &self.agg_exprs {
                val.push(e.eval(&ctx));
            }
            self.state.update(&key, &val);
            stats.rows_aggregated += 1;
        }
        self.ctx_buf = ctx;
        self.key_buf = key;
        self.val_buf = val;
        self.totals.add(stats);
        stats
    }

    /// Parallel [`Executor::process_rows`] — the **replay** fold.
    ///
    /// The batch is cut into [`PAR_CHUNK_ROWS`]-sized chunks whose
    /// join/filter/expression work runs on `pool` through the columnar
    /// chunk evaluator; the surviving rows' keys and values are then
    /// replayed through `AggState::update` serially, in original row order.
    /// Because aggregate updates happen in exactly the sequence the
    /// sequential loop would apply them, the result is bit-identical to
    /// [`Executor::process_rows`] at every pool size.
    pub fn process_rows_with(&mut self, pool: &ThreadPool, rows: &[u32]) -> BatchStats {
        if pool.threads() <= 1 || rows.len() < PAR_MIN_ROWS {
            return self.process_rows(rows);
        }
        let chunks: Vec<&[u32]> = rows.chunks(PAR_CHUNK_ROWS).collect();
        let outputs = {
            let this: &Executor<'a> = self;
            pool.map(&chunks, |_, chunk| {
                let mut scratch = ChunkScratch::default();
                columnar::eval_chunk(this, chunk, &mut scratch)
            })
        };
        let key_arity = self.groups.len();
        let val_arity = self.agg_exprs.len();
        let mut stats = BatchStats::default();
        for out in &outputs {
            stats.add(out.stats);
            for r in 0..out.stats.rows_aggregated as usize {
                self.state.update(
                    &out.keys[r * key_arity..(r + 1) * key_arity],
                    &out.vals[r * val_arity..(r + 1) * val_arity],
                );
            }
        }
        self.totals.add(stats);
        stats
    }

    /// Parallel `process_rows` — the **state-merge** fold.
    ///
    /// Each chunk folds its surviving rows into per-group accumulators
    /// ([`crate::columnar::fold_chunk_groups`] — a flat first-seen table, no
    /// per-row map allocation); the per-chunk groups are merged into the
    /// running state with the parallel Welford combination in fixed chunk
    /// order. The chunk grid depends only on the batch, so the result is
    /// deterministic across thread counts — but the merge rounds
    /// differently than the sequential per-row fold, so this path is for
    /// workloads without legacy sequential calibrations. Chunking is applied
    /// even on a single-lane pool to keep the fold structure (and therefore
    /// the bits) independent of the pool size.
    pub fn process_rows_with_merge(&mut self, pool: &ThreadPool, rows: &[u32]) -> BatchStats {
        let ka = self.groups.len();
        let va = self.agg_exprs.len();
        let chunks: Vec<&[u32]> = rows.chunks(PAR_CHUNK_ROWS).collect();
        let locals = {
            let this: &Executor<'a> = self;
            let funcs = this.state.funcs();
            pool.map(&chunks, |_, chunk| {
                let mut scratch = ChunkScratch::default();
                let out = columnar::eval_chunk(this, chunk, &mut scratch);
                let groups = columnar::fold_chunk_groups(funcs, &out, ka, va);
                (out.stats, groups)
            })
        };
        let mut stats = BatchStats::default();
        for (chunk_stats, groups) in &locals {
            stats.add(*chunk_stats);
            for (key, accs) in groups {
                self.state.merge_group(key, accs);
            }
        }
        self.totals.add(stats);
        stats
    }

    /// Deterministic serial-fold operation counts for this executor on a
    /// concrete batch — see [`FoldCost`]. Pure function of the bound plan
    /// and the batch; does not touch aggregate state or totals.
    pub fn fold_cost(&self, rows: &[u32]) -> FoldCost {
        let ka = self.groups.len();
        let va = self.agg_exprs.len();
        let mut scratch = ChunkScratch::default();
        let mut cost = FoldCost::default();
        for chunk in rows.chunks(PAR_CHUNK_ROWS) {
            let out = columnar::eval_chunk(self, chunk, &mut scratch);
            cost.chunks += 1;
            cost.parallel_row_ops += out.stats.row_ops();
            cost.replay_serial_ops += out.stats.rows_aggregated;
            cost.merge_serial_ops +=
                columnar::fold_chunk_groups(self.state.funcs(), &out, ka, va).len() as u64;
        }
        cost
    }

    /// Processes the *entire* fact table (ground-truth computation).
    pub fn process_all(&mut self) -> BatchStats {
        let rows: Vec<u32> = (0..self.fact_rows as u32).collect();
        self.process_rows(&rows)
    }

    /// Parallel [`Executor::process_all`] via the replay fold — bit-identical
    /// to the sequential scan at every pool size.
    pub fn process_all_with(&mut self, pool: &ThreadPool) -> BatchStats {
        let rows: Vec<u32> = (0..self.fact_rows as u32).collect();
        self.process_rows_with(pool, &rows)
    }

    /// The running aggregate state.
    pub fn state(&self) -> &AggState {
        &self.state
    }

    /// Cumulative work counters since binding.
    pub fn totals(&self) -> BatchStats {
        self.totals
    }

    /// Rows in the fact table.
    pub fn fact_rows(&self) -> usize {
        self.fact_rows
    }

    /// Number of join edges (for the cost model).
    pub fn join_count(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggFunc, AggSpec};
    use crate::plan::{JoinEdge, QueryClass};
    use rotary_tpch::{date, Generator};
    use std::collections::HashMap;

    fn data() -> TpchData {
        Generator::new(11, 0.002).generate()
    }

    fn q6ish() -> QueryPlan {
        QueryPlan {
            label: "q6ish".into(),
            fact: "lineitem".into(),
            joins: vec![],
            filter: Pred::And(vec![
                Pred::DateRange {
                    col: ColRef::fact("l_shipdate"),
                    lo: date(1994, 1, 1),
                    hi: date(1995, 1, 1),
                },
                Pred::IntRange { col: ColRef::fact("l_quantity"), lo: 1, hi: 23 },
            ]),
            group_by: vec![],
            aggregates: vec![
                AggSpec::new(
                    "revenue",
                    AggFunc::Sum,
                    Expr::Mul(
                        Box::new(Expr::Col(ColRef::fact("l_extendedprice"))),
                        Box::new(Expr::Col(ColRef::fact("l_discount"))),
                    ),
                ),
                AggSpec::count("n"),
            ],
            class: QueryClass::Light,
        }
    }

    #[test]
    fn scalar_filter_aggregate_matches_naive() {
        let d = data();
        let mut cache = IndexCache::new();
        let mut exec = Executor::bind(&q6ish(), &d, &mut cache).unwrap();
        exec.process_all();

        // Naive recomputation.
        let li = &d.lineitem;
        let mut expect = 0.0;
        let mut count = 0u64;
        for r in 0..li.rows() {
            let ship = li.column_required("l_shipdate").date_at(r);
            let qty = li.column_required("l_quantity").int(r);
            if ship >= date(1994, 1, 1) && ship < date(1995, 1, 1) && (1..=23).contains(&qty) {
                expect += li.column_required("l_extendedprice").float(r)
                    * li.column_required("l_discount").float(r);
                count += 1;
            }
        }
        assert!(count > 0, "test data too small for the predicate");
        let got = exec.state().combined(0).unwrap();
        assert!((got - expect).abs() < 1e-6);
        assert_eq!(exec.state().combined(1), Some(count as f64));
    }

    #[test]
    fn join_chain_resolves_dimensions() {
        let d = data();
        let mut cache = IndexCache::new();
        // Revenue by customer nation name through lineitem→orders→customer→nation.
        let plan = QueryPlan {
            label: "j".into(),
            fact: "lineitem".into(),
            joins: vec![
                JoinEdge::new("o", "orders", ColRef::fact("l_orderkey"), "o_orderkey"),
                JoinEdge::new("c", "customer", ColRef::via("o", "o_custkey"), "c_custkey"),
                JoinEdge::new("cn", "nation", ColRef::via("c", "c_nationkey"), "n_nationkey"),
            ],
            filter: Pred::CatEq { col: ColRef::via("cn", "n_name"), value: "FRANCE".into() },
            group_by: vec![],
            aggregates: vec![AggSpec::count("n")],
            class: QueryClass::Medium,
        };
        let mut exec = Executor::bind(&plan, &d, &mut cache).unwrap();
        let stats = exec.process_all();
        assert_eq!(stats.rows_scanned as usize, d.lineitem.rows());
        assert!(stats.probes >= stats.rows_scanned, "every row probes orders");

        // Naive: count lineitems whose order's customer is French.
        let cust_nation: Vec<i64> = (0..d.customer.rows())
            .map(|r| d.customer.column_required("c_nationkey").int(r))
            .collect();
        let order_cust: HashMap<i64, i64> = (0..d.orders.rows())
            .map(|r| {
                (
                    d.orders.column_required("o_orderkey").int(r),
                    d.orders.column_required("o_custkey").int(r),
                )
            })
            .collect();
        let france = rotary_tpch::gen::NATIONS.iter().position(|&(n, _)| n == "FRANCE").unwrap();
        let mut expect = 0u64;
        for r in 0..d.lineitem.rows() {
            let ok = d.lineitem.column_required("l_orderkey").int(r);
            let cust = order_cust[&ok];
            if cust_nation[(cust - 1) as usize] == france as i64 {
                expect += 1;
            }
        }
        assert_eq!(exec.state().combined(0), Some(expect as f64));
    }

    #[test]
    fn grouped_aggregation_by_category() {
        let d = data();
        let mut cache = IndexCache::new();
        let plan = QueryPlan {
            label: "g".into(),
            fact: "lineitem".into(),
            joins: vec![],
            filter: Pred::True,
            group_by: vec![GroupKey::Raw(ColRef::fact("l_returnflag"))],
            aggregates: vec![AggSpec::new(
                "qty",
                AggFunc::Sum,
                Expr::Col(ColRef::fact("l_quantity")),
            )],
            class: QueryClass::Light,
        };
        let mut exec = Executor::bind(&plan, &d, &mut cache).unwrap();
        exec.process_all();
        // R, A, N all occur.
        assert_eq!(exec.state().group_count(), 3);
        // Total across groups equals the ungrouped sum.
        let total: f64 = (0..d.lineitem.rows())
            .map(|r| d.lineitem.column_required("l_quantity").int(r) as f64)
            .sum();
        assert!((exec.state().combined(0).unwrap() - total).abs() < 1e-6);
    }

    #[test]
    fn batches_equal_full_scan() {
        let d = data();
        let mut cache = IndexCache::new();
        let mut whole = Executor::bind(&q6ish(), &d, &mut cache).unwrap();
        whole.process_all();

        let mut batched = Executor::bind(&q6ish(), &d, &mut cache).unwrap();
        let mut src = rotary_tpch::BatchSource::new(3, d.lineitem.rows(), 1000);
        while let Some(batch) = src.next_batch() {
            batched.process_rows(batch);
        }
        // Floating-point sums depend on fold order; allow relative epsilon.
        let a = whole.state().combined(0).unwrap();
        let b = batched.state().combined(0).unwrap();
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        assert_eq!(whole.state().combined(1), batched.state().combined(1));
    }

    #[test]
    fn index_cache_shares_indexes() {
        let d = data();
        let mut cache = IndexCache::new();
        let plan = QueryPlan {
            label: "x".into(),
            fact: "lineitem".into(),
            joins: vec![JoinEdge::new("o", "orders", ColRef::fact("l_orderkey"), "o_orderkey")],
            filter: Pred::True,
            group_by: vec![],
            aggregates: vec![AggSpec::count("n")],
            class: QueryClass::Light,
        };
        let _a = Executor::bind(&plan, &d, &mut cache).unwrap();
        let entries_after_one = cache.total_entries();
        let _b = Executor::bind(&plan, &d, &mut cache).unwrap();
        assert_eq!(cache.total_entries(), entries_after_one, "index rebuilt instead of shared");
        assert_eq!(entries_after_one, d.orders.rows());
    }

    #[test]
    fn composite_join_probes_partsupp() {
        let d = data();
        let mut cache = IndexCache::new();
        let plan = QueryPlan {
            label: "q9ish".into(),
            fact: "lineitem".into(),
            joins: vec![JoinEdge::composite(
                "ps",
                "partsupp",
                [ColRef::fact("l_partkey"), ColRef::fact("l_suppkey")],
                ["ps_partkey", "ps_suppkey"],
            )],
            filter: Pred::True,
            group_by: vec![],
            aggregates: vec![AggSpec::count("n")],
            class: QueryClass::Heavy,
        };
        let mut exec = Executor::bind(&plan, &d, &mut cache).unwrap();
        let stats = exec.process_all();
        // Most (partkey, suppkey) pairs in lineitem are random and so do NOT
        // exist in partsupp (which has only 4 suppliers per part) — the
        // inner join drops those rows; some rows survive at this scale only
        // by luck, so just check the join executes and never exceeds input.
        assert!(stats.rows_aggregated <= stats.rows_scanned);
        assert_eq!(stats.probes, stats.rows_scanned);
    }

    #[test]
    fn bind_errors_are_descriptive() {
        let d = data();
        let bind_err = |plan: &QueryPlan| {
            let err = Executor::bind(plan, &d, &mut IndexCache::new()).unwrap_err();
            assert!(
                matches!(&err, rotary_core::RotaryError::PlanBind { plan: p, .. } if *p == plan.label),
                "expected PlanBind carrying the label, got {err:?}"
            );
            err.to_string()
        };

        let mut plan = q6ish();
        plan.fact = "widgets".into();
        assert!(bind_err(&plan).contains("unknown fact table"));

        let mut plan = q6ish();
        plan.filter = Pred::IntRange { col: ColRef::fact("nonexistent"), lo: 0, hi: 1 };
        assert!(bind_err(&plan).contains("no column"));

        let mut plan = q6ish();
        plan.filter = Pred::CatEq { col: ColRef::fact("l_quantity"), value: "X".into() };
        assert!(bind_err(&plan).contains("not a category column"));

        let mut plan = q6ish();
        plan.group_by = vec![GroupKey::Raw(ColRef::fact("l_extendedprice"))];
        assert!(bind_err(&plan).contains("cannot group by float column"));
    }

    #[test]
    fn division_expression_and_zero_guard() {
        let d = data();
        let mut cache = IndexCache::new();
        // avg(extendedprice / quantity) — per-unit price; quantity ≥ 1 so no
        // zero path, then a second aggregate dividing by (discount - discount)
        // to pin the division-by-zero guard at 0.
        let plan = QueryPlan {
            label: "div".into(),
            fact: "lineitem".into(),
            joins: vec![],
            filter: Pred::True,
            group_by: vec![],
            aggregates: vec![
                AggSpec::new(
                    "unit_price",
                    AggFunc::Avg,
                    Expr::Div(
                        Box::new(Expr::Col(ColRef::fact("l_extendedprice"))),
                        Box::new(Expr::Col(ColRef::fact("l_quantity"))),
                    ),
                ),
                AggSpec::new(
                    "zero",
                    AggFunc::Max,
                    Expr::Div(
                        Box::new(Expr::Lit(1.0)),
                        Box::new(Expr::Sub(
                            Box::new(Expr::Col(ColRef::fact("l_discount"))),
                            Box::new(Expr::Col(ColRef::fact("l_discount"))),
                        )),
                    ),
                ),
            ],
            class: QueryClass::Light,
        };
        let mut exec = Executor::bind(&plan, &d, &mut cache).unwrap();
        exec.process_all();
        let avg_unit = exec.state().combined(0).unwrap();
        // Unit prices are retail prices: ~900..2100.
        assert!((800.0..2300.0).contains(&avg_unit), "{avg_unit}");
        assert_eq!(exec.state().combined(1), Some(0.0), "x/0 must yield 0");
    }

    #[test]
    fn ref_cmp_le_and_eq_operators() {
        let d = data();
        let mut cache = IndexCache::new();
        let mut count_where = |op: CmpOp| {
            let plan = QueryPlan {
                label: "cmp".into(),
                fact: "lineitem".into(),
                joins: vec![],
                filter: Pred::RefCmp {
                    a: ColRef::fact("l_shipdate"),
                    op,
                    b: ColRef::fact("l_commitdate"),
                },
                group_by: vec![],
                aggregates: vec![AggSpec::count("n")],
                class: QueryClass::Light,
            };
            let mut exec = Executor::bind(&plan, &d, &mut cache).unwrap();
            exec.process_all();
            exec.state().combined(0).unwrap() as u64
        };
        let lt = count_where(CmpOp::Lt);
        let le = count_where(CmpOp::Le);
        let eq = count_where(CmpOp::Eq);
        assert_eq!(le, lt + eq, "Le = Lt + Eq partition");
        assert!(lt > 0, "some lines ship before commit");
    }

    #[test]
    fn cat_prefix_and_int_in_masks() {
        let d = data();
        let mut cache = IndexCache::new();
        let plan = QueryPlan {
            label: "mask".into(),
            fact: "lineitem".into(),
            joins: vec![JoinEdge::new("p", "part", ColRef::fact("l_partkey"), "p_partkey")],
            filter: Pred::And(vec![
                Pred::CatPrefix { col: ColRef::via("p", "p_type"), prefix: "PROMO".into() },
                Pred::IntIn { col: ColRef::via("p", "p_size"), values: vec![1, 2, 3, 4, 5] },
            ]),
            group_by: vec![],
            aggregates: vec![AggSpec::count("n")],
            class: QueryClass::Light,
        };
        let mut exec = Executor::bind(&plan, &d, &mut cache).unwrap();
        exec.process_all();
        // Naive check.
        let mut expect = 0u64;
        for r in 0..d.lineitem.rows() {
            let pk = d.lineitem.column_required("l_partkey").int(r) as usize - 1;
            let ty = d.part.column_required("p_type").cat_str(pk);
            let size = d.part.column_required("p_size").int(pk);
            if ty.starts_with("PROMO") && (1..=5).contains(&size) {
                expect += 1;
            }
        }
        assert_eq!(exec.state().combined(0), Some(expect as f64));
    }

    /// Bit-exact comparison of two executors' states: identical integer
    /// counters and identical per-group accumulator values down to the last
    /// bit. Uses `grouped_results` (sorted by key) so hash-map iteration
    /// order cannot leak into the comparison.
    fn assert_states_bit_identical(a: &Executor, b: &Executor) {
        assert_eq!(a.totals(), b.totals());
        let (ra, rb) = (a.state().grouped_results(), b.state().grouped_results());
        assert_eq!(ra.len(), rb.len());
        for ((ka, va), (kb, vb)) in ra.iter().zip(&rb) {
            assert_eq!(ka, kb);
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(
                    x.map(f64::to_bits),
                    y.map(f64::to_bits),
                    "group {ka:?}: {x:?} vs {y:?}"
                );
            }
        }
    }

    fn grouped_join_plan() -> QueryPlan {
        QueryPlan {
            label: "par".into(),
            fact: "lineitem".into(),
            joins: vec![JoinEdge::new("o", "orders", ColRef::fact("l_orderkey"), "o_orderkey")],
            filter: Pred::IntRange { col: ColRef::fact("l_quantity"), lo: 1, hi: 40 },
            group_by: vec![GroupKey::Raw(ColRef::fact("l_returnflag"))],
            aggregates: vec![
                AggSpec::new(
                    "rev",
                    AggFunc::Sum,
                    Expr::Mul(
                        Box::new(Expr::Col(ColRef::fact("l_extendedprice"))),
                        Box::new(Expr::Col(ColRef::fact("l_discount"))),
                    ),
                ),
                AggSpec::new("avg_qty", AggFunc::Avg, Expr::Col(ColRef::fact("l_quantity"))),
                AggSpec::count("n"),
            ],
            class: QueryClass::Medium,
        }
    }

    #[test]
    fn replay_fold_is_bit_identical_to_sequential_at_every_pool_size() {
        let d = data();
        let mut cache = IndexCache::new();
        let plan = grouped_join_plan();
        let rows: Vec<u32> = (0..d.lineitem.rows() as u32).rev().collect();

        let mut seq = Executor::bind(&plan, &d, &mut cache).unwrap();
        let seq_stats = seq.process_rows(&rows);

        for threads in [1, 2, 4, 8] {
            let pool = rotary_par::ThreadPool::new(threads);
            let mut par = Executor::bind(&plan, &d, &mut cache).unwrap();
            let par_stats = par.process_rows_with(&pool, &rows);
            assert_eq!(seq_stats, par_stats, "threads={threads}");
            assert_states_bit_identical(&seq, &par);
        }
    }

    #[test]
    fn columnar_is_bit_identical_to_rowwise_oracle() {
        let d = data();
        let mut cache = IndexCache::new();
        // Exercise every plan shape at once: joins (single + later composite
        // covered elsewhere), filter tree, groups, and multiple aggregates;
        // shuffled row order to keep the gather paths honest.
        for plan in [q6ish(), grouped_join_plan()] {
            let rows: Vec<u32> = {
                let mut v: Vec<u32> = (0..d.lineitem.rows() as u32).collect();
                v.reverse();
                v.rotate_left(7);
                v
            };
            let mut oracle = Executor::bind(&plan, &d, &mut cache).unwrap();
            let a = oracle.process_rows_rowwise(&rows);
            let mut col = Executor::bind(&plan, &d, &mut cache).unwrap();
            let b = col.process_rows(&rows);
            assert_eq!(a, b, "stats diverged for {}", plan.label);
            assert_states_bit_identical(&oracle, &col);
        }
    }

    #[test]
    fn fold_cost_counts_are_deterministic_and_structured() {
        let d = data();
        let mut cache = IndexCache::new();
        let plan = grouped_join_plan();
        let rows: Vec<u32> = (0..d.lineitem.rows() as u32).collect();
        let exec = Executor::bind(&plan, &d, &mut cache).unwrap();
        let cost = exec.fold_cost(&rows);
        assert_eq!(cost, exec.fold_cost(&rows), "fold_cost must be deterministic");
        assert_eq!(cost.chunks, rows.len().div_ceil(PAR_CHUNK_ROWS));
        // Three return flags → at most 3 group merges per chunk, far below
        // one replay update per surviving row.
        assert!(cost.merge_serial_ops <= 3 * cost.chunks as u64);
        assert!(cost.replay_serial_ops > 0);
    }

    #[test]
    fn process_all_with_matches_process_all_bitwise() {
        let d = data();
        let mut cache = IndexCache::new();
        let mut seq = Executor::bind(&q6ish(), &d, &mut cache).unwrap();
        seq.process_all();
        let pool = rotary_par::ThreadPool::new(4);
        let mut par = Executor::bind(&q6ish(), &d, &mut cache).unwrap();
        par.process_all_with(&pool);
        assert_states_bit_identical(&seq, &par);
    }

    #[test]
    fn replay_fold_small_batches_take_sequential_path() {
        let d = data();
        let mut cache = IndexCache::new();
        let pool = rotary_par::ThreadPool::new(4);
        let mut seq = Executor::bind(&q6ish(), &d, &mut cache).unwrap();
        let mut par = Executor::bind(&q6ish(), &d, &mut cache).unwrap();
        // Below PAR_MIN_ROWS the parallel entry point must not fan out, and
        // the result is (trivially) bit-identical.
        let rows: Vec<u32> = (0..(PAR_MIN_ROWS as u32 - 1)).collect();
        assert_eq!(seq.process_rows(&rows), par.process_rows_with(&pool, &rows));
        assert_states_bit_identical(&seq, &par);
    }

    #[test]
    fn state_merge_fold_is_deterministic_across_pool_sizes() {
        let d = data();
        let mut cache = IndexCache::new();
        let plan = grouped_join_plan();
        let rows: Vec<u32> = (0..d.lineitem.rows() as u32).collect();

        let baseline = {
            let pool = rotary_par::ThreadPool::new(1);
            let mut e = Executor::bind(&plan, &d, &mut cache).unwrap();
            e.process_rows_with_merge(&pool, &rows);
            e.state().grouped_results()
        };
        for threads in [2, 4, 8] {
            let pool = rotary_par::ThreadPool::new(threads);
            let mut e = Executor::bind(&plan, &d, &mut cache).unwrap();
            e.process_rows_with_merge(&pool, &rows);
            let got = e.state().grouped_results();
            assert_eq!(baseline.len(), got.len());
            for ((ka, va), (kb, vb)) in baseline.iter().zip(&got) {
                assert_eq!(ka, kb);
                for (x, y) in va.iter().zip(vb) {
                    assert_eq!(
                        x.map(f64::to_bits),
                        y.map(f64::to_bits),
                        "threads={threads}, group {ka:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn state_merge_fold_matches_sequential_within_epsilon() {
        let d = data();
        let mut cache = IndexCache::new();
        let plan = grouped_join_plan();
        let rows: Vec<u32> = (0..d.lineitem.rows() as u32).collect();

        let mut seq = Executor::bind(&plan, &d, &mut cache).unwrap();
        let seq_stats = seq.process_rows(&rows);
        let pool = rotary_par::ThreadPool::new(4);
        let mut par = Executor::bind(&plan, &d, &mut cache).unwrap();
        let par_stats = par.process_rows_with_merge(&pool, &rows);

        // Work counters are integers: exactly equal.
        assert_eq!(seq_stats, par_stats);
        // Float aggregates agree to relative epsilon (different fold order).
        let (ra, rb) = (seq.state().grouped_results(), par.state().grouped_results());
        assert_eq!(ra.len(), rb.len());
        for ((ka, va), (kb, vb)) in ra.iter().zip(&rb) {
            assert_eq!(ka, kb);
            for (x, y) in va.iter().zip(vb) {
                let (x, y) = (x.unwrap(), y.unwrap());
                assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0), "group {ka:?}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn predval_case_aggregation() {
        let d = data();
        let mut cache = IndexCache::new();
        // sum(case when returnflag = 'R' then quantity else 0 end)
        let plan = QueryPlan {
            label: "case".into(),
            fact: "lineitem".into(),
            joins: vec![],
            filter: Pred::True,
            group_by: vec![],
            aggregates: vec![AggSpec::new(
                "r_qty",
                AggFunc::Sum,
                Expr::Mul(
                    Box::new(Expr::PredVal(Box::new(Pred::CatEq {
                        col: ColRef::fact("l_returnflag"),
                        value: "R".into(),
                    }))),
                    Box::new(Expr::Col(ColRef::fact("l_quantity"))),
                ),
            )],
            class: QueryClass::Light,
        };
        let mut exec = Executor::bind(&plan, &d, &mut cache).unwrap();
        exec.process_all();
        let mut expect = 0.0;
        for r in 0..d.lineitem.rows() {
            if d.lineitem.column_required("l_returnflag").cat_str(r) == "R" {
                expect += d.lineitem.column_required("l_quantity").int(r) as f64;
            }
        }
        assert!((exec.state().combined(0).unwrap() - expect).abs() < 1e-9);
    }
}
