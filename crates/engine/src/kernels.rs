//! Vectorized columnar kernels: the tight inner loops of the data plane.
//!
//! Every function here operates on whole column slices (or gathered row-id
//! slices) per call, so the per-row work is a handful of loads, a compare or
//! an arithmetic op, and a store — loops the compiler can unroll and
//! autovectorize. Nothing in this module touches aggregate state, the plan,
//! or the thread pool; kernels are pure functions over plain slices, which
//! is what makes them independently testable: the property suite in
//! `tests/kernel_equivalence.rs` proves each kernel bit-identical to a
//! naive row-at-a-time oracle (including NaN/inf inputs and empty/full
//! selections).
//!
//! Determinism notes:
//!
//! * Selection [`Bitmap`]s are packed `u64` words over *chunk positions*
//!   (0..chunk_len), not row ids; combining them word-wise evaluates the
//!   same boolean per position as short-circuit row evaluation, because
//!   predicates are total and side-effect-free.
//! * [`PkIndex`]/[`PkIndex2`] are open-addressed hash indexes with a fixed
//!   multiply-shift hash — no `RandomState`, no per-process seed, and point
//!   lookups only, so they satisfy the D001 determinism rule without any
//!   allow annotation.
//! * The `*_seq` reductions ([`sum_seq`], [`min_seq`], [`max_seq`],
//!   [`welford_seq`]) perform *exactly* the per-element operation sequence
//!   of `Accumulator::update`, in index order, so their results are
//!   bit-identical to the row loop by construction.

use rotary_tpch::date::year_of;
use rotary_tpch::{Column, Date};

use crate::expr::CmpOp;

// ---------------------------------------------------------------------------
// Selection bitmaps
// ---------------------------------------------------------------------------

/// A packed selection bitmap over chunk positions `0..len`.
///
/// Bit `i` of word `i / 64` (at position `i % 64`) records whether chunk
/// position `i` is selected. Tail bits past `len` are always zero, so
/// word-wise combination never manufactures selections out of range.
#[derive(Debug, Clone, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap of length 0.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// Resizes to `len` positions with every bit cleared.
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
    }

    /// Resizes to `len` positions with every bit set (tail masked).
    pub fn set_all(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(64), u64::MAX);
        self.mask_tail();
    }

    /// Number of positions covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the bit at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets the bit at position `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Word-wise intersection with `other` (same length required).
    pub fn and(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Word-wise union with `other` (same length required).
    pub fn or(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Word-wise complement over `0..len` (tail masked back to zero).
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// Fills `out` (reset to `n` positions) from a per-position test, packing 64
/// positions per word. The closure is monomorphized per call site, so each
/// predicate leaf compiles to its own tight compare loop.
#[inline]
fn pack_positions(n: usize, out: &mut Bitmap, test: impl Fn(usize) -> bool) {
    out.reset(n);
    for (w, word) in out.words.iter_mut().enumerate() {
        let base = w * 64;
        let lanes = 64.min(n - base);
        let mut bits = 0u64;
        for k in 0..lanes {
            bits |= u64::from(test(base + k)) << k;
        }
        *word = bits;
    }
}

/// Like [`pack_positions`] but the test receives the *row id* gathered from
/// `rows` — the shape of every single-column predicate leaf.
#[inline]
fn pack_rows(rows: &[u32], out: &mut Bitmap, test: impl Fn(u32) -> bool) {
    pack_positions(rows.len(), out, |i| test(rows[i]));
}

/// `lo <= v && v <= hi` over an integer column, gathered through `rows`.
pub fn int_range_bitmap(values: &[i64], rows: &[u32], lo: i64, hi: i64, out: &mut Bitmap) {
    pack_rows(rows, out, |r| {
        let v = values[r as usize];
        lo <= v && v <= hi
    });
}

/// `values.contains(v)` membership over an integer column.
pub fn int_in_bitmap(values: &[i64], rows: &[u32], needles: &[i64], out: &mut Bitmap) {
    pack_rows(rows, out, |r| needles.contains(&values[r as usize]));
}

/// `lo <= v && v <= hi` over a float column. NaN compares false on both
/// sides, exactly as in the row-at-a-time evaluation.
pub fn float_range_bitmap(values: &[f64], rows: &[u32], lo: f64, hi: f64, out: &mut Bitmap) {
    pack_rows(rows, out, |r| {
        let v = values[r as usize];
        lo <= v && v <= hi
    });
}

/// Half-open `lo <= v && v < hi` over a date column.
pub fn date_range_bitmap(values: &[Date], rows: &[u32], lo: Date, hi: Date, out: &mut Bitmap) {
    pack_rows(rows, out, |r| {
        let v = values[r as usize];
        lo <= v && v < hi
    });
}

/// Dictionary-mask membership over a category column: position selected when
/// `mask[code]` is true.
pub fn cat_mask_bitmap(codes: &[u32], rows: &[u32], mask: &[bool], out: &mut Bitmap) {
    pack_rows(rows, out, |r| mask[codes[r as usize] as usize]);
}

/// Element-wise float comparison of two gathered operand vectors (position
/// space). NaN operands compare false under every operator, matching the
/// scalar `<`/`<=`/`==` semantics of the row loop.
pub fn cmp_bitmap(a: &[f64], b: &[f64], op: CmpOp, out: &mut Bitmap) {
    debug_assert_eq!(a.len(), b.len());
    match op {
        CmpOp::Lt => pack_positions(a.len(), out, |i| a[i] < b[i]),
        CmpOp::Le => pack_positions(a.len(), out, |i| a[i] <= b[i]),
        CmpOp::Eq => pack_positions(a.len(), out, |i| a[i] == b[i]),
    }
}

// ---------------------------------------------------------------------------
// Gathers
// ---------------------------------------------------------------------------

/// Gathers the numeric view of `col` at every row of `rows` (position
/// space): `out[i] = numeric(col, rows[i])`. The type dispatch happens once
/// per call, not once per row.
pub fn gather_numeric(col: &Column, rows: &[u32], out: &mut Vec<f64>) {
    out.clear();
    match col {
        Column::Int(v) => out.extend(rows.iter().map(|&r| v[r as usize] as f64)),
        Column::Float(v) => out.extend(rows.iter().map(|&r| v[r as usize])),
        Column::Date(v) => out.extend(rows.iter().map(|&r| v[r as usize] as f64)),
        Column::Cat { codes, .. } => out.extend(rows.iter().map(|&r| codes[r as usize] as f64)),
    }
}

/// Gathers the numeric view of `col` at the *selected* positions:
/// `out[k] = numeric(col, rows[positions[k]])`.
pub fn gather_numeric_at(col: &Column, rows: &[u32], positions: &[u32], out: &mut Vec<f64>) {
    out.clear();
    match col {
        Column::Int(v) => {
            out.extend(positions.iter().map(|&p| v[rows[p as usize] as usize] as f64))
        }
        Column::Float(v) => out.extend(positions.iter().map(|&p| v[rows[p as usize] as usize])),
        Column::Date(v) => {
            out.extend(positions.iter().map(|&p| v[rows[p as usize] as usize] as f64))
        }
        Column::Cat { codes, .. } => {
            out.extend(positions.iter().map(|&p| codes[rows[p as usize] as usize] as i64 as f64))
        }
    }
}

/// Gathers raw group-key values (`i64`) at the selected positions. Float
/// columns are rejected at bind time; the debug assertion mirrors the
/// row-path's unreachable arm.
pub fn gather_group_keys(col: &Column, rows: &[u32], positions: &[u32], out: &mut Vec<i64>) {
    out.clear();
    match col {
        Column::Int(v) => out.extend(positions.iter().map(|&p| v[rows[p as usize] as usize])),
        Column::Date(v) => {
            out.extend(positions.iter().map(|&p| v[rows[p as usize] as usize] as i64))
        }
        Column::Cat { codes, .. } => {
            out.extend(positions.iter().map(|&p| codes[rows[p as usize] as usize] as i64))
        }
        Column::Float(_) => {
            debug_assert!(false, "bind rejects float group columns");
            out.extend(positions.iter().map(|_| 0i64));
        }
    }
}

/// Gathers `EXTRACT(YEAR ...)` of a date column at the selected positions.
pub fn gather_years(values: &[Date], rows: &[u32], positions: &[u32], out: &mut Vec<i64>) {
    out.clear();
    out.extend(positions.iter().map(|&p| year_of(values[rows[p as usize] as usize]) as i64));
}

// ---------------------------------------------------------------------------
// Element-wise expression arithmetic
// ---------------------------------------------------------------------------

/// `out[i] += rhs[i]`.
pub fn add_assign(out: &mut [f64], rhs: &[f64]) {
    debug_assert_eq!(out.len(), rhs.len());
    for (a, b) in out.iter_mut().zip(rhs) {
        *a += b;
    }
}

/// `out[i] -= rhs[i]`.
pub fn sub_assign(out: &mut [f64], rhs: &[f64]) {
    debug_assert_eq!(out.len(), rhs.len());
    for (a, b) in out.iter_mut().zip(rhs) {
        *a -= b;
    }
}

/// `out[i] *= rhs[i]`.
pub fn mul_assign(out: &mut [f64], rhs: &[f64]) {
    debug_assert_eq!(out.len(), rhs.len());
    for (a, b) in out.iter_mut().zip(rhs) {
        *a *= b;
    }
}

/// Guarded division: `out[i] = if rhs[i] == 0.0 { 0.0 } else { out[i] /
/// rhs[i] }` — the engine's SQL-style divide-by-zero rule, element-wise.
pub fn div_assign_guarded(out: &mut [f64], rhs: &[f64]) {
    debug_assert_eq!(out.len(), rhs.len());
    for (a, b) in out.iter_mut().zip(rhs) {
        *a = if *b == 0.0 { 0.0 } else { *a / *b };
    }
}

// ---------------------------------------------------------------------------
// Deterministic open-addressed primary-key indexes
// ---------------------------------------------------------------------------

/// Fibonacci multiplier (odd, near 2^64/φ) for multiply-shift hashing.
const HASH_MUL_A: u64 = 0x9E37_79B9_7F4A_7C15;
/// Second multiplier for composite keys (from xxhash's prime pool).
const HASH_MUL_B: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// A deterministic open-addressed hash index `i64 key → u32 row` for
/// primary-key join probes.
///
/// Linear probing over a power-of-two table at ≤50% load; the hash is a
/// fixed multiply-shift (high bits), so layout and probe sequences are a
/// pure function of the key set — no `RandomState`, no per-process seed.
/// Point lookups only; the table is never iterated.
#[derive(Debug, Clone)]
pub struct PkIndex {
    mask: usize,
    shift: u32,
    keys: Vec<i64>,
    /// `row + 1`; 0 marks an empty slot.
    rows: Vec<u32>,
    len: usize,
}

impl PkIndex {
    /// Builds an index mapping `values[row] → row`.
    ///
    /// # Panics
    /// Panics on duplicate keys (the column would not be a primary key).
    pub fn build(values: &[i64]) -> PkIndex {
        let cap = (values.len().max(1) * 2).next_power_of_two();
        let mut idx = PkIndex {
            mask: cap - 1,
            shift: 64 - cap.trailing_zeros(),
            keys: vec![0; cap],
            rows: vec![0; cap],
            len: values.len(),
        };
        for (row, &k) in values.iter().enumerate() {
            let mut i = idx.slot_of(k);
            while idx.rows[i] != 0 {
                assert!(idx.keys[i] != k, "duplicate primary key {k}");
                i = (i + 1) & idx.mask;
            }
            idx.keys[i] = k;
            idx.rows[i] = row as u32 + 1;
        }
        idx
    }

    #[inline]
    fn slot_of(&self, key: i64) -> usize {
        (((key as u64).wrapping_mul(HASH_MUL_A)) >> self.shift) as usize
    }

    /// Number of keys in the index.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the index holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Point lookup: the row holding `key`, if present.
    #[inline]
    pub fn get(&self, key: i64) -> Option<u32> {
        let mut i = self.slot_of(key);
        loop {
            let r = self.rows[i];
            if r == 0 {
                return None;
            }
            if self.keys[i] == key {
                return Some(r - 1);
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// A deterministic open-addressed hash index for composite `(i64, i64)`
/// primary keys — same layout rules as [`PkIndex`].
#[derive(Debug, Clone)]
pub struct PkIndex2 {
    mask: usize,
    shift: u32,
    keys_a: Vec<i64>,
    keys_b: Vec<i64>,
    /// `row + 1`; 0 marks an empty slot.
    rows: Vec<u32>,
    len: usize,
}

impl PkIndex2 {
    /// Builds an index mapping `(a[row], b[row]) → row`.
    ///
    /// # Panics
    /// Panics on duplicate composite keys or mismatched column lengths.
    pub fn build(a: &[i64], b: &[i64]) -> PkIndex2 {
        assert_eq!(a.len(), b.len(), "composite key columns must have equal length");
        let cap = (a.len().max(1) * 2).next_power_of_two();
        let mut idx = PkIndex2 {
            mask: cap - 1,
            shift: 64 - cap.trailing_zeros(),
            keys_a: vec![0; cap],
            keys_b: vec![0; cap],
            rows: vec![0; cap],
            len: a.len(),
        };
        for (row, (&ka, &kb)) in a.iter().zip(b).enumerate() {
            let mut i = idx.slot_of(ka, kb);
            while idx.rows[i] != 0 {
                assert!(
                    idx.keys_a[i] != ka || idx.keys_b[i] != kb,
                    "duplicate composite key ({ka}, {kb})"
                );
                i = (i + 1) & idx.mask;
            }
            idx.keys_a[i] = ka;
            idx.keys_b[i] = kb;
            idx.rows[i] = row as u32 + 1;
        }
        idx
    }

    #[inline]
    fn slot_of(&self, a: i64, b: i64) -> usize {
        let h = (a as u64).wrapping_mul(HASH_MUL_A) ^ (b as u64).wrapping_mul(HASH_MUL_B);
        (h >> self.shift) as usize
    }

    /// Number of keys in the index.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the index holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Point lookup: the row holding `(a, b)`, if present.
    #[inline]
    pub fn get(&self, a: i64, b: i64) -> Option<u32> {
        let mut i = self.slot_of(a, b);
        loop {
            let r = self.rows[i];
            if r == 0 {
                return None;
            }
            if self.keys_a[i] == a && self.keys_b[i] == b {
                return Some(r - 1);
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// Batch hash-join probe through a single-key index: for every surviving
/// position `p`, looks up `fk[src_rows[p]]`; on a hit the target row is
/// written to `targets[p]` and the position is retained (in order), on a
/// miss the position is dropped — inner-join semantics, identical to the
/// row loop's early exit.
pub fn probe_single(
    index: &PkIndex,
    fk: &[i64],
    src_rows: &[u32],
    positions: &mut Vec<u32>,
    targets: &mut [u32],
) {
    let mut kept = 0;
    for i in 0..positions.len() {
        let p = positions[i] as usize;
        if let Some(t) = index.get(fk[src_rows[p] as usize]) {
            targets[p] = t;
            positions[kept] = p as u32;
            kept += 1;
        }
    }
    positions.truncate(kept);
}

/// Batch probe through a composite index — see [`probe_single`].
pub fn probe_composite(
    index: &PkIndex2,
    fk_a: &[i64],
    fk_b: &[i64],
    src_rows: &[u32],
    positions: &mut Vec<u32>,
    targets: &mut [u32],
) {
    let mut kept = 0;
    for i in 0..positions.len() {
        let p = positions[i] as usize;
        let src = src_rows[p] as usize;
        if let Some(t) = index.get(fk_a[src], fk_b[src]) {
            targets[p] = t;
            positions[kept] = p as u32;
            kept += 1;
        }
    }
    positions.truncate(kept);
}

// ---------------------------------------------------------------------------
// Sequential-order aggregate reductions
// ---------------------------------------------------------------------------

/// In-order sum: `seed + v[0] + v[1] + …` — the exact operation sequence of
/// repeated `sum += v`, so bits match the row loop.
pub fn sum_seq(seed: f64, values: &[f64]) -> f64 {
    let mut sum = seed;
    for &v in values {
        sum += v;
    }
    sum
}

/// In-order minimum with the row loop's `if v < min` rule: NaN never
/// replaces the current minimum (NaN comparisons are false).
pub fn min_seq(seed: f64, values: &[f64]) -> f64 {
    let mut min = seed;
    for &v in values {
        if v < min {
            min = v;
        }
    }
    min
}

/// In-order maximum with the row loop's `if v > max` rule (NaN-ignoring).
pub fn max_seq(seed: f64, values: &[f64]) -> f64 {
    let mut max = seed;
    for &v in values {
        if v > max {
            max = v;
        }
    }
    max
}

/// In-order Welford update over a value slice, continuing from a running
/// `(count, mean, m2)` triple. Performs exactly the per-element recurrence
/// of `Accumulator::update` (count, then delta/mean/m2), so the returned
/// triple is bit-identical to feeding the values one at a time.
pub fn welford_seq(count: u64, mean: f64, m2: f64, values: &[f64]) -> (u64, f64, f64) {
    let (mut count, mut mean, mut m2) = (count, mean, m2);
    for &v in values {
        count += 1;
        let delta = v - mean;
        mean += delta / count as f64;
        m2 += delta * (v - mean);
    }
    (count, mean, m2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_get_and_tail_masking() {
        let mut bm = Bitmap::new();
        bm.reset(70);
        assert_eq!(bm.len(), 70);
        assert_eq!(bm.count(), 0);
        bm.set(0);
        bm.set(69);
        assert!(bm.get(0) && bm.get(69) && !bm.get(1));
        assert_eq!(bm.count(), 2);
        bm.negate();
        assert_eq!(bm.count(), 68, "negate must mask the tail");
        let mut all = Bitmap::new();
        all.set_all(70);
        assert_eq!(all.count(), 70);
    }

    #[test]
    fn bitmap_and_or() {
        let mut a = Bitmap::new();
        let mut b = Bitmap::new();
        a.reset(10);
        b.reset(10);
        a.set(1);
        a.set(2);
        b.set(2);
        b.set(3);
        let mut u = a.clone();
        u.or(&b);
        a.and(&b);
        assert_eq!(a.count(), 1);
        assert!(a.get(2));
        assert_eq!(u.count(), 3);
    }

    #[test]
    fn pk_index_hits_and_misses() {
        let keys: Vec<i64> = (0..1000).map(|i| i * 3 + 7).collect();
        let idx = PkIndex::build(&keys);
        assert_eq!(idx.len(), 1000);
        for (row, &k) in keys.iter().enumerate() {
            assert_eq!(idx.get(k), Some(row as u32));
            assert_eq!(idx.get(k + 1), None);
        }
        assert!(PkIndex::build(&[]).is_empty());
        assert_eq!(PkIndex::build(&[]).get(42), None);
    }

    #[test]
    #[should_panic(expected = "duplicate primary key")]
    fn pk_index_rejects_duplicates() {
        let _ = PkIndex::build(&[5, 9, 5]);
    }

    #[test]
    fn pk_index2_composite_lookups() {
        let a: Vec<i64> = (0..200).map(|i| i / 4).collect();
        let b: Vec<i64> = (0..200).map(|i| i % 4).collect();
        let idx = PkIndex2::build(&a, &b);
        assert_eq!(idx.get(10, 2), Some(42));
        assert_eq!(idx.get(10, 5), None);
        assert_eq!(idx.get(-1, 0), None);
    }

    #[test]
    #[should_panic(expected = "duplicate composite key")]
    fn pk_index2_rejects_duplicates() {
        let _ = PkIndex2::build(&[1, 1], &[2, 2]);
    }

    #[test]
    fn probe_single_compacts_in_order() {
        let idx = PkIndex::build(&[10, 20, 30]);
        let fk = vec![20i64, 99, 10, 30];
        let src: Vec<u32> = vec![0, 1, 2, 3];
        let mut positions: Vec<u32> = vec![0, 1, 2, 3];
        let mut targets = vec![0u32; 4];
        probe_single(&idx, &fk, &src, &mut positions, &mut targets);
        assert_eq!(positions, vec![0, 2, 3]);
        assert_eq!(targets[0], 1);
        assert_eq!(targets[2], 0);
        assert_eq!(targets[3], 2);
    }

    #[test]
    fn welford_seq_matches_incremental() {
        let vals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let (c, mean, m2) = welford_seq(0, 0.0, 0.0, &vals);
        let (mut oc, mut omean, mut om2) = (0u64, 0.0f64, 0.0f64);
        for &v in &vals {
            oc += 1;
            let delta = v - omean;
            omean += delta / oc as f64;
            om2 += delta * (v - omean);
        }
        assert_eq!(c, oc);
        assert_eq!(mean.to_bits(), omean.to_bits());
        assert_eq!(m2.to_bits(), om2.to_bits());
    }

    #[test]
    fn min_max_ignore_nan() {
        assert_eq!(min_seq(f64::INFINITY, &[2.0, f64::NAN, 1.0]), 1.0);
        assert_eq!(max_seq(f64::NEG_INFINITY, &[2.0, f64::NAN, 3.0]), 3.0);
    }
}
