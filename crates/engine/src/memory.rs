//! Memory-consumption estimation and the batch cost model.
//!
//! The paper's memory consumption estimator "predicts the memory
//! consumption of the AQP jobs based on each batch's table and column
//! statistics and query plans", implemented there via Spark's cost-based
//! optimizer. [`estimate_memory_mb`] is the corresponding estimator over
//! our engine's plans: a query must pin, for the duration of its run,
//!
//! * a hash index and the referenced columns of every joined dimension
//!   table (the engine's join state),
//! * its running group table, and
//! * a batch's worth of fact-table columns,
//!
//! scaled by an executor-overhead factor standing in for Spark's JVM object
//! overhead, so absolute numbers land in the same ballpark as the paper's
//! observations (heavy queries in the gigabytes).
//!
//! [`BatchCostModel`] converts executor work counters to virtual time: the
//! simulator runs at a small scale factor, so each simulated row represents
//! `1 / SF` real rows and costs proportionally more virtual time, making
//! virtual epoch durations comparable to the paper's wall-clock SF-1 runs
//! regardless of the simulated scale.

use rotary_core::SimTime;
use rotary_tpch::TpchData;

use crate::exec::BatchStats;
use crate::plan::QueryPlan;

/// Bytes per hash-index entry: the open-addressed `PkIndex` stores an `i64`
/// key and a `u32` row per slot at ≤50% load, so ≈2×12 bytes per key.
const INDEX_ENTRY_BYTES: usize = 24;
/// Bytes per materialised group (key vector + accumulators).
const GROUP_BYTES: usize = 96;
/// Executor object overhead multiplier (Spark/JVM stand-in).
const OVERHEAD_FACTOR: f64 = 12.0;

/// Estimates the resident memory a plan needs, in megabytes.
///
/// `batch_rows` is the number of fact rows processed per batch. The
/// estimate is intentionally conservative (it assumes whole dimension
/// columns are resident), as a real CBO would be.
pub fn estimate_memory_mb(plan: &QueryPlan, data: &TpchData, batch_rows: usize) -> u64 {
    let referenced = plan.referenced_columns();
    let mut bytes: f64 = 0.0;

    for join in &plan.joins {
        let Some(table) = data.table(&join.table) else { continue };
        // Hash index over the PK column(s).
        bytes += (table.rows() * INDEX_ENTRY_BYTES) as f64;
        // Referenced columns of this alias stay resident.
        for col_ref in &referenced {
            if col_ref.alias.as_deref() == Some(join.alias.as_str()) {
                if let Some(col) = table.column(&col_ref.column) {
                    bytes += column_bytes_per_row(col) * table.rows() as f64;
                }
            }
        }
    }

    // Fact-table batch buffers: referenced fact columns × batch rows.
    if let Some(fact) = data.table(&plan.fact) {
        for col_ref in &referenced {
            if col_ref.alias.is_none() {
                if let Some(col) = fact.column(&col_ref.column) {
                    bytes += column_bytes_per_row(col) * batch_rows as f64;
                }
            }
        }
    }

    // Group hash table: estimated group cardinality.
    bytes += (estimated_groups(plan, data) * GROUP_BYTES) as f64;

    // The dataset in this process may be generated at a small scale factor;
    // report the SF-1-equivalent footprint the paper's testbed would see.
    let sf_correction = 1.0 / data.scale_factor.min(1.0);
    let total = bytes * OVERHEAD_FACTOR * sf_correction;
    (total / (1024.0 * 1024.0)).ceil().max(1.0) as u64
}

fn column_bytes_per_row(col: &rotary_tpch::Column) -> f64 {
    match col {
        rotary_tpch::Column::Int(_) | rotary_tpch::Column::Float(_) => 8.0,
        rotary_tpch::Column::Date(_) | rotary_tpch::Column::Cat { .. } => 4.0,
    }
}

/// Rough upper bound on group-table cardinality: the product of per-key
/// distinct counts, capped at the fact-table size.
fn estimated_groups(plan: &QueryPlan, data: &TpchData) -> usize {
    if plan.group_by.is_empty() {
        return 1;
    }
    let fact_rows = data.table(&plan.fact).map(|t| t.rows()).unwrap_or(1);
    let mut product: usize = 1;
    for key in &plan.group_by {
        let distinct = match key {
            crate::plan::GroupKey::Year(_) => 7, // 1992–1998
            crate::plan::GroupKey::Raw(col_ref) => {
                // Dictionary cardinality for categories; a generic guess for
                // other types (real CBOs keep NDV statistics; ours derives
                // them from the dictionary where available).
                lookup_column(plan, data, col_ref)
                    .map(|c| match c {
                        rotary_tpch::Column::Cat { dict, .. } => dict.len(),
                        _ => 64,
                    })
                    .unwrap_or(64)
            }
        };
        product = product.saturating_mul(distinct.max(1)).min(fact_rows.max(1));
    }
    product
}

fn lookup_column<'a>(
    plan: &QueryPlan,
    data: &'a TpchData,
    col_ref: &crate::expr::ColRef,
) -> Option<&'a rotary_tpch::Column> {
    let table_name = match &col_ref.alias {
        None => plan.fact.as_str(),
        Some(alias) => &plan.joins.iter().find(|j| &j.alias == alias)?.table,
    };
    data.table(table_name)?.column(&col_ref.column)
}

/// Converts executor work counters into virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchCostModel {
    /// Virtual seconds per row operation on one thread, already corrected
    /// for the simulated scale factor.
    pub secs_per_row_op: f64,
    /// Fraction of each additional thread that turns into useful speedup
    /// (Amdahl-style parallel efficiency).
    pub parallel_efficiency: f64,
}

impl BatchCostModel {
    /// Base throughput of the paper's testbed: row operations per second per
    /// hardware thread at SF-1 data sizes. Calibrated so that reaching a
    /// mid-range accuracy threshold takes a deadline-scale amount of time —
    /// a light query needs ~5 minutes *with* a full four-thread grant and
    /// ~18 minutes on a single thread, heavy queries proportionally longer —
    /// which reproduces the paper's contention: Table I deadlines only bind
    /// when arbitration gives a job enough threads.
    pub const BASE_OPS_PER_SEC: f64 = 3_500.0;

    /// A model for a dataset generated at `sim_scale_factor`: each simulated
    /// row stands for `1 / SF` real rows.
    ///
    /// # Panics
    /// Panics on non-positive scale factors.
    pub fn calibrated(sim_scale_factor: f64) -> BatchCostModel {
        assert!(sim_scale_factor > 0.0, "scale factor must be positive");
        BatchCostModel {
            secs_per_row_op: 1.0 / (Self::BASE_OPS_PER_SEC * sim_scale_factor.min(1.0)),
            parallel_efficiency: 0.85,
        }
    }

    /// Virtual time to process a batch with `threads` hardware threads.
    pub fn batch_time(&self, stats: BatchStats, threads: u32) -> SimTime {
        let effective = 1.0 + (threads.max(1) - 1) as f64 * self.parallel_efficiency;
        SimTime::from_secs_f64(stats.row_ops() as f64 * self.secs_per_row_op / effective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{query, QueryId};
    use rotary_tpch::Generator;

    #[test]
    fn heavy_queries_need_more_memory_than_light() {
        let data = Generator::new(5, 0.005).generate();
        let batch = data.lineitem.rows() / 100;
        let mem = |id: u8| estimate_memory_mb(&query(QueryId(id)), &data, batch);
        // q6 (no joins) < q3 (orders+customer) < q18-style heavy footprints.
        assert!(mem(6) < mem(3), "q6={} q3={}", mem(6), mem(3));
        assert!(mem(1) < mem(7), "q1={} q7={}", mem(1), mem(7));
        assert!(mem(22) < mem(9), "q22={} q9={}", mem(22), mem(9));
    }

    #[test]
    fn class_averages_are_ordered() {
        let data = Generator::new(5, 0.005).generate();
        let batch = data.lineitem.rows() / 100;
        let avg_of = |class: crate::plan::QueryClass| {
            let ids = QueryId::of_class(class);
            ids.iter().map(|&id| estimate_memory_mb(&query(id), &data, batch) as f64).sum::<f64>()
                / ids.len() as f64
        };
        let light = avg_of(crate::plan::QueryClass::Light);
        let medium = avg_of(crate::plan::QueryClass::Medium);
        let heavy = avg_of(crate::plan::QueryClass::Heavy);
        assert!(light < medium, "light {light} !< medium {medium}");
        assert!(medium < heavy, "medium {medium} !< heavy {heavy}");
    }

    #[test]
    fn memory_is_sf_invariant() {
        // The SF-1-equivalent footprint should be similar whether we
        // simulate at 0.002 or 0.004.
        let a = Generator::new(5, 0.002).generate();
        let b = Generator::new(5, 0.004).generate();
        let plan = query(QueryId(5));
        let ma = estimate_memory_mb(&plan, &a, a.lineitem.rows() / 100) as f64;
        let mb = estimate_memory_mb(&plan, &b, b.lineitem.rows() / 100) as f64;
        assert!((ma / mb - 1.0).abs() < 0.25, "ma={ma} mb={mb}");
    }

    #[test]
    fn cost_model_scales_with_threads_and_sf() {
        let m = BatchCostModel::calibrated(0.01);
        let stats = BatchStats { rows_scanned: 1000, probes: 2000, rows_aggregated: 500 };
        let t1 = m.batch_time(stats, 1);
        let t4 = m.batch_time(stats, 4);
        assert!(t4 < t1, "more threads must be faster");
        assert!(t4 > t1 / 4, "parallel efficiency < 1 means sublinear speedup");

        // Smaller simulated SF → each row is worth more virtual time; the
        // same simulated batch costs proportionally more.
        let coarse = BatchCostModel::calibrated(0.001);
        assert!(coarse.batch_time(stats, 1) > t1);
    }

    #[test]
    fn full_sf1_equivalent_scan_lands_in_paper_deadline_range() {
        // A full lineitem scan of a 1-join query on one thread should land
        // within the same order of magnitude as Table I's heavy deadlines
        // (hundreds to thousands of seconds).
        let sf = 0.005;
        let data = Generator::new(5, sf).generate();
        let plan = query(QueryId(3));
        let mut cache = crate::exec::IndexCache::new();
        let mut exec = crate::exec::Executor::bind(&plan, &data, &mut cache).unwrap();
        let stats = exec.process_all();
        let model = BatchCostModel::calibrated(sf);
        let t = model.batch_time(stats, 1);
        let secs = t.as_secs_f64();
        assert!(
            (100.0..10_000.0).contains(&secs),
            "full q3 scan = {secs}s, outside plausibility window"
        );
    }

    #[test]
    #[should_panic(expected = "scale factor must be positive")]
    fn bad_calibration_panics() {
        let _ = BatchCostModel::calibrated(0.0);
    }
}
