//! Property-based tests of the framework core: regression invariances,
//! criteria coherence, and similarity-order properties.

use proptest::prelude::*;
use rotary_core::criteria::{CompletionCriterion, CriterionCheck, Deadline, Metric};
use rotary_core::estimate::similarity::{scalar_similarity, top_k_by};
use rotary_core::estimate::wlr::{LinearFit, WeightedPoint};
use rotary_core::job::IntermediateState;
use rotary_core::SimTime;

proptest! {
    /// Scaling every weight by the same positive constant leaves the fit
    /// unchanged (weights are relative).
    #[test]
    fn wlr_weight_scale_invariance(
        points in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0, 0.1f64..10.0), 3..40),
        scale in 0.01f64..100.0,
    ) {
        let base: Vec<WeightedPoint> =
            points.iter().map(|&(x, y, w)| WeightedPoint::new(x, y, w)).collect();
        let scaled: Vec<WeightedPoint> =
            points.iter().map(|&(x, y, w)| WeightedPoint::new(x, y, w * scale)).collect();
        match (LinearFit::fit(&base), LinearFit::fit(&scaled)) {
            (Ok(a), Ok(b)) => {
                prop_assert!((a.slope - b.slope).abs() < 1e-6 * a.slope.abs().max(1.0));
                prop_assert!((a.intercept - b.intercept).abs() < 1e-6 * a.intercept.abs().max(1.0));
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "fit feasibility diverged: {a:?} vs {b:?}"),
        }
    }

    /// Shifting x by a constant shifts only the intercept: slope invariant.
    #[test]
    fn wlr_translation_invariance(
        points in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 3..30),
        dx in -100.0f64..100.0,
    ) {
        let base: Vec<WeightedPoint> =
            points.iter().map(|&(x, y)| WeightedPoint::new(x, y, 1.0)).collect();
        let shifted: Vec<WeightedPoint> =
            points.iter().map(|&(x, y)| WeightedPoint::new(x + dx, y, 1.0)).collect();
        if let (Ok(a), Ok(b)) = (LinearFit::fit(&base), LinearFit::fit(&shifted)) {
            prop_assert!((a.slope - b.slope).abs() < 1e-6 * a.slope.abs().max(1.0),
                "slope changed under translation: {} vs {}", a.slope, b.slope);
        }
    }

    /// The residual-orthogonality property of weighted least squares:
    /// Σ wᵢ rᵢ = 0 and Σ wᵢ rᵢ xᵢ = 0.
    #[test]
    fn wlr_residuals_are_weight_orthogonal(
        points in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0, 0.1f64..5.0), 3..30),
    ) {
        let pts: Vec<WeightedPoint> =
            points.iter().map(|&(x, y, w)| WeightedPoint::new(x, y, w)).collect();
        if let Ok(fit) = LinearFit::fit(&pts) {
            let r0: f64 = pts.iter().map(|p| p.weight * (p.y - fit.predict(p.x))).sum();
            let r1: f64 = pts.iter().map(|p| p.weight * p.x * (p.y - fit.predict(p.x))).sum();
            let scale: f64 = pts.iter().map(|p| p.weight * p.y.abs()).sum::<f64>().max(1.0);
            prop_assert!(r0.abs() < 1e-7 * scale, "Σwr = {r0}");
            prop_assert!(r1.abs() < 1e-5 * scale * 100.0, "Σwrx = {r1}");
        }
    }

    /// Criterion coherence: an accuracy criterion that reports `Attained`
    /// really has metric ≥ threshold (higher-is-better) or ≤ (lower), and
    /// `DeadlineMissed` really is past the deadline.
    #[test]
    fn accuracy_criterion_coherent(
        threshold in 0.0f64..1.0,
        value in 0.0f64..1.5,
        deadline_s in 1u64..10_000,
        elapsed_s in 0u64..20_000,
        higher in any::<bool>(),
    ) {
        let metric = if higher { Metric::Accuracy } else { Metric::Loss };
        let c = CompletionCriterion::Accuracy {
            metric: metric.clone(),
            threshold,
            deadline: Deadline::Time(SimTime::from_secs(deadline_s)),
        };
        let state = IntermediateState {
            epoch: 1,
            at: SimTime::from_secs(elapsed_s),
            metric_value: value,
            progress: 0.0,
        };
        match c.check(&state, None, SimTime::from_secs(elapsed_s)) {
            CriterionCheck::Attained => {
                if higher {
                    prop_assert!(value >= threshold);
                } else {
                    prop_assert!(value <= threshold);
                }
            }
            CriterionCheck::DeadlineMissed => {
                prop_assert!(elapsed_s >= deadline_s);
                if higher {
                    prop_assert!(value < threshold);
                } else {
                    prop_assert!(value > threshold);
                }
            }
            CriterionCheck::Continue => {
                prop_assert!(elapsed_s < deadline_s);
            }
        }
    }

    /// Convergence attainment implies the observed delta was within bounds.
    #[test]
    fn convergence_criterion_coherent(
        delta in 0.0001f64..0.2,
        prev_v in 0.0f64..1.0,
        curr_v in 0.0f64..1.0,
        epoch in 2u64..100,
        max_epochs in 2u64..100,
    ) {
        let c = CompletionCriterion::Convergence {
            metric: Metric::Accuracy,
            delta,
            deadline: Deadline::Epochs(max_epochs),
        };
        let prev = IntermediateState { epoch: epoch - 1, at: SimTime::ZERO, metric_value: prev_v, progress: 0.0 };
        let curr = IntermediateState { epoch, at: SimTime::ZERO, metric_value: curr_v, progress: 0.0 };
        if c.check(&curr, Some(&prev), SimTime::ZERO) == CriterionCheck::Attained {
            prop_assert!((curr_v - prev_v).abs() <= delta);
        }
    }

    /// scalar_similarity is symmetric, bounded, and 1 iff equal (positives).
    #[test]
    fn similarity_axioms(x in 0.001f64..1e9, y in 0.001f64..1e9) {
        let s = scalar_similarity(x, y);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - scalar_similarity(y, x)).abs() < 1e-12);
        if (x - y).abs() < 1e-15 {
            prop_assert!((s - 1.0).abs() < 1e-12);
        }
    }

    /// top_k returns scores in non-increasing order and at most k items.
    #[test]
    fn top_k_sorted_and_bounded(
        items in proptest::collection::vec(0.0f64..1e6, 0..50),
        k in 0usize..20,
    ) {
        let picked = top_k_by(&items, k, |&x| scalar_similarity(500.0, x));
        prop_assert!(picked.len() <= k.min(items.len()));
        for pair in picked.windows(2) {
            prop_assert!(pair[0].1 >= pair[1].1);
        }
    }
}
