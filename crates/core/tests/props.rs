//! Property-based tests of the framework core: regression invariances,
//! criteria coherence, and similarity-order properties.

use rotary_check::check;
use rotary_core::criteria::{CompletionCriterion, CriterionCheck, Deadline, Metric};
use rotary_core::estimate::similarity::{scalar_similarity, top_k_by};
use rotary_core::estimate::wlr::{LinearFit, WeightedPoint};
use rotary_core::job::IntermediateState;
use rotary_core::SimTime;

/// Scaling every weight by the same positive constant leaves the fit
/// unchanged (weights are relative).
#[test]
fn wlr_weight_scale_invariance() {
    check("wlr_weight_scale_invariance", |src| {
        let points = src.vec_of(3, 39, |s| {
            (s.f64_in(-100.0, 100.0), s.f64_in(-100.0, 100.0), s.f64_in(0.1, 10.0))
        });
        let scale = src.f64_in(0.01, 100.0);
        let base: Vec<WeightedPoint> =
            points.iter().map(|&(x, y, w)| WeightedPoint::new(x, y, w)).collect();
        let scaled: Vec<WeightedPoint> =
            points.iter().map(|&(x, y, w)| WeightedPoint::new(x, y, w * scale)).collect();
        match (LinearFit::fit(&base), LinearFit::fit(&scaled)) {
            (Ok(a), Ok(b)) => {
                assert!((a.slope - b.slope).abs() < 1e-6 * a.slope.abs().max(1.0));
                assert!((a.intercept - b.intercept).abs() < 1e-6 * a.intercept.abs().max(1.0));
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("fit feasibility diverged: {a:?} vs {b:?}"),
        }
    });
}

/// Shifting x by a constant shifts only the intercept: slope invariant.
#[test]
fn wlr_translation_invariance() {
    check("wlr_translation_invariance", |src| {
        let points = src.vec_of(3, 29, |s| (s.f64_in(-50.0, 50.0), s.f64_in(-50.0, 50.0)));
        let dx = src.f64_in(-100.0, 100.0);
        let base: Vec<WeightedPoint> =
            points.iter().map(|&(x, y)| WeightedPoint::new(x, y, 1.0)).collect();
        let shifted: Vec<WeightedPoint> =
            points.iter().map(|&(x, y)| WeightedPoint::new(x + dx, y, 1.0)).collect();
        if let (Ok(a), Ok(b)) = (LinearFit::fit(&base), LinearFit::fit(&shifted)) {
            assert!(
                (a.slope - b.slope).abs() < 1e-6 * a.slope.abs().max(1.0),
                "slope changed under translation: {} vs {}",
                a.slope,
                b.slope
            );
        }
    });
}

/// The residual-orthogonality property of weighted least squares:
/// Σ wᵢ rᵢ = 0 and Σ wᵢ rᵢ xᵢ = 0.
#[test]
fn wlr_residuals_are_weight_orthogonal() {
    check("wlr_residuals_are_weight_orthogonal", |src| {
        let points = src
            .vec_of(3, 29, |s| (s.f64_in(-50.0, 50.0), s.f64_in(-50.0, 50.0), s.f64_in(0.1, 5.0)));
        let pts: Vec<WeightedPoint> =
            points.iter().map(|&(x, y, w)| WeightedPoint::new(x, y, w)).collect();
        if let Ok(fit) = LinearFit::fit(&pts) {
            let r0: f64 = pts.iter().map(|p| p.weight * (p.y - fit.predict(p.x))).sum();
            let r1: f64 = pts.iter().map(|p| p.weight * p.x * (p.y - fit.predict(p.x))).sum();
            let scale: f64 = pts.iter().map(|p| p.weight * p.y.abs()).sum::<f64>().max(1.0);
            assert!(r0.abs() < 1e-7 * scale, "Σwr = {r0}");
            assert!(r1.abs() < 1e-5 * scale * 100.0, "Σwrx = {r1}");
        }
    });
}

/// Criterion coherence: an accuracy criterion that reports `Attained`
/// really has metric ≥ threshold (higher-is-better) or ≤ (lower), and
/// `DeadlineMissed` really is past the deadline.
#[test]
fn accuracy_criterion_coherent() {
    check("accuracy_criterion_coherent", |src| {
        let threshold = src.f64_in(0.0, 1.0);
        let value = src.f64_in(0.0, 1.5);
        let deadline_s = src.u64_in(1, 9_999);
        let elapsed_s = src.u64_in(0, 19_999);
        let higher = src.bool(0.5);
        let metric = if higher { Metric::Accuracy } else { Metric::Loss };
        let c = CompletionCriterion::Accuracy {
            metric: metric.clone(),
            threshold,
            deadline: Deadline::Time(SimTime::from_secs(deadline_s)),
        };
        let state = IntermediateState {
            epoch: 1,
            at: SimTime::from_secs(elapsed_s),
            metric_value: value,
            progress: 0.0,
        };
        match c.check(&state, None, SimTime::from_secs(elapsed_s)) {
            CriterionCheck::Attained => {
                if higher {
                    assert!(value >= threshold);
                } else {
                    assert!(value <= threshold);
                }
            }
            CriterionCheck::DeadlineMissed => {
                assert!(elapsed_s >= deadline_s);
                if higher {
                    assert!(value < threshold);
                } else {
                    assert!(value > threshold);
                }
            }
            CriterionCheck::Continue => {
                assert!(elapsed_s < deadline_s);
            }
        }
    });
}

/// Convergence attainment implies the observed delta was within bounds.
#[test]
fn convergence_criterion_coherent() {
    check("convergence_criterion_coherent", |src| {
        let delta = src.f64_in(0.0001, 0.2);
        let prev_v = src.f64_in(0.0, 1.0);
        let curr_v = src.f64_in(0.0, 1.0);
        let epoch = src.u64_in(2, 99);
        let max_epochs = src.u64_in(2, 99);
        let c = CompletionCriterion::Convergence {
            metric: Metric::Accuracy,
            delta,
            deadline: Deadline::Epochs(max_epochs),
        };
        let prev = IntermediateState {
            epoch: epoch - 1,
            at: SimTime::ZERO,
            metric_value: prev_v,
            progress: 0.0,
        };
        let curr =
            IntermediateState { epoch, at: SimTime::ZERO, metric_value: curr_v, progress: 0.0 };
        if c.check(&curr, Some(&prev), SimTime::ZERO) == CriterionCheck::Attained {
            assert!((curr_v - prev_v).abs() <= delta);
        }
    });
}

/// scalar_similarity is symmetric, bounded, and 1 iff equal (positives).
#[test]
fn similarity_axioms() {
    check("similarity_axioms", |src| {
        let x = src.f64_in(0.001, 1e9);
        let y = src.f64_in(0.001, 1e9);
        let s = scalar_similarity(x, y);
        assert!((0.0..=1.0).contains(&s));
        assert!((s - scalar_similarity(y, x)).abs() < 1e-12);
        if (x - y).abs() < 1e-15 {
            assert!((s - 1.0).abs() < 1e-12);
        }
    });
}

/// top_k returns scores in non-increasing order and at most k items.
#[test]
fn top_k_sorted_and_bounded() {
    check("top_k_sorted_and_bounded", |src| {
        let items = src.vec_of(0, 49, |s| s.f64_in(0.0, 1e6));
        let k = src.usize_in(0, 19);
        let picked = top_k_by(&items, k, |&x| scalar_similarity(500.0, x));
        assert!(picked.len() <= k.min(items.len()));
        for pair in picked.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    });
}
