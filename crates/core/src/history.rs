//! The historical-job repository (paper Fig. 5 "Store" and §IV-B).
//!
//! Rotary "stores the progressive iterative analytic jobs and tracks
//! intermediate processing results since such information can be used to
//! provide a better estimation". For completed DLT jobs the paper keeps
//! "model architecture, training hyperparameters, training epochs, and
//! evaluation accuracy"; for AQP jobs, query features and progress-runtime
//! observations. [`JobRecord`] captures both shapes with a label, string
//! tags, numeric features, and the observed metric curve.

use crate::error::{Result, RotaryError};
use crate::job::JobKind;
use crate::json::{self, Json};
use std::collections::BTreeMap;
use std::path::Path;

/// A completed job's footprint in the repository.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Application family the record belongs to.
    pub kind: JobKind,
    /// Human-readable identity: `"q5"`, `"ResNet-18"`, ….
    pub label: String,
    /// Categorical features: referenced tables/columns for AQP, optimizer
    /// name or dataset for DLT.
    pub tags: Vec<String>,
    /// Numeric features: batch size, learning rate, parameter count (in
    /// millions), estimated memory, ….
    pub numeric_features: BTreeMap<String, f64>,
    /// The observed metric curve as `(x, metric)` pairs — x is runtime
    /// seconds for AQP, epochs for DLT.
    pub curve: Vec<(f64, f64)>,
    /// Final metric value when the job finished.
    pub final_metric: f64,
    /// Total epochs the job ran.
    pub epochs: u64,
}

impl JobRecord {
    /// Reads a numeric feature, if present.
    pub fn feature(&self, name: &str) -> Option<f64> {
        self.numeric_features.get(name).copied()
    }

    fn to_json_value(&self) -> Json {
        let kind = match self.kind {
            JobKind::Aqp => "aqp",
            JobKind::Dlt => "dlt",
        };
        Json::obj(vec![
            ("kind", Json::Str(kind.into())),
            ("label", Json::Str(self.label.clone())),
            ("tags", Json::Arr(self.tags.iter().map(|t| Json::Str(t.clone())).collect())),
            ("numeric_features", json::num_map_to_json(&self.numeric_features)),
            (
                "curve",
                Json::Arr(
                    self.curve
                        .iter()
                        .map(|&(x, y)| Json::Arr(vec![Json::Num(x), Json::Num(y)]))
                        .collect(),
                ),
            ),
            ("final_metric", Json::Num(self.final_metric)),
            ("epochs", Json::Num(self.epochs as f64)),
        ])
    }

    fn from_json_value(v: &Json) -> std::result::Result<JobRecord, String> {
        let field = |name: &str| v.get(name).ok_or_else(|| format!("missing field '{name}'"));
        let kind = match field("kind")?.as_str().ok_or("'kind' is not a string")? {
            "aqp" => JobKind::Aqp,
            "dlt" => JobKind::Dlt,
            other => return Err(format!("unknown job kind '{other}'")),
        };
        let tags = field("tags")?
            .as_arr()
            .ok_or("'tags' is not an array")?
            .iter()
            .map(|t| t.as_str().map(String::from).ok_or("tag is not a string".to_string()))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        let curve = field("curve")?
            .as_arr()
            .ok_or("'curve' is not an array")?
            .iter()
            .map(|p| {
                let pair =
                    p.as_arr().filter(|a| a.len() == 2).ok_or("curve point is not a pair")?;
                match (pair[0].as_f64(), pair[1].as_f64()) {
                    (Some(x), Some(y)) => Ok((x, y)),
                    _ => Err("curve point is not numeric".to_string()),
                }
            })
            .collect::<std::result::Result<Vec<_>, String>>()?;
        Ok(JobRecord {
            kind,
            label: field("label")?.as_str().ok_or("'label' is not a string")?.to_string(),
            tags,
            numeric_features: json::num_map_from_json(field("numeric_features")?)?,
            curve,
            final_metric: field("final_metric")?.as_f64().ok_or("'final_metric' not numeric")?,
            epochs: field("epochs")?.as_u64().ok_or("'epochs' not an integer")?,
        })
    }
}

/// In-memory repository of completed jobs with JSON persistence.
///
/// The repository is append-only during a run: estimators read it, the
/// execution loop inserts completed jobs.
#[derive(Debug, Clone, Default)]
pub struct HistoryRepository {
    records: Vec<JobRecord>,
}

impl HistoryRepository {
    /// Creates an empty repository (the cold-start condition).
    pub fn new() -> Self {
        HistoryRepository::default()
    }

    /// Inserts a completed-job record.
    pub fn insert(&mut self, record: JobRecord) {
        self.records.push(record);
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no job has completed yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over all records.
    pub fn iter(&self) -> impl Iterator<Item = &JobRecord> {
        self.records.iter()
    }

    /// Records of one application family.
    pub fn of_kind(&self, kind: JobKind) -> Vec<&JobRecord> {
        self.records.iter().filter(|r| r.kind == kind).collect()
    }

    /// Removes every record whose label satisfies the predicate. Returns how
    /// many were removed. (Used by the Fig. 11 micro-benchmark, which drops
    /// all NLP-model history to force erroneous estimation.)
    pub fn remove_where<F: Fn(&JobRecord) -> bool>(&mut self, predicate: F) -> usize {
        let before = self.records.len();
        self.records.retain(|r| !predicate(r));
        before - self.records.len()
    }

    /// Selects the top-k records of `kind` by a caller-supplied similarity
    /// score, descending; ties keep insertion order.
    pub fn top_k_similar<F>(&self, kind: JobKind, k: usize, score: F) -> Vec<(&JobRecord, f64)>
    where
        F: FnMut(&&JobRecord) -> f64,
    {
        let of_kind = self.of_kind(kind);
        crate::estimate::similarity::top_k_by(&of_kind, k, score)
            .into_iter()
            .map(|(r, s)| (*r, s))
            .collect()
    }

    /// Serialises the repository to pretty JSON.
    pub fn to_json(&self) -> Result<String> {
        let records = Json::Arr(self.records.iter().map(JobRecord::to_json_value).collect());
        Ok(Json::obj(vec![("records", records)]).to_pretty())
    }

    /// Restores a repository from JSON.
    pub fn from_json(text: &str) -> Result<Self> {
        let doc = json::parse(text).map_err(RotaryError::Persistence)?;
        let records = doc
            .get("records")
            .and_then(Json::as_arr)
            .ok_or_else(|| RotaryError::Persistence("missing 'records' array".into()))?
            .iter()
            .map(JobRecord::from_json_value)
            .collect::<std::result::Result<Vec<_>, String>>()
            .map_err(RotaryError::Persistence)?;
        Ok(HistoryRepository { records })
    }

    /// Writes the repository to a file.
    pub fn save(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.to_json()?)
            .map_err(|e| RotaryError::Persistence(format!("{}: {e}", path.display())))
    }

    /// Loads a repository from a file.
    pub fn load(path: &Path) -> Result<Self> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| RotaryError::Persistence(format!("{}: {e}", path.display())))?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::similarity::scalar_similarity;

    fn record(label: &str, kind: JobKind, params_m: f64) -> JobRecord {
        JobRecord {
            kind,
            label: label.into(),
            tags: vec!["cifar10".into()],
            numeric_features: BTreeMap::from([("params_m".into(), params_m)]),
            curve: vec![(1.0, 0.4), (2.0, 0.6)],
            final_metric: 0.6,
            epochs: 2,
        }
    }

    #[test]
    fn insert_and_filter_by_kind() {
        let mut repo = HistoryRepository::new();
        assert!(repo.is_empty());
        repo.insert(record("resnet18", JobKind::Dlt, 11.7));
        repo.insert(record("q5", JobKind::Aqp, 0.0));
        assert_eq!(repo.len(), 2);
        assert_eq!(repo.of_kind(JobKind::Dlt).len(), 1);
        assert_eq!(repo.of_kind(JobKind::Aqp)[0].label, "q5");
    }

    #[test]
    fn top_k_similar_by_parameter_count() {
        let mut repo = HistoryRepository::new();
        for (label, p) in
            [("lenet", 0.06), ("resnet18", 11.7), ("resnet34", 21.8), ("vgg16", 138.0)]
        {
            repo.insert(record(label, JobKind::Dlt, p));
        }
        let target = 12.0;
        let top = repo.top_k_similar(JobKind::Dlt, 2, |r| {
            scalar_similarity(target, r.feature("params_m").unwrap_or(0.0))
        });
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0.label, "resnet18");
        assert_eq!(top[1].0.label, "resnet34");
    }

    #[test]
    fn remove_where_drops_matching_records() {
        let mut repo = HistoryRepository::new();
        repo.insert(record("bert", JobKind::Dlt, 110.0));
        repo.insert(record("lstm", JobKind::Dlt, 2.0));
        repo.insert(record("resnet18", JobKind::Dlt, 11.7));
        let removed = repo.remove_where(|r| r.label == "bert" || r.label == "lstm");
        assert_eq!(removed, 2);
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.iter().next().unwrap().label, "resnet18");
    }

    #[test]
    fn json_round_trip() {
        let mut repo = HistoryRepository::new();
        repo.insert(record("resnet18", JobKind::Dlt, 11.7));
        let json = repo.to_json().unwrap();
        let restored = HistoryRepository::from_json(&json).unwrap();
        assert_eq!(restored.len(), 1);
        assert_eq!(restored.iter().next().unwrap(), repo.iter().next().unwrap());
    }

    #[test]
    fn file_round_trip() {
        let mut repo = HistoryRepository::new();
        repo.insert(record("q7", JobKind::Aqp, 0.0));
        let dir = std::env::temp_dir().join("rotary-history-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.json");
        repo.save(&path).unwrap();
        let restored = HistoryRepository::load(&path).unwrap();
        assert_eq!(restored.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_persistence_error() {
        let err = HistoryRepository::load(Path::new("/nonexistent/rotary.json")).unwrap_err();
        assert!(matches!(err, RotaryError::Persistence(_)));
    }

    #[test]
    fn from_bad_json_is_persistence_error() {
        assert!(matches!(
            HistoryRepository::from_json("{not json"),
            Err(RotaryError::Persistence(_))
        ));
    }
}
