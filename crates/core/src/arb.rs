//! Control-plane arbitration primitives: total-order float keys, an
//! incrementally maintained priority index, and decision memoization.
//!
//! Production-scale arbitration (ROADMAP: 100k concurrent jobs) makes the
//! per-epoch control-plane cost itself the hot path. The arbitration loops
//! in `rotary-aqp` and `rotary-dlt` historically re-derived their priority
//! order from scratch on every event — an O(n log n) sort over O(n)
//! recomputed keys per event. The primitives here let them keep the order
//! *standing* between events instead, in the spirit of Execution Templates'
//! validate-and-patch: a job's key is recomputed only when one of its inputs
//! changed, and the ordered structure absorbs that single update in
//! O(log n).
//!
//! Everything is deterministic and zero-dependency: the index is a
//! `BTreeSet` over `(key, id)` pairs, the key is a [total order over
//! f64](OrdF64) (so `NaN` cannot panic a comparator — the historical
//! `partial_cmp(..).unwrap()` sites are replaced by this type), and the
//! memo cache is a plain fingerprint comparison with no hashing involved.

use std::collections::{BTreeMap, BTreeSet};

/// An `f64` wrapped into a *total* order, for use as a sort or B-tree key.
///
/// Ordering matches IEEE `<` on ordinary values; `-0.0` and `+0.0` compare
/// equal (both canonicalise to `+0.0`), and every `NaN` sorts *after*
/// `+∞` — a poisoned key sinks to the bottom of a priority order instead of
/// panicking the comparator or (worse) corrupting a sort with an
/// inconsistent `Ordering::Equal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct OrdF64(u64);

impl OrdF64 {
    /// Wraps a float into the total order.
    pub fn new(x: f64) -> Self {
        if x.is_nan() {
            return OrdF64(u64::MAX);
        }
        // Collapse -0.0 onto +0.0 before the bit trick so the two zeros
        // compare equal.
        let x = if x == 0.0 { 0.0 } else { x };
        let bits = x.to_bits();
        // Monotone bijection from IEEE-754 bit patterns to u64 order:
        // negative floats reverse (two's-complement style), positives shift
        // above them.
        OrdF64(if bits >> 63 == 1 { !bits } else { bits ^ (1 << 63) })
    }
}

/// Snaps a positive duration (or any positive quantity) onto a fixed
/// logarithmic grid with `steps` steps per octave.
///
/// The arbitration loops use this for *fleet-level* estimator inputs (the
/// average epoch duration): the raw average moves a few ULPs on every
/// completed epoch, which would invalidate every cold job's cached priority
/// key on every event. Snapped to a ~1% grid, the shared input only changes
/// when the fleet average genuinely drifts, so re-keying the cold set is
/// amortised away. The function is pure (no state), so snapshot-restored
/// runs recompute the identical grid point.
pub fn quantize_log2(x: f64, steps: u32) -> f64 {
    if !x.is_finite() || x <= 0.0 {
        return if x.is_nan() { x } else { x.max(0.0) };
    }
    let steps = steps.max(1) as f64;
    ((x.log2() * steps).round() / steps).exp2()
}

/// An incrementally maintained priority order over job ids.
///
/// Semantically equivalent to sorting `(key, id)` ascending — the property
/// suite pins exactly that equivalence, tied keys included — but updates in
/// O(log n) per changed job instead of O(n log n) per event. The index
/// remembers each id's current key, so a re-insert with an unchanged key is
/// a no-op and stale entries can be removed without the caller tracking
/// them.
#[derive(Debug, Clone)]
pub struct PriorityIndex<K: Ord + Copy> {
    set: BTreeSet<(K, u32)>,
    current: BTreeMap<u32, K>,
}

impl<K: Ord + Copy> Default for PriorityIndex<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy> PriorityIndex<K> {
    /// An empty index.
    pub fn new() -> Self {
        PriorityIndex { set: BTreeSet::new(), current: BTreeMap::new() }
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.set.clear();
        self.current.clear();
    }

    /// Inserts `id` with `key`, replacing any previous entry for `id`.
    /// Returns `true` if the index changed (new id, or key moved).
    pub fn upsert(&mut self, id: u32, key: K) -> bool {
        match self.current.insert(id, key) {
            Some(old) if old == key => false,
            Some(old) => {
                self.set.remove(&(old, id));
                self.set.insert((key, id));
                true
            }
            None => {
                self.set.insert((key, id));
                true
            }
        }
    }

    /// Removes `id` from the index. Returns `true` if it was present.
    pub fn remove(&mut self, id: u32) -> bool {
        match self.current.remove(&id) {
            Some(old) => {
                self.set.remove(&(old, id));
                true
            }
            None => false,
        }
    }

    /// Whether `id` currently has an entry.
    pub fn contains(&self, id: u32) -> bool {
        self.current.contains_key(&id)
    }

    /// The key currently stored for `id`.
    pub fn key_of(&self, id: u32) -> Option<K> {
        self.current.get(&id).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// Entries in priority order (ascending `(key, id)`).
    pub fn iter(&self) -> impl Iterator<Item = (K, u32)> + '_ {
        self.set.iter().copied()
    }
}

/// Memoizes the previous arbitration decision behind a caller-built
/// fingerprint.
///
/// The fingerprint must capture *every* input the arbitration pass reads:
/// whichever job states changed (callers pass a dirty-set-empty flag), pool
/// occupancy, transient memory pressure, and any fleet-level estimator
/// inputs. When the fingerprint matches the one stored after the previous
/// pass, re-running the pass would reproduce it verbatim and grant nothing
/// new — so the caller skips it entirely. No hashing: the fingerprint is
/// compared field-for-field, so a hit can never be a collision.
#[derive(Debug, Clone)]
pub struct DecisionCache<F: PartialEq> {
    last: Option<F>,
}

impl<F: PartialEq> Default for DecisionCache<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: PartialEq> DecisionCache<F> {
    /// An empty cache (first check always misses).
    pub fn new() -> Self {
        DecisionCache { last: None }
    }

    /// Whether `fingerprint` matches the stored post-decision state.
    pub fn hit(&self, fingerprint: &F) -> bool {
        self.last.as_ref() == Some(fingerprint)
    }

    /// Stores the fingerprint captured *after* an arbitration pass ran.
    pub fn store(&mut self, fingerprint: F) {
        self.last = Some(fingerprint);
    }

    /// Forgets the stored fingerprint (next check misses).
    pub fn invalidate(&mut self) {
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordf64_matches_ieee_on_ordinary_values() {
        let vals = [-f64::INFINITY, -1e300, -2.5, -1e-308, 0.0, 1e-308, 2.5, 1e300, f64::INFINITY];
        for w in vals.windows(2) {
            assert!(OrdF64::new(w[0]) < OrdF64::new(w[1]), "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn ordf64_zeros_compare_equal() {
        assert_eq!(OrdF64::new(-0.0), OrdF64::new(0.0));
    }

    #[test]
    fn ordf64_nan_sorts_last() {
        assert!(OrdF64::new(f64::INFINITY) < OrdF64::new(f64::NAN));
        assert!(OrdF64::new(-f64::NAN) == OrdF64::new(f64::NAN));
    }

    #[test]
    fn quantize_is_idempotent_and_monotone() {
        let xs = [1e-6, 0.5, 59.7, 60.0, 61.3, 1e9];
        for &x in &xs {
            let q = quantize_log2(x, 64);
            assert_eq!(quantize_log2(q, 64), q, "idempotent at {x}");
            assert!((q / x - 1.0).abs() < 0.011, "within one grid step at {x}");
        }
        for w in xs.windows(2) {
            assert!(quantize_log2(w[0], 64) <= quantize_log2(w[1], 64));
        }
        assert_eq!(quantize_log2(0.0, 64), 0.0);
        assert_eq!(quantize_log2(-3.0, 64), 0.0);
        assert_eq!(quantize_log2(f64::INFINITY, 64), f64::INFINITY);
    }

    #[test]
    fn index_tracks_upserts_and_removals() {
        let mut idx: PriorityIndex<OrdF64> = PriorityIndex::new();
        assert!(idx.upsert(1, OrdF64::new(3.0)));
        assert!(idx.upsert(2, OrdF64::new(1.0)));
        assert!(idx.upsert(3, OrdF64::new(2.0)));
        assert!(!idx.upsert(2, OrdF64::new(1.0)), "unchanged key is a no-op");
        let order: Vec<u32> = idx.iter().map(|(_, id)| id).collect();
        assert_eq!(order, vec![2, 3, 1]);
        assert!(idx.upsert(1, OrdF64::new(0.0)), "moved key re-sorts");
        let order: Vec<u32> = idx.iter().map(|(_, id)| id).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(idx.remove(2));
        assert!(!idx.remove(2));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.key_of(3), Some(OrdF64::new(2.0)));
    }

    #[test]
    fn index_ties_break_by_id() {
        let mut idx: PriorityIndex<OrdF64> = PriorityIndex::new();
        for id in [5u32, 1, 9, 3] {
            idx.upsert(id, OrdF64::new(7.0));
        }
        let order: Vec<u32> = idx.iter().map(|(_, id)| id).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
    }

    #[test]
    fn decision_cache_round_trip() {
        let mut cache: DecisionCache<(u32, u64)> = DecisionCache::new();
        assert!(!cache.hit(&(1, 2)));
        cache.store((1, 2));
        assert!(cache.hit(&(1, 2)));
        assert!(!cache.hit(&(1, 3)));
        cache.invalidate();
        assert!(!cache.hit(&(1, 2)));
    }
}
