//! # Rotary core framework
//!
//! This crate implements the application-independent half of **Rotary**, the
//! resource arbitration framework for progressive iterative analytics
//! (Liu, Elmore, Franklin, Krishnan — ICDE 2023).
//!
//! A *progressive iterative analytic* job processes data in batches, emits an
//! intermediate result every *epoch*, and terminates when a user-defined
//! [completion criterion](criteria::CompletionCriterion) is met. Resource
//! arbitration continuously decides, per epoch, which jobs receive resources,
//! which are deferred (checkpointed), and how long each job's next running
//! epoch should be — driven by estimates of *attainment progress* `φ` and of
//! resource consumption.
//!
//! The crate provides:
//!
//! * the completion-criteria model and its SQL-like surface syntax
//!   ([`criteria`], [`parser`]) — `ACC MIN 95% WITHIN 3600 SECONDS`,
//!   `LOSS DELTA 0.001 WITHIN 30 EPOCHS`, `FOR 2 HOURS`;
//! * the job/state model ([`job`]) and attainment metrics `φ`/`ψ`
//!   ([`progress`]);
//! * the estimation toolkit ([`estimate`]): weighted linear regression over
//!   pluggable basis functions, the paper's joint historical+real-time curve
//!   fitting, similarity-based top-k neighbour selection, and the envelope
//!   convergence detector used by Rotary-AQP;
//! * the historical-job repository ([`history`]) and the in-tree JSON
//!   reader/writer backing its persistence ([`json`]);
//! * resource descriptions ([`resources`]) and the arbitration policy
//!   abstraction ([`policy`]);
//! * the cost model balancing progress improvement against resource
//!   consumption ([`cost`]).
//!
//! The application-specific halves live in the `rotary-aqp` and `rotary-dlt`
//! crates, which instantiate this framework for approximate query processing
//! and deep learning training respectively.

#![warn(missing_docs)]

pub mod arb;
pub mod cost;
pub mod criteria;
pub mod error;
pub mod estimate;
pub mod history;
pub mod job;
pub mod json;
pub mod parser;
pub mod policy;
pub mod progress;
pub mod resources;
pub mod time;

pub use criteria::{CompletionCriterion, Deadline, Metric};
pub use error::{Result, RotaryError};
pub use job::{IntermediateState, JobId, JobKind, JobState, JobStatus};
pub use parser::parse_statement;
pub use progress::{attainment_rate, Objective, Progress};
pub use time::SimTime;
