//! The arbitration cost model (paper §III-C, second opportunity).
//!
//! "This leads to a cost model which should balance the progress improvement
//! (i.e., providing more valuable results) and resource consumption (the
//! cost to improve the progress or produce the results)."
//!
//! [`CostModel::utility`] scores a candidate grant: estimated progress gain
//! per unit of resource consumed, discounted by the interruption overhead a
//! grant would force on whatever job currently holds the resource. The
//! shipped Rotary-AQP/DLT systems encode this balance *structurally*
//! (adaptive epochs price resource consumption, the laxity/threshold
//! rankings price progress), so the explicit model is the framework-level
//! surface for custom policies — e.g. a policy that only preempts when
//! `is_beneficial` holds.

/// Weights balancing progress improvement against resource consumption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Reward per unit of estimated progress gain (`Δφ̂ ∈ [0, 1]`).
    pub progress_weight: f64,
    /// Penalty per unit of normalised resource consumption (fraction of the
    /// pool the grant would occupy, in `[0, 1]`).
    pub resource_weight: f64,
    /// Penalty applied when granting requires preempting a running job
    /// (checkpoint + later restore), in the same utility units.
    pub preemption_penalty: f64,
}

impl Default for CostModel {
    /// A progress-dominant default: progress gains are worth ten times their
    /// resource cost, and preemption costs as much as 5% progress. These
    /// ratios reproduce the paper's qualitative behaviour (promising jobs
    /// win resources; thrashing is discouraged).
    fn default() -> Self {
        CostModel { progress_weight: 10.0, resource_weight: 1.0, preemption_penalty: 0.5 }
    }
}

impl CostModel {
    /// Utility of a candidate grant.
    ///
    /// * `estimated_gain` — estimated progress improvement `Δφ̂` from the
    ///   grant, clamped to `[0, 1]`.
    /// * `resource_fraction` — fraction of the pool consumed, clamped to
    ///   `[0, 1]`.
    /// * `requires_preemption` — whether a running job must be checkpointed.
    ///
    /// Higher is better; can be negative (grant not worth it).
    pub fn utility(
        &self,
        estimated_gain: f64,
        resource_fraction: f64,
        requires_preemption: bool,
    ) -> f64 {
        let gain = if estimated_gain.is_nan() { 0.0 } else { estimated_gain.clamp(0.0, 1.0) };
        let frac = if resource_fraction.is_nan() { 1.0 } else { resource_fraction.clamp(0.0, 1.0) };
        let mut u = self.progress_weight * gain - self.resource_weight * frac;
        if requires_preemption {
            u -= self.preemption_penalty;
        }
        u
    }

    /// Convenience: is the grant worth making at all?
    pub fn is_beneficial(
        &self,
        estimated_gain: f64,
        resource_fraction: f64,
        requires_preemption: bool,
    ) -> bool {
        self.utility(estimated_gain, resource_fraction, requires_preemption) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_gain_means_more_utility() {
        let m = CostModel::default();
        assert!(m.utility(0.5, 0.1, false) > m.utility(0.2, 0.1, false));
    }

    #[test]
    fn more_resources_mean_less_utility() {
        let m = CostModel::default();
        assert!(m.utility(0.3, 0.1, false) > m.utility(0.3, 0.9, false));
    }

    #[test]
    fn preemption_is_penalised() {
        let m = CostModel::default();
        let free = m.utility(0.3, 0.2, false);
        let preempting = m.utility(0.3, 0.2, true);
        assert!((free - preempting - m.preemption_penalty).abs() < 1e-12);
    }

    #[test]
    fn tiny_gain_on_preemption_is_not_beneficial() {
        let m = CostModel::default();
        // 1% estimated gain does not justify checkpointing a running job.
        assert!(!m.is_beneficial(0.01, 0.05, true));
        // 20% gain does.
        assert!(m.is_beneficial(0.20, 0.05, true));
    }

    #[test]
    fn inputs_are_clamped() {
        let m = CostModel::default();
        assert_eq!(m.utility(5.0, 0.0, false), m.utility(1.0, 0.0, false));
        assert_eq!(m.utility(-2.0, 0.0, false), 0.0);
        assert_eq!(m.utility(f64::NAN, 0.5, false), m.utility(0.0, 0.5, false));
        // NaN resource fraction is treated pessimistically as the whole pool.
        assert_eq!(m.utility(0.5, f64::NAN, false), m.utility(0.5, 1.0, false));
    }
}
