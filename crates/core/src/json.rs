//! Minimal in-tree JSON: a value model, a pretty writer, and a
//! recursive-descent parser.
//!
//! Rotary persists exactly two artifact families — the historical-job
//! repository ([`crate::history`]) and simulation traces
//! (`rotary_sim::metrics`) — and the bench binaries emit result files for
//! external plotting. That narrow surface does not justify an external
//! serialization framework: this module covers objects, arrays, strings
//! (with escape handling), `f64` numbers (written in shortest round-trip
//! form, so `value == parse(write(value))` exactly), booleans, and null,
//! keeping the workspace free of registry dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; stored as `f64` (integers round-trip exactly up to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises to pretty-printed JSON (two-space indent).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; persist as null like serde_json does.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` is Rust's shortest representation that round-trips through
        // `str::parse::<f64>()` exactly.
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
/// Returns a message with the byte offset of the first syntax error; trailing
/// non-whitespace after the top-level value is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    // Named `expect` is fine now: rotary-lint matches P001 on tokens and
    // exempts `.expect(<byte/char literal>)` calls, so this parser-style
    // method no longer needs the `expect_byte` workaround name (PR 4).
    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for Rotary's
                            // ASCII artifact surface; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!("unknown escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid UTF-8 in number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

/// Encodes a `u64` as a decimal string. `Json::Num` holds an `f64`, which
/// loses precision above 2⁵³ — exact-width values (simulation timestamps,
/// RNG words, sequence counters) go through strings instead.
pub fn u64_json(v: u64) -> Json {
    Json::Str(v.to_string())
}

impl Json {
    /// Decodes a `u64` written by [`u64_json`]: a string holding only a
    /// decimal integer. Rejects signs, whitespace, and non-string values.
    pub fn as_u64_str(&self) -> Option<u64> {
        match self {
            Json::Str(s) if !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()) => {
                s.parse::<u64>().ok()
            }
            _ => None,
        }
    }
}

/// Convenience: a string-keyed `f64` map as a JSON object (sorted keys).
pub fn num_map_to_json(map: &BTreeMap<String, f64>) -> Json {
    Json::Obj(map.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect())
}

/// Convenience: parses a JSON object back into a string-keyed `f64` map.
pub fn num_map_from_json(json: &Json) -> Result<BTreeMap<String, f64>, String> {
    match json {
        Json::Obj(pairs) => pairs
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("feature '{k}' is not a number"))
            })
            .collect(),
        _ => Err("expected an object of numbers".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-17.0),
            Json::Num(0.1),
            Json::Num(1e300),
            Json::Num(5e-324),
            Json::Str("hello".into()),
            Json::Str("esc \" \\ \n \t µ".into()),
        ] {
            let text = v.to_pretty();
            assert_eq!(parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn float_precision_is_exact() {
        // The shortest-repr writer must round-trip every bit pattern we
        // throw at it, including awkward fractions.
        for v in [1.0472809695593754f64, 0.1 + 0.2, std::f64::consts::PI, 1.0 / 3.0] {
            let text = Json::Num(v).to_pretty();
            assert_eq!(parse(&text).unwrap().as_f64().unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let v = Json::obj(vec![
            ("name", Json::Str("q5".into())),
            (
                "curve",
                Json::Arr(vec![
                    Json::Arr(vec![Json::Num(0.1), Json::Num(0.4)]),
                    Json::Arr(vec![Json::Num(1.0), Json::Num(0.9)]),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        let text = v.to_pretty();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.get("name").unwrap().as_str().unwrap(), "q5");
        assert_eq!(parsed.get("curve").unwrap().as_arr().unwrap().len(), 2);
        assert!(parsed.get("flag").unwrap().as_bool().unwrap());
        assert!(parsed.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{bad", "{\"a\":}", "[1,2", "\"unterminated", "12x", "", "{} trailing"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accepts_whitespace_and_unicode_escapes() {
        let v = parse(" { \"a\" : [ 1 , 2.5 ] , \"s\" : \"\\u0041\" } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::Num(2.5));
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "A");
    }

    #[test]
    fn num_map_round_trips() {
        let map = BTreeMap::from([("lr".to_string(), 0.001), ("batch".to_string(), 32.0)]);
        let json = num_map_to_json(&map);
        assert_eq!(num_map_from_json(&json).unwrap(), map);
        assert!(num_map_from_json(&Json::Null).is_err());
    }

    #[test]
    fn u64_strings_are_exact_at_full_width() {
        for v in [0u64, 1, (1 << 53) + 1, u64::MAX] {
            let json = u64_json(v);
            let text = json.to_pretty();
            assert_eq!(parse(&text).unwrap().as_u64_str(), Some(v), "{text}");
        }
        assert_eq!(Json::Str("".into()).as_u64_str(), None);
        assert_eq!(Json::Str("-3".into()).as_u64_str(), None);
        assert_eq!(Json::Str(" 7".into()).as_u64_str(), None);
        assert_eq!(Json::Str("18446744073709551616".into()).as_u64_str(), None);
        assert_eq!(Json::Num(7.0).as_u64_str(), None);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).to_pretty(), "42");
        assert_eq!(Json::Num(-7.0).to_pretty(), "-7");
        assert_eq!(Json::Num(0.5).to_pretty(), "0.5");
        // Non-finite numbers degrade to null rather than invalid JSON.
        assert_eq!(Json::Num(f64::NAN).to_pretty(), "null");
    }
}
