//! The job model: identities, lifecycle states, and per-epoch intermediate
//! state time series (paper §III-A and §III-D).

use crate::criteria::CompletionCriterion;
use crate::error::RotaryError;
use crate::time::SimTime;
use std::fmt;

/// Unique identifier for a job within a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Which application family a job belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// Approximate query processing (online aggregation).
    Aqp,
    /// Deep learning training.
    Dlt,
}

/// One element of the per-epoch intermediate state time-series
/// `{ins_(i,0), ins_(i,1), …}` each job emits (paper §III-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntermediateState {
    /// Epoch counter at which this state was observed (1-based after the
    /// first completed epoch).
    pub epoch: u64,
    /// Virtual time at which the epoch completed.
    pub at: SimTime,
    /// The convergence-metric value (accuracy, loss, …) observed.
    pub metric_value: f64,
    /// Attainment progress `φ ∈ [0, 1]` toward the completion criterion.
    pub progress: f64,
}

/// Lifecycle of a job under resource arbitration.
///
/// ```text
/// Pending ─arrival→ Active ─grant→ Running ─epoch end→ Active
///                     │                │  └─preempt→ Checkpointed ─grant→ Running
///                     │                └─crash→ Recovering ─backoff→ Checkpointed
///                     └──────────criterion met / deadline──────────┐
///                                                                  ▼
///                    Attained | FalselyAttained | DeadlineMissed | Failed
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobStatus {
    /// Submitted but not yet arrived (future arrival time).
    Pending,
    /// In the active queue, waiting for resources.
    Active,
    /// Currently holding a resource and executing an epoch.
    Running,
    /// Preempted with state persisted; resuming pays a restore cost.
    Checkpointed,
    /// An epoch crashed; the job sits out its retry backoff before
    /// re-entering arbitration from its last checkpoint.
    Recovering,
    /// Completion criterion genuinely met.
    Attained,
    /// The system *declared* the job complete (e.g. the envelope function
    /// decided it converged) but ground truth disagrees — Fig. 7a.
    FalselyAttained,
    /// Deadline passed without attainment.
    DeadlineMissed,
    /// The job exhausted its epoch retries and was given up on.
    Failed,
}

impl JobStatus {
    /// Terminal statuses never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Attained
                | JobStatus::FalselyAttained
                | JobStatus::DeadlineMissed
                | JobStatus::Failed
        )
    }

    /// Statuses in which the job is eligible for resource arbitration.
    pub fn is_arbitrable(self) -> bool {
        matches!(self, JobStatus::Active | JobStatus::Checkpointed)
    }
}

/// Book-keeping state the framework tracks per job: the criterion, the
/// lifecycle status, and the intermediate-state history.
#[derive(Debug, Clone)]
pub struct JobState {
    /// Identity within the workload.
    pub id: JobId,
    /// Application family.
    pub kind: JobKind,
    /// The user-defined completion criterion `c_i`.
    pub criterion: CompletionCriterion,
    /// Virtual arrival time (jobs arrive by a Poisson process in the paper's
    /// AQP workload; 0 for all-at-once submission).
    pub arrival: SimTime,
    /// Current lifecycle status.
    pub status: JobStatus,
    /// Completed running epochs.
    pub epochs_run: u64,
    /// Total virtual time spent actually executing (excludes queueing).
    pub service_time: SimTime,
    /// Estimated virtual time the same work would have taken running
    /// isolated with a full resource grant — the baseline of the paper's
    /// waiting-time metric (Fig. 7b). `None` until the system records it.
    pub isolated_service: Option<SimTime>,
    /// Number of times the job was checkpointed (preempted after an epoch).
    pub checkpoints: u64,
    /// Epochs whose work was lost to injected crashes (each rolled the job
    /// back to its last completed epoch).
    pub epochs_lost: u64,
    /// Retry attempts scheduled after crashed epochs.
    pub retries: u64,
    /// The most recent injected failure, if any; cleared by the next
    /// successfully completed epoch. A job in [`JobStatus::Failed`] keeps
    /// its terminal [`RotaryError::RetriesExhausted`] here.
    pub failure: Option<RotaryError>,
    /// The emitted intermediate-state time series.
    pub history: Vec<IntermediateState>,
    /// Time at which the job reached a terminal status, if it has.
    pub finished_at: Option<SimTime>,
}

impl JobState {
    /// Creates a fresh pending job.
    pub fn new(id: JobId, kind: JobKind, criterion: CompletionCriterion, arrival: SimTime) -> Self {
        JobState {
            id,
            kind,
            criterion,
            arrival,
            status: JobStatus::Pending,
            epochs_run: 0,
            service_time: SimTime::ZERO,
            isolated_service: None,
            checkpoints: 0,
            epochs_lost: 0,
            retries: 0,
            failure: None,
            history: Vec::new(),
            finished_at: None,
        }
    }

    /// Latest intermediate state, if any epoch has completed.
    pub fn latest(&self) -> Option<&IntermediateState> {
        self.history.last()
    }

    /// Second-to-latest intermediate state (for convergence checks).
    pub fn previous(&self) -> Option<&IntermediateState> {
        self.history.len().checked_sub(2).and_then(|i| self.history.get(i))
    }

    /// Current attainment progress `φ` (0 before the first epoch).
    pub fn progress(&self) -> f64 {
        self.latest().map(|s| s.progress).unwrap_or(0.0)
    }

    /// Records the result of a finished epoch.
    pub fn record_epoch(&mut self, state: IntermediateState, service: SimTime) {
        debug_assert!(
            self.history.last().map(|p| p.epoch < state.epoch).unwrap_or(true),
            "epochs must be recorded in order"
        );
        self.epochs_run = state.epoch;
        self.service_time += service;
        self.failure = None;
        self.history.push(state);
    }

    /// Records a crashed epoch: the work is lost (nothing is appended to the
    /// series), the typed failure is kept for inspection, and the recovery
    /// counters advance.
    pub fn record_lost_epoch(&mut self, failure: RotaryError) {
        self.epochs_lost += 1;
        self.failure = Some(failure);
    }

    /// Transitions to a terminal status at the given time.
    pub fn finish(&mut self, status: JobStatus, at: SimTime) {
        debug_assert!(status.is_terminal());
        debug_assert!(!self.status.is_terminal(), "job finished twice");
        self.status = status;
        self.finished_at = Some(at);
    }

    /// Elapsed virtual time since submission, for deadline checks.
    pub fn elapsed(&self, now: SimTime) -> SimTime {
        now.saturating_sub(self.arrival)
    }

    /// Adds to the isolated-service estimate (what this epoch would have
    /// cost with a full grant and no contention).
    pub fn add_isolated_service(&mut self, time: SimTime) {
        self.isolated_service = Some(self.isolated_service.unwrap_or(SimTime::ZERO) + time);
    }

    /// Waiting time as the paper defines it (Fig. 7b): "the difference
    /// between its running time under Rotary or other baselines and the
    /// time of running it independently and isolated". Falls back to the
    /// contended service time when no isolated estimate was recorded.
    pub fn waiting_time(&self, now: SimTime) -> SimTime {
        let end = self.finished_at.unwrap_or(now);
        let isolated = self.isolated_service.unwrap_or(self.service_time);
        end.saturating_sub(self.arrival).saturating_sub(isolated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::{Deadline, Metric};

    fn mk_job() -> JobState {
        JobState::new(
            JobId(1),
            JobKind::Aqp,
            CompletionCriterion::Accuracy {
                metric: Metric::Accuracy,
                threshold: 0.9,
                deadline: Deadline::Time(SimTime::from_secs(600)),
            },
            SimTime::from_secs(5),
        )
    }

    #[test]
    fn fresh_job_is_pending_with_zero_progress() {
        let j = mk_job();
        assert_eq!(j.status, JobStatus::Pending);
        assert_eq!(j.progress(), 0.0);
        assert!(j.latest().is_none());
        assert!(j.previous().is_none());
    }

    #[test]
    fn epoch_recording_updates_series() {
        let mut j = mk_job();
        j.record_epoch(
            IntermediateState {
                epoch: 1,
                at: SimTime::from_secs(65),
                metric_value: 0.5,
                progress: 0.55,
            },
            SimTime::from_secs(60),
        );
        j.record_epoch(
            IntermediateState {
                epoch: 2,
                at: SimTime::from_secs(130),
                metric_value: 0.7,
                progress: 0.77,
            },
            SimTime::from_secs(60),
        );
        assert_eq!(j.epochs_run, 2);
        assert_eq!(j.service_time, SimTime::from_secs(120));
        assert_eq!(j.latest().unwrap().metric_value, 0.7);
        assert_eq!(j.previous().unwrap().metric_value, 0.5);
        assert!((j.progress() - 0.77).abs() < 1e-12);
    }

    #[test]
    fn waiting_time_subtracts_service() {
        let mut j = mk_job(); // arrives at t=5s
        j.record_epoch(
            IntermediateState {
                epoch: 1,
                at: SimTime::from_secs(100),
                metric_value: 0.9,
                progress: 1.0,
            },
            SimTime::from_secs(40),
        );
        j.finish(JobStatus::Attained, SimTime::from_secs(100));
        // makespan = 95 s, service = 40 s → waiting = 55 s
        assert_eq!(j.waiting_time(SimTime::from_secs(999)), SimTime::from_secs(55));
    }

    #[test]
    fn status_predicates() {
        assert!(JobStatus::Attained.is_terminal());
        assert!(JobStatus::FalselyAttained.is_terminal());
        assert!(JobStatus::DeadlineMissed.is_terminal());
        assert!(JobStatus::Failed.is_terminal());
        assert!(!JobStatus::Running.is_terminal());
        assert!(!JobStatus::Recovering.is_terminal());
        assert!(JobStatus::Active.is_arbitrable());
        assert!(JobStatus::Checkpointed.is_arbitrable());
        assert!(!JobStatus::Running.is_arbitrable());
        assert!(!JobStatus::Pending.is_arbitrable());
        assert!(!JobStatus::Recovering.is_arbitrable(), "backoff holds the job out of the queue");
        assert!(!JobStatus::Failed.is_arbitrable());
    }

    #[test]
    fn lost_epochs_keep_the_series_and_clear_on_success() {
        let mut j = mk_job();
        j.record_lost_epoch(RotaryError::EpochFailed { job: 1, epoch: 1, attempts: 1 });
        j.retries += 1;
        assert_eq!(j.epochs_lost, 1);
        assert_eq!(j.epochs_run, 0, "lost work never enters the series");
        assert!(j.failure.is_some());
        j.record_epoch(
            IntermediateState {
                epoch: 1,
                at: SimTime::from_secs(65),
                metric_value: 0.5,
                progress: 0.55,
            },
            SimTime::from_secs(60),
        );
        assert!(j.failure.is_none(), "a completed epoch clears the failure");
        assert_eq!(j.epochs_lost, 1, "the loss counter is permanent");
    }

    #[test]
    fn elapsed_is_relative_to_arrival() {
        let j = mk_job();
        assert_eq!(j.elapsed(SimTime::from_secs(65)), SimTime::from_secs(60));
        assert_eq!(j.elapsed(SimTime::ZERO), SimTime::ZERO);
    }

    #[test]
    fn job_id_displays_like_paper_figures() {
        assert_eq!(JobId(4).to_string(), "job4");
    }
}
