//! The job model: identities, lifecycle states, and per-epoch intermediate
//! state time series (paper §III-A and §III-D).

use crate::criteria::CompletionCriterion;
use crate::error::RotaryError;
use crate::json::{u64_json, Json};
use crate::time::SimTime;
use std::fmt;

fn time_json(t: SimTime) -> Json {
    u64_json(t.as_millis())
}

fn time_from_json(json: &Json) -> Option<SimTime> {
    json.as_u64_str().map(SimTime::from_millis)
}

/// Unique identifier for a job within a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Which application family a job belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// Approximate query processing (online aggregation).
    Aqp,
    /// Deep learning training.
    Dlt,
}

/// One element of the per-epoch intermediate state time-series
/// `{ins_(i,0), ins_(i,1), …}` each job emits (paper §III-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntermediateState {
    /// Epoch counter at which this state was observed (1-based after the
    /// first completed epoch).
    pub epoch: u64,
    /// Virtual time at which the epoch completed.
    pub at: SimTime,
    /// The convergence-metric value (accuracy, loss, …) observed.
    pub metric_value: f64,
    /// Attainment progress `φ ∈ [0, 1]` toward the completion criterion.
    pub progress: f64,
}

/// Lifecycle of a job under resource arbitration.
///
/// ```text
/// Pending ─arrival→ Active ─grant→ Running ─epoch end→ Active
///                     │                │  └─preempt→ Checkpointed ─grant→ Running
///                     │                └─crash→ Recovering ─backoff→ Checkpointed
///                     └──────────criterion met / deadline──────────┐
///                                                                  ▼
///                    Attained | FalselyAttained | DeadlineMissed | Failed
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobStatus {
    /// Submitted but not yet arrived (future arrival time).
    Pending,
    /// In the active queue, waiting for resources.
    Active,
    /// Currently holding a resource and executing an epoch.
    Running,
    /// Preempted with state persisted; resuming pays a restore cost.
    Checkpointed,
    /// An epoch crashed; the job sits out its retry backoff before
    /// re-entering arbitration from its last checkpoint.
    Recovering,
    /// Completion criterion genuinely met.
    Attained,
    /// The system *declared* the job complete (e.g. the envelope function
    /// decided it converged) but ground truth disagrees — Fig. 7a.
    FalselyAttained,
    /// Deadline passed without attainment.
    DeadlineMissed,
    /// The job exhausted its epoch retries and was given up on.
    Failed,
}

impl JobStatus {
    /// Terminal statuses never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Attained
                | JobStatus::FalselyAttained
                | JobStatus::DeadlineMissed
                | JobStatus::Failed
        )
    }

    /// Statuses in which the job is eligible for resource arbitration.
    pub fn is_arbitrable(self) -> bool {
        matches!(self, JobStatus::Active | JobStatus::Checkpointed)
    }
}

impl JobKind {
    /// Stable serialization name.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Aqp => "aqp",
            JobKind::Dlt => "dlt",
        }
    }

    /// Inverse of [`JobKind::name`].
    pub fn from_name(name: &str) -> Option<JobKind> {
        match name {
            "aqp" => Some(JobKind::Aqp),
            "dlt" => Some(JobKind::Dlt),
            _ => None,
        }
    }
}

impl JobStatus {
    /// Stable serialization name.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Pending => "pending",
            JobStatus::Active => "active",
            JobStatus::Running => "running",
            JobStatus::Checkpointed => "checkpointed",
            JobStatus::Recovering => "recovering",
            JobStatus::Attained => "attained",
            JobStatus::FalselyAttained => "falsely-attained",
            JobStatus::DeadlineMissed => "deadline-missed",
            JobStatus::Failed => "failed",
        }
    }

    /// Inverse of [`JobStatus::name`].
    pub fn from_name(name: &str) -> Option<JobStatus> {
        match name {
            "pending" => Some(JobStatus::Pending),
            "active" => Some(JobStatus::Active),
            "running" => Some(JobStatus::Running),
            "checkpointed" => Some(JobStatus::Checkpointed),
            "recovering" => Some(JobStatus::Recovering),
            "attained" => Some(JobStatus::Attained),
            "falsely-attained" => Some(JobStatus::FalselyAttained),
            "deadline-missed" => Some(JobStatus::DeadlineMissed),
            "failed" => Some(JobStatus::Failed),
            _ => None,
        }
    }
}

impl IntermediateState {
    /// Serialises one series element for durable snapshots.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("epoch", u64_json(self.epoch)),
            ("at", time_json(self.at)),
            ("metric_value", Json::Num(self.metric_value)),
            ("progress", Json::Num(self.progress)),
        ])
    }

    /// Decodes an element written by [`IntermediateState::to_json`].
    pub fn from_json(json: &Json) -> Option<IntermediateState> {
        Some(IntermediateState {
            epoch: json.get("epoch")?.as_u64_str()?,
            at: time_from_json(json.get("at")?)?,
            metric_value: json.get("metric_value")?.as_f64()?,
            progress: json.get("progress")?.as_f64()?,
        })
    }
}

/// Book-keeping state the framework tracks per job: the criterion, the
/// lifecycle status, and the intermediate-state history.
#[derive(Debug, Clone)]
pub struct JobState {
    /// Identity within the workload.
    pub id: JobId,
    /// Application family.
    pub kind: JobKind,
    /// The user-defined completion criterion `c_i`.
    pub criterion: CompletionCriterion,
    /// Virtual arrival time (jobs arrive by a Poisson process in the paper's
    /// AQP workload; 0 for all-at-once submission).
    pub arrival: SimTime,
    /// Current lifecycle status.
    pub status: JobStatus,
    /// Completed running epochs.
    pub epochs_run: u64,
    /// Total virtual time spent actually executing (excludes queueing).
    pub service_time: SimTime,
    /// Estimated virtual time the same work would have taken running
    /// isolated with a full resource grant — the baseline of the paper's
    /// waiting-time metric (Fig. 7b). `None` until the system records it.
    pub isolated_service: Option<SimTime>,
    /// Number of times the job was checkpointed (preempted after an epoch).
    pub checkpoints: u64,
    /// Epochs whose work was lost to injected crashes (each rolled the job
    /// back to its last completed epoch).
    pub epochs_lost: u64,
    /// Retry attempts scheduled after crashed epochs.
    pub retries: u64,
    /// The most recent injected failure, if any; cleared by the next
    /// successfully completed epoch. A job in [`JobStatus::Failed`] keeps
    /// its terminal [`RotaryError::RetriesExhausted`] here.
    pub failure: Option<RotaryError>,
    /// The emitted intermediate-state time series.
    pub history: Vec<IntermediateState>,
    /// Time at which the job reached a terminal status, if it has.
    pub finished_at: Option<SimTime>,
}

impl JobState {
    /// Creates a fresh pending job.
    pub fn new(id: JobId, kind: JobKind, criterion: CompletionCriterion, arrival: SimTime) -> Self {
        JobState {
            id,
            kind,
            criterion,
            arrival,
            status: JobStatus::Pending,
            epochs_run: 0,
            service_time: SimTime::ZERO,
            isolated_service: None,
            checkpoints: 0,
            epochs_lost: 0,
            retries: 0,
            failure: None,
            history: Vec::new(),
            finished_at: None,
        }
    }

    /// Latest intermediate state, if any epoch has completed.
    pub fn latest(&self) -> Option<&IntermediateState> {
        self.history.last()
    }

    /// Second-to-latest intermediate state (for convergence checks).
    pub fn previous(&self) -> Option<&IntermediateState> {
        self.history.len().checked_sub(2).and_then(|i| self.history.get(i))
    }

    /// Current attainment progress `φ` (0 before the first epoch).
    pub fn progress(&self) -> f64 {
        self.latest().map(|s| s.progress).unwrap_or(0.0)
    }

    /// Records the result of a finished epoch.
    pub fn record_epoch(&mut self, state: IntermediateState, service: SimTime) {
        debug_assert!(
            self.history.last().map(|p| p.epoch < state.epoch).unwrap_or(true),
            "epochs must be recorded in order"
        );
        self.epochs_run = state.epoch;
        self.service_time += service;
        self.failure = None;
        self.history.push(state);
    }

    /// Records a crashed epoch: the work is lost (nothing is appended to the
    /// series), the typed failure is kept for inspection, and the recovery
    /// counters advance.
    pub fn record_lost_epoch(&mut self, failure: RotaryError) {
        self.epochs_lost += 1;
        self.failure = Some(failure);
    }

    /// Transitions to a terminal status at the given time.
    pub fn finish(&mut self, status: JobStatus, at: SimTime) {
        debug_assert!(status.is_terminal());
        debug_assert!(!self.status.is_terminal(), "job finished twice");
        self.status = status;
        self.finished_at = Some(at);
    }

    /// Elapsed virtual time since submission, for deadline checks.
    pub fn elapsed(&self, now: SimTime) -> SimTime {
        now.saturating_sub(self.arrival)
    }

    /// Adds to the isolated-service estimate (what this epoch would have
    /// cost with a full grant and no contention).
    pub fn add_isolated_service(&mut self, time: SimTime) {
        self.isolated_service = Some(self.isolated_service.unwrap_or(SimTime::ZERO) + time);
    }

    /// Serialises everything except the criterion, which lives in the
    /// workload specification the restoring system already holds. Virtual
    /// times go through decimal strings so they stay exact at full width.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", u64_json(self.id.0)),
            ("kind", Json::Str(self.kind.name().to_string())),
            ("arrival", time_json(self.arrival)),
            ("status", Json::Str(self.status.name().to_string())),
            ("epochs_run", u64_json(self.epochs_run)),
            ("service_time", time_json(self.service_time)),
            ("isolated_service", self.isolated_service.map_or(Json::Null, time_json)),
            ("checkpoints", u64_json(self.checkpoints)),
            ("epochs_lost", u64_json(self.epochs_lost)),
            ("retries", u64_json(self.retries)),
            ("failure", self.failure.as_ref().map_or(Json::Null, RotaryError::to_json)),
            ("history", Json::Arr(self.history.iter().map(IntermediateState::to_json).collect())),
            ("finished_at", self.finished_at.map_or(Json::Null, time_json)),
        ])
    }

    /// Decodes a state written by [`JobState::to_json`], re-attaching the
    /// criterion from the workload specification. Returns `None` on any
    /// structural mismatch.
    pub fn from_json(json: &Json, criterion: CompletionCriterion) -> Option<JobState> {
        let opt_time = |key: &str| -> Option<Option<SimTime>> {
            match json.get(key)? {
                Json::Null => Some(None),
                other => time_from_json(other).map(Some),
            }
        };
        let failure = match json.get("failure")? {
            Json::Null => None,
            other => Some(RotaryError::from_json(other)?),
        };
        let history = json
            .get("history")?
            .as_arr()?
            .iter()
            .map(IntermediateState::from_json)
            .collect::<Option<Vec<_>>>()?;
        Some(JobState {
            id: JobId(json.get("id")?.as_u64_str()?),
            kind: JobKind::from_name(json.get("kind")?.as_str()?)?,
            criterion,
            arrival: time_from_json(json.get("arrival")?)?,
            status: JobStatus::from_name(json.get("status")?.as_str()?)?,
            epochs_run: json.get("epochs_run")?.as_u64_str()?,
            service_time: time_from_json(json.get("service_time")?)?,
            isolated_service: opt_time("isolated_service")?,
            checkpoints: json.get("checkpoints")?.as_u64_str()?,
            epochs_lost: json.get("epochs_lost")?.as_u64_str()?,
            retries: json.get("retries")?.as_u64_str()?,
            failure,
            history,
            finished_at: opt_time("finished_at")?,
        })
    }

    /// Waiting time as the paper defines it (Fig. 7b): "the difference
    /// between its running time under Rotary or other baselines and the
    /// time of running it independently and isolated". Falls back to the
    /// contended service time when no isolated estimate was recorded.
    pub fn waiting_time(&self, now: SimTime) -> SimTime {
        let end = self.finished_at.unwrap_or(now);
        let isolated = self.isolated_service.unwrap_or(self.service_time);
        end.saturating_sub(self.arrival).saturating_sub(isolated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::{Deadline, Metric};

    fn mk_job() -> JobState {
        JobState::new(
            JobId(1),
            JobKind::Aqp,
            CompletionCriterion::Accuracy {
                metric: Metric::Accuracy,
                threshold: 0.9,
                deadline: Deadline::Time(SimTime::from_secs(600)),
            },
            SimTime::from_secs(5),
        )
    }

    #[test]
    fn fresh_job_is_pending_with_zero_progress() {
        let j = mk_job();
        assert_eq!(j.status, JobStatus::Pending);
        assert_eq!(j.progress(), 0.0);
        assert!(j.latest().is_none());
        assert!(j.previous().is_none());
    }

    #[test]
    fn epoch_recording_updates_series() {
        let mut j = mk_job();
        j.record_epoch(
            IntermediateState {
                epoch: 1,
                at: SimTime::from_secs(65),
                metric_value: 0.5,
                progress: 0.55,
            },
            SimTime::from_secs(60),
        );
        j.record_epoch(
            IntermediateState {
                epoch: 2,
                at: SimTime::from_secs(130),
                metric_value: 0.7,
                progress: 0.77,
            },
            SimTime::from_secs(60),
        );
        assert_eq!(j.epochs_run, 2);
        assert_eq!(j.service_time, SimTime::from_secs(120));
        assert_eq!(j.latest().unwrap().metric_value, 0.7);
        assert_eq!(j.previous().unwrap().metric_value, 0.5);
        assert!((j.progress() - 0.77).abs() < 1e-12);
    }

    #[test]
    fn waiting_time_subtracts_service() {
        let mut j = mk_job(); // arrives at t=5s
        j.record_epoch(
            IntermediateState {
                epoch: 1,
                at: SimTime::from_secs(100),
                metric_value: 0.9,
                progress: 1.0,
            },
            SimTime::from_secs(40),
        );
        j.finish(JobStatus::Attained, SimTime::from_secs(100));
        // makespan = 95 s, service = 40 s → waiting = 55 s
        assert_eq!(j.waiting_time(SimTime::from_secs(999)), SimTime::from_secs(55));
    }

    #[test]
    fn status_predicates() {
        assert!(JobStatus::Attained.is_terminal());
        assert!(JobStatus::FalselyAttained.is_terminal());
        assert!(JobStatus::DeadlineMissed.is_terminal());
        assert!(JobStatus::Failed.is_terminal());
        assert!(!JobStatus::Running.is_terminal());
        assert!(!JobStatus::Recovering.is_terminal());
        assert!(JobStatus::Active.is_arbitrable());
        assert!(JobStatus::Checkpointed.is_arbitrable());
        assert!(!JobStatus::Running.is_arbitrable());
        assert!(!JobStatus::Pending.is_arbitrable());
        assert!(!JobStatus::Recovering.is_arbitrable(), "backoff holds the job out of the queue");
        assert!(!JobStatus::Failed.is_arbitrable());
    }

    #[test]
    fn lost_epochs_keep_the_series_and_clear_on_success() {
        let mut j = mk_job();
        j.record_lost_epoch(RotaryError::EpochFailed { job: 1, epoch: 1, attempts: 1 });
        j.retries += 1;
        assert_eq!(j.epochs_lost, 1);
        assert_eq!(j.epochs_run, 0, "lost work never enters the series");
        assert!(j.failure.is_some());
        j.record_epoch(
            IntermediateState {
                epoch: 1,
                at: SimTime::from_secs(65),
                metric_value: 0.5,
                progress: 0.55,
            },
            SimTime::from_secs(60),
        );
        assert!(j.failure.is_none(), "a completed epoch clears the failure");
        assert_eq!(j.epochs_lost, 1, "the loss counter is permanent");
    }

    #[test]
    fn elapsed_is_relative_to_arrival() {
        let j = mk_job();
        assert_eq!(j.elapsed(SimTime::from_secs(65)), SimTime::from_secs(60));
        assert_eq!(j.elapsed(SimTime::ZERO), SimTime::ZERO);
    }

    #[test]
    fn job_id_displays_like_paper_figures() {
        assert_eq!(JobId(4).to_string(), "job4");
    }

    #[test]
    fn status_names_round_trip() {
        for status in [
            JobStatus::Pending,
            JobStatus::Active,
            JobStatus::Running,
            JobStatus::Checkpointed,
            JobStatus::Recovering,
            JobStatus::Attained,
            JobStatus::FalselyAttained,
            JobStatus::DeadlineMissed,
            JobStatus::Failed,
        ] {
            assert_eq!(JobStatus::from_name(status.name()), Some(status));
        }
        assert_eq!(JobStatus::from_name("unknown"), None);
        assert_eq!(JobKind::from_name(JobKind::Aqp.name()), Some(JobKind::Aqp));
        assert_eq!(JobKind::from_name(JobKind::Dlt.name()), Some(JobKind::Dlt));
        assert_eq!(JobKind::from_name("mlp"), None);
    }

    #[test]
    fn job_state_json_round_trips_exactly() {
        let mut j = mk_job();
        j.status = JobStatus::Recovering;
        j.record_lost_epoch(RotaryError::EpochFailed { job: 1, epoch: 1, attempts: 1 });
        j.retries += 1;
        j.record_epoch(
            IntermediateState {
                epoch: 1,
                at: SimTime::from_millis(65_123),
                metric_value: 0.512345678901234,
                progress: 0.1 + 0.2,
            },
            SimTime::from_millis(60_001),
        );
        j.record_lost_epoch(RotaryError::EpochFailed { job: 1, epoch: 2, attempts: 1 });
        j.checkpoints = 3;
        j.add_isolated_service(SimTime::from_millis(41_999));
        let criterion = j.criterion.clone();

        let text = j.to_json().to_pretty();
        let parsed = crate::json::parse(&text).unwrap();
        let restored = JobState::from_json(&parsed, criterion).unwrap();

        assert_eq!(restored.id, j.id);
        assert_eq!(restored.kind, j.kind);
        assert_eq!(restored.arrival, j.arrival);
        assert_eq!(restored.status, j.status);
        assert_eq!(restored.epochs_run, j.epochs_run);
        assert_eq!(restored.service_time, j.service_time);
        assert_eq!(restored.isolated_service, j.isolated_service);
        assert_eq!(restored.checkpoints, j.checkpoints);
        assert_eq!(restored.epochs_lost, j.epochs_lost);
        assert_eq!(restored.retries, j.retries);
        assert_eq!(restored.failure, j.failure);
        assert_eq!(restored.history, j.history);
        assert_eq!(restored.finished_at, j.finished_at);
        // A second serialization is byte-identical — the snapshot oracle.
        assert_eq!(restored.to_json().to_pretty(), text);
    }

    #[test]
    fn job_state_json_rejects_malformed_shapes() {
        let criterion = mk_job().criterion;
        assert!(JobState::from_json(&Json::Null, criterion.clone()).is_none());
        let mut j = mk_job();
        j.finish(JobStatus::Attained, SimTime::from_secs(9));
        let good = j.to_json();
        // Damaging any field kills the decode rather than panicking.
        if let Json::Obj(pairs) = &good {
            for i in 0..pairs.len() {
                let mut damaged = pairs.clone();
                damaged[i].1 = Json::Str("not-a-valid-value".into());
                assert!(
                    JobState::from_json(&Json::Obj(damaged), criterion.clone()).is_none(),
                    "field {} should fail closed",
                    pairs[i].0
                );
            }
        } else {
            unreachable!("to_json returns an object");
        }
    }
}
