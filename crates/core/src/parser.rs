//! Parser for the completion-criteria surface syntax (paper Fig. 3–4).
//!
//! Completion criteria are "add-ons to the regular query and training
//! commands and should be orthogonal to the execution of AQP and DLT without
//! modifying the original command parsers". Accordingly, [`parse_statement`]
//! splits a full statement into the *command prefix* (handed verbatim to the
//! execution platform) and the parsed [`CompletionCriterion`] suffix:
//!
//! ```
//! use rotary_core::parser::parse_statement;
//! use rotary_core::criteria::CompletionCriterion;
//!
//! let (cmd, crit) = parse_statement(
//!     "SELECT AVG(PROFIT) FROM O WHERE CUSTOMERID='cust1' \
//!      ACC MIN 95% WITHIN 3600 SECONDS",
//! ).unwrap();
//! assert_eq!(cmd, "SELECT AVG(PROFIT) FROM O WHERE CUSTOMERID='cust1'");
//! assert!(matches!(crit, CompletionCriterion::Accuracy { .. }));
//! ```

use crate::criteria::{CompletionCriterion, Deadline, Metric};
use crate::error::{Result, RotaryError};
use crate::time::SimTime;

/// Splits a statement into the command prefix and its completion criterion.
///
/// The criterion clause is recognised as the *last* occurrence of one of the
/// three templates:
///
/// * `<metric> MIN <threshold> WITHIN <deadline>`
/// * `<metric> DELTA <delta> WITHIN <deadline>`
/// * `FOR <runtime>`
///
/// so that `FOR`/`MIN` tokens inside the command itself (e.g. a SQL `FOR
/// UPDATE` or column named `MIN`) do not confuse the split — the clause must
/// parse cleanly to the end of the statement.
pub fn parse_statement(input: &str) -> Result<(String, CompletionCriterion)> {
    let tokens: Vec<&str> = input.split_whitespace().collect();
    if tokens.is_empty() {
        return Err(err(input, "empty statement"));
    }
    // Scan candidate split points from the right: the criterion clause is a
    // suffix of the token stream.
    for start in (0..tokens.len()).rev() {
        if let Ok(criterion) = parse_clause(&tokens[start..]) {
            let command = tokens[..start].join(" ");
            if command.is_empty() {
                return Err(err(input, "statement has a criterion but no command"));
            }
            return Ok((command, criterion));
        }
    }
    Err(err(
        input,
        "no completion criterion found; expected `<metric> MIN|DELTA … WITHIN …` or `FOR …`",
    ))
}

/// Parses a bare criterion clause (no command prefix), e.g.
/// `ACC DELTA 0.001 WITHIN 30 EPOCHS`.
pub fn parse_criterion(input: &str) -> Result<CompletionCriterion> {
    let tokens: Vec<&str> = input.split_whitespace().collect();
    parse_clause(&tokens).map_err(|e| match e {
        RotaryError::Parse { message, .. } => err(input, &message),
        other => other,
    })
}

fn parse_clause(tokens: &[&str]) -> Result<CompletionCriterion> {
    match tokens {
        // FOR <n> <unit>
        [kw, n, unit] if kw.eq_ignore_ascii_case("FOR") => {
            Ok(CompletionCriterion::Runtime { runtime: parse_deadline(n, unit)? })
        }
        // <metric> MIN <threshold> WITHIN <n> <unit>
        [metric, op, value, within, n, unit]
            if op.eq_ignore_ascii_case("MIN") && within.eq_ignore_ascii_case("WITHIN") =>
        {
            let metric = Metric::from_keyword(metric);
            validate_metric(&metric, tokens)?;
            Ok(CompletionCriterion::Accuracy {
                threshold: parse_value(value, &metric)?,
                metric,
                deadline: parse_deadline(n, unit)?,
            })
        }
        // <metric> DELTA <delta> WITHIN <n> <unit>
        [metric, op, value, within, n, unit]
            if op.eq_ignore_ascii_case("DELTA") && within.eq_ignore_ascii_case("WITHIN") =>
        {
            let metric = Metric::from_keyword(metric);
            validate_metric(&metric, tokens)?;
            Ok(CompletionCriterion::Convergence {
                delta: parse_value(value, &metric)?,
                metric,
                deadline: parse_deadline(n, unit)?,
            })
        }
        _ => Err(err(&tokens.join(" "), "not a criterion clause")),
    }
}

/// Rejects metric keywords that are clearly fragments of the command (pure
/// punctuation / SQL operators), which would otherwise let the right-to-left
/// scan steal command tokens into a bogus `Custom` metric.
fn validate_metric(metric: &Metric, tokens: &[&str]) -> Result<()> {
    if let Metric::Custom(name) = metric {
        let ok = !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        if !ok {
            return Err(err(&tokens.join(" "), "metric keyword must be alphanumeric"));
        }
    }
    Ok(())
}

/// Parses a threshold/delta. Percentages (`95%`) are accepted for any metric
/// and divided by 100; bare numbers are taken at face value.
fn parse_value(token: &str, metric: &Metric) -> Result<f64> {
    let (body, percent) = match token.strip_suffix('%') {
        Some(b) => (b, true),
        None => (token, false),
    };
    let raw: f64 = body.parse().map_err(|_| err(token, "expected a number like 0.95 or 95%"))?;
    if !raw.is_finite() || raw < 0.0 {
        return Err(err(token, "threshold must be a finite non-negative number"));
    }
    let value = if percent { raw / 100.0 } else { raw };
    // Ratio metrics live in [0,1]; catch `ACC MIN 95` (missing the `%`).
    if matches!(metric, Metric::Accuracy | Metric::F1) && value > 1.0 {
        return Err(err(token, "accuracy/F1 thresholds must be ≤ 1 (use a percentage like 95%)"));
    }
    Ok(value)
}

fn parse_deadline(n: &str, unit: &str) -> Result<Deadline> {
    let count: f64 = n.parse().map_err(|_| err(n, "expected a number before the time unit"))?;
    if !count.is_finite() || count <= 0.0 {
        return Err(err(n, "deadline must be positive"));
    }
    match unit.to_ascii_uppercase().as_str() {
        "EPOCH" | "EPOCHS" => {
            if count.fract() != 0.0 {
                return Err(err(n, "epoch counts must be whole numbers"));
            }
            Ok(Deadline::Epochs(count as u64))
        }
        "SECOND" | "SECONDS" | "SEC" | "SECS" | "S" => {
            Ok(Deadline::Time(SimTime::from_secs_f64(count)))
        }
        "MINUTE" | "MINUTES" | "MIN" | "MINS" => {
            Ok(Deadline::Time(SimTime::from_secs_f64(count * 60.0)))
        }
        "HOUR" | "HOURS" | "H" | "HR" | "HRS" => {
            Ok(Deadline::Time(SimTime::from_secs_f64(count * 3600.0)))
        }
        other => Err(err(other, "expected EPOCHS, SECONDS, MINUTES, or HOURS")),
    }
}

fn err(input: &str, message: &str) -> RotaryError {
    let mut input = input.to_owned();
    if input.len() > 120 {
        input.truncate(117);
        input.push_str("...");
    }
    RotaryError::Parse { input, message: message.to_owned() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_fig4_left_example() {
        let (cmd, crit) = parse_statement(
            "SELECT AVG(PROFIT) FROM O WHERE CUSTOMERID='cust1' ACC MIN 95% WITHIN 3600 SECONDS",
        )
        .unwrap();
        assert_eq!(cmd, "SELECT AVG(PROFIT) FROM O WHERE CUSTOMERID='cust1'");
        assert_eq!(
            crit,
            CompletionCriterion::Accuracy {
                metric: Metric::Accuracy,
                threshold: 0.95,
                deadline: Deadline::Time(SimTime::from_secs(3600)),
            }
        );
    }

    #[test]
    fn parses_paper_fig4_middle_example() {
        let (cmd, crit) =
            parse_statement("TRAIN ResNet-50 ON CIFAR10 ACC DELTA 0.001 WITHIN 30 EPOCHS").unwrap();
        assert_eq!(cmd, "TRAIN ResNet-50 ON CIFAR10");
        assert_eq!(
            crit,
            CompletionCriterion::Convergence {
                metric: Metric::Accuracy,
                delta: 0.001,
                deadline: Deadline::Epochs(30),
            }
        );
    }

    #[test]
    fn parses_paper_fig4_right_example() {
        let (cmd, crit) = parse_statement("TRAIN MobileNet ON CIFAR10 FOR 2 HOURS").unwrap();
        assert_eq!(cmd, "TRAIN MobileNet ON CIFAR10");
        assert_eq!(
            crit,
            CompletionCriterion::Runtime { runtime: Deadline::Time(SimTime::from_hours(2)) }
        );
    }

    #[test]
    fn runtime_in_epochs() {
        let (_, crit) = parse_statement("TRAIN LeNet ON CIFAR10 FOR 100 EPOCHS").unwrap();
        assert_eq!(crit, CompletionCriterion::Runtime { runtime: Deadline::Epochs(100) });
    }

    #[test]
    fn custom_metric_and_loss() {
        let (_, crit) =
            parse_statement("TRAIN BERT ON IMDB PERPLEXITY MIN 12.5 WITHIN 4 HOURS").unwrap();
        assert!(matches!(
            crit,
            CompletionCriterion::Accuracy { metric: Metric::Perplexity, threshold, .. }
            if (threshold - 12.5).abs() < 1e-12
        ));

        let (_, crit) =
            parse_statement("TRAIN LSTM ON UD LOSS DELTA 0.01 WITHIN 20 EPOCHS").unwrap();
        assert!(matches!(crit, CompletionCriterion::Convergence { metric: Metric::Loss, .. }));
    }

    #[test]
    fn case_insensitive_keywords() {
        let (_, crit) = parse_statement("select * from t acc min 80% within 10 minutes").unwrap();
        assert_eq!(
            crit,
            CompletionCriterion::Accuracy {
                metric: Metric::Accuracy,
                threshold: 0.8,
                deadline: Deadline::Time(SimTime::from_mins(10)),
            }
        );
    }

    #[test]
    fn for_inside_command_does_not_confuse_split() {
        // `FOR` appears in the command; only the trailing clause parses.
        let (cmd, crit) = parse_statement("SELECT X FROM T FOR UPDATE FOR 6 HOURS").unwrap();
        assert_eq!(cmd, "SELECT X FROM T FOR UPDATE");
        assert_eq!(
            crit,
            CompletionCriterion::Runtime { runtime: Deadline::Time(SimTime::from_hours(6)) }
        );
    }

    #[test]
    fn rejects_missing_criterion() {
        assert!(parse_statement("SELECT * FROM LINEITEM").is_err());
        assert!(parse_statement("").is_err());
    }

    #[test]
    fn rejects_bare_criterion_without_command() {
        assert!(parse_statement("FOR 2 HOURS").is_err());
    }

    #[test]
    fn rejects_accuracy_above_one_without_percent() {
        assert!(parse_statement("TRAIN X ON Y ACC MIN 95 WITHIN 10 EPOCHS").is_err());
    }

    #[test]
    fn rejects_bad_numbers_and_units() {
        assert!(parse_criterion("ACC MIN banana WITHIN 10 EPOCHS").is_err());
        assert!(parse_criterion("ACC MIN 90% WITHIN ten EPOCHS").is_err());
        assert!(parse_criterion("ACC MIN 90% WITHIN 10 FORTNIGHTS").is_err());
        assert!(parse_criterion("FOR -2 HOURS").is_err());
        assert!(parse_criterion("FOR 1.5 EPOCHS").is_err());
    }

    #[test]
    fn fractional_time_deadlines_allowed() {
        let c = parse_criterion("FOR 0.5 HOURS").unwrap();
        assert_eq!(
            c,
            CompletionCriterion::Runtime { runtime: Deadline::Time(SimTime::from_mins(30)) }
        );
    }

    #[test]
    fn display_parse_round_trip() {
        for text in [
            "ACC MIN 95% WITHIN 1 HOURS",
            "ACC DELTA 0.001 WITHIN 30 EPOCHS",
            "FOR 2 HOURS",
            "LOSS DELTA 0.05 WITHIN 90 SECONDS",
            "F1 MIN 85% WITHIN 25 EPOCHS",
        ] {
            let parsed = parse_criterion(text).unwrap();
            let reparsed = parse_criterion(&parsed.to_string()).unwrap();
            assert_eq!(parsed, reparsed, "round-trip failed for {text}");
        }
    }
}
