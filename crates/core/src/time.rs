//! Virtual time.
//!
//! All of Rotary runs on a discrete-event virtual clock. [`SimTime`] is an
//! instant (milliseconds since the start of a simulation); durations are also
//! expressed as `SimTime` offsets. Using integer milliseconds keeps every
//! experiment exactly reproducible — there is no floating-point clock drift
//! and no dependence on the wall clock of the machine running the
//! reproduction.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A virtual instant or duration, in integer milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (start of the simulation).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as an "unreachable" deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Creates a time from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60_000)
    }

    /// Creates a time from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600_000)
    }

    /// Creates a time from fractional seconds, rounding to milliseconds.
    ///
    /// Negative or non-finite inputs clamp to zero: virtual time never runs
    /// backwards.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((secs * 1000.0).round().min(u64::MAX as f64) as u64)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is later.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Saturating addition; sticks at [`SimTime::MAX`].
    pub fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Scales a duration by a positive factor (used when dividing work across
    /// a varying number of hardware threads).
    pub fn scale(self, factor: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// True if this is the zero instant.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        if ms == u64::MAX {
            return write!(f, "∞");
        }
        if ms.is_multiple_of(3_600_000) && ms > 0 {
            write!(f, "{}h", ms / 3_600_000)
        } else if ms.is_multiple_of(60_000) && ms > 0 {
            write!(f, "{}m", ms / 60_000)
        } else if ms.is_multiple_of(1000) {
            write!(f, "{}s", ms / 1000)
        } else {
            write!(f, "{}ms", ms)
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs.max(1))
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_mins(3), SimTime::from_secs(180));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
    }

    #[test]
    fn fractional_seconds_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_millis(), 1500);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b - a, SimTime::from_secs(1));
    }

    #[test]
    fn addition_saturates_at_max() {
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn scaling_divides_work() {
        let epoch = SimTime::from_secs(60);
        // Twice the threads → half the time.
        assert_eq!(epoch.scale(0.5), SimTime::from_secs(30));
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(SimTime::from_hours(2).to_string(), "2h");
        assert_eq!(SimTime::from_mins(5).to_string(), "5m");
        assert_eq!(SimTime::from_secs(42).to_string(), "42s");
        assert_eq!(SimTime::from_millis(17).to_string(), "17ms");
        assert_eq!(SimTime::ZERO.to_string(), "0s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = [1u64, 2, 3].iter().map(|&s| SimTime::from_secs(s)).sum();
        assert_eq!(total, SimTime::from_secs(6));
    }
}
