//! Error types shared across the Rotary framework.

use std::fmt;

/// Convenience alias used throughout the framework crates.
pub type Result<T> = std::result::Result<T, RotaryError>;

/// Errors produced by the Rotary framework.
#[derive(Debug, Clone, PartialEq)]
pub enum RotaryError {
    /// A completion-criterion statement failed to parse.
    Parse {
        /// The offending input (possibly truncated).
        input: String,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// An estimator was asked to predict before it had any observations.
    InsufficientData {
        /// Which estimator raised the error.
        estimator: &'static str,
        /// How many observations it had.
        have: usize,
        /// How many it needs.
        need: usize,
    },
    /// A query plan failed to bind against a dataset (unknown table or
    /// column, alias misuse, unsupported join shape, ungroupable column).
    PlanBind {
        /// Label of the plan that failed to bind.
        plan: String,
        /// Human-readable description of the binding failure.
        message: String,
    },
    /// A job referenced by id does not exist in the system.
    UnknownJob(u64),
    /// A job cannot fit on any available resource.
    ResourceExhausted {
        /// Memory the job was estimated to need, in megabytes.
        requested_mb: u64,
        /// Largest amount any single resource could offer, in megabytes.
        available_mb: u64,
    },
    /// An invalid configuration value was supplied.
    InvalidConfig(String),
    /// History-repository persistence failed.
    Persistence(String),
    /// A checkpoint write or restore failed (injected fault or I/O error).
    CheckpointFailed {
        /// The job whose state was being persisted or restored.
        job: u64,
        /// Which operation failed: `"write"` or `"restore"`.
        operation: &'static str,
    },
    /// A running epoch crashed mid-execution and was rolled back.
    EpochFailed {
        /// The job whose epoch crashed.
        job: u64,
        /// The (1-based) epoch that was lost.
        epoch: u64,
        /// Failed attempts at this epoch so far.
        attempts: u32,
    },
    /// Every retry attempt for an epoch was consumed; the job is failed.
    RetriesExhausted {
        /// The job that ran out of retries.
        job: u64,
        /// The epoch that could not be completed.
        epoch: u64,
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for RotaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RotaryError::Parse { input, message } => {
                write!(f, "failed to parse completion criterion {input:?}: {message}")
            }
            RotaryError::InsufficientData { estimator, have, need } => write!(
                f,
                "estimator {estimator} needs at least {need} observation(s), has {have}"
            ),
            RotaryError::PlanBind { plan, message } => {
                write!(f, "failed to bind plan {plan}: {message}")
            }
            RotaryError::UnknownJob(id) => write!(f, "unknown job id {id}"),
            RotaryError::ResourceExhausted { requested_mb, available_mb } => write!(
                f,
                "job needs {requested_mb} MB but the largest available resource offers {available_mb} MB"
            ),
            RotaryError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RotaryError::Persistence(msg) => write!(f, "history persistence failed: {msg}"),
            RotaryError::CheckpointFailed { job, operation } => {
                write!(f, "checkpoint {operation} failed for job {job}")
            }
            RotaryError::EpochFailed { job, epoch, attempts } => write!(
                f,
                "job {job} lost epoch {epoch} (attempt {attempts}); rolling back to last checkpoint"
            ),
            RotaryError::RetriesExhausted { job, epoch, attempts } => write!(
                f,
                "job {job} exhausted {attempts} attempts at epoch {epoch}; giving up"
            ),
        }
    }
}

impl std::error::Error for RotaryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e =
            RotaryError::Parse { input: "ACC MAX".into(), message: "expected MIN or DELTA".into() };
        let s = e.to_string();
        assert!(s.contains("ACC MAX"));
        assert!(s.contains("expected MIN or DELTA"));

        let e = RotaryError::InsufficientData { estimator: "wlr", have: 1, need: 2 };
        assert!(e.to_string().contains("wlr"));

        let e = RotaryError::ResourceExhausted { requested_mb: 9000, available_mb: 8192 };
        assert!(e.to_string().contains("9000"));

        let e = RotaryError::PlanBind { plan: "q6".into(), message: "unknown alias o".into() };
        let s = e.to_string();
        assert!(s.contains("q6") && s.contains("unknown alias o"), "{s}");
    }

    #[test]
    fn fault_errors_carry_their_context() {
        let e = RotaryError::CheckpointFailed { job: 7, operation: "restore" };
        assert!(e.to_string().contains("restore"));
        assert!(e.to_string().contains("7"));

        let e = RotaryError::EpochFailed { job: 2, epoch: 9, attempts: 1 };
        let s = e.to_string();
        assert!(s.contains("epoch 9") && s.contains("job 2"), "{s}");

        let e = RotaryError::RetriesExhausted { job: 3, epoch: 4, attempts: 3 };
        let s = e.to_string();
        assert!(s.contains("3 attempts") && s.contains("epoch 4"), "{s}");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(RotaryError::UnknownJob(3), RotaryError::UnknownJob(3));
        assert_ne!(RotaryError::UnknownJob(3), RotaryError::UnknownJob(4));
    }
}
