//! Error types shared across the Rotary framework.

use crate::json::{u64_json, Json};
use std::fmt;

/// Convenience alias used throughout the framework crates.
pub type Result<T> = std::result::Result<T, RotaryError>;

/// Errors produced by the Rotary framework.
#[derive(Debug, Clone, PartialEq)]
pub enum RotaryError {
    /// A completion-criterion statement failed to parse.
    Parse {
        /// The offending input (possibly truncated).
        input: String,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// An estimator was asked to predict before it had any observations.
    InsufficientData {
        /// Which estimator raised the error.
        estimator: &'static str,
        /// How many observations it had.
        have: usize,
        /// How many it needs.
        need: usize,
    },
    /// A query plan failed to bind against a dataset (unknown table or
    /// column, alias misuse, unsupported join shape, ungroupable column).
    PlanBind {
        /// Label of the plan that failed to bind.
        plan: String,
        /// Human-readable description of the binding failure.
        message: String,
    },
    /// A job referenced by id does not exist in the system.
    UnknownJob(u64),
    /// A job cannot fit on any available resource.
    ResourceExhausted {
        /// Memory the job was estimated to need, in megabytes.
        requested_mb: u64,
        /// Largest amount any single resource could offer, in megabytes.
        available_mb: u64,
    },
    /// An invalid configuration value was supplied.
    InvalidConfig(String),
    /// History-repository persistence failed.
    Persistence(String),
    /// A checkpoint write or restore failed (injected fault or I/O error).
    CheckpointFailed {
        /// The job whose state was being persisted or restored.
        job: u64,
        /// Which operation failed: `"write"` or `"restore"`.
        operation: &'static str,
    },
    /// A running epoch crashed mid-execution and was rolled back.
    EpochFailed {
        /// The job whose epoch crashed.
        job: u64,
        /// The (1-based) epoch that was lost.
        epoch: u64,
        /// Failed attempts at this epoch so far.
        attempts: u32,
    },
    /// Every retry attempt for an epoch was consumed; the job is failed.
    RetriesExhausted {
        /// The job that ran out of retries.
        job: u64,
        /// The epoch that could not be completed.
        epoch: u64,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A durable snapshot failed structural or checksum validation (bad
    /// magic, truncated record, CRC mismatch, trailing garbage).
    SnapshotCorrupt {
        /// Human-readable description of the first validation failure.
        detail: String,
    },
    /// A durable snapshot was written by a format version this build does
    /// not understand.
    SnapshotVersion {
        /// The version found in the snapshot header.
        found: u16,
        /// The newest version this build supports.
        supported: u16,
    },
    /// A structurally valid snapshot does not belong to the system trying
    /// to restore it (different configuration fingerprint or backend).
    SnapshotMismatch {
        /// Human-readable description of the incompatibility.
        detail: String,
    },
    /// A drive loop stopped making progress with work still outstanding.
    Stalled {
        /// Which loop detected the stall.
        site: &'static str,
        /// Tickets still open when progress stopped.
        outstanding: u64,
    },
}

impl fmt::Display for RotaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RotaryError::Parse { input, message } => {
                write!(f, "failed to parse completion criterion {input:?}: {message}")
            }
            RotaryError::InsufficientData { estimator, have, need } => write!(
                f,
                "estimator {estimator} needs at least {need} observation(s), has {have}"
            ),
            RotaryError::PlanBind { plan, message } => {
                write!(f, "failed to bind plan {plan}: {message}")
            }
            RotaryError::UnknownJob(id) => write!(f, "unknown job id {id}"),
            RotaryError::ResourceExhausted { requested_mb, available_mb } => write!(
                f,
                "job needs {requested_mb} MB but the largest available resource offers {available_mb} MB"
            ),
            RotaryError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RotaryError::Persistence(msg) => write!(f, "history persistence failed: {msg}"),
            RotaryError::CheckpointFailed { job, operation } => {
                write!(f, "checkpoint {operation} failed for job {job}")
            }
            RotaryError::EpochFailed { job, epoch, attempts } => write!(
                f,
                "job {job} lost epoch {epoch} (attempt {attempts}); rolling back to last checkpoint"
            ),
            RotaryError::RetriesExhausted { job, epoch, attempts } => write!(
                f,
                "job {job} exhausted {attempts} attempts at epoch {epoch}; giving up"
            ),
            RotaryError::SnapshotCorrupt { detail } => {
                write!(f, "snapshot failed validation: {detail}")
            }
            RotaryError::SnapshotVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than supported version {supported}"
            ),
            RotaryError::SnapshotMismatch { detail } => {
                write!(f, "snapshot does not belong to this system: {detail}")
            }
            RotaryError::Stalled { site, outstanding } => write!(
                f,
                "{site} stopped making progress with {outstanding} ticket(s) outstanding"
            ),
        }
    }
}

impl std::error::Error for RotaryError {}

impl RotaryError {
    /// Serialises the error for durable snapshots. Exact-width integers go
    /// through decimal strings (see [`crate::json::u64_json`]).
    pub fn to_json(&self) -> Json {
        let kind = |k: &str, mut fields: Vec<(&str, Json)>| {
            let mut pairs = vec![("kind", Json::Str(k.to_string()))];
            pairs.append(&mut fields);
            Json::obj(pairs)
        };
        match self {
            RotaryError::Parse { input, message } => kind(
                "parse",
                vec![("input", Json::Str(input.clone())), ("message", Json::Str(message.clone()))],
            ),
            RotaryError::InsufficientData { estimator, have, need } => kind(
                "insufficient-data",
                vec![
                    ("estimator", Json::Str(estimator.to_string())),
                    ("have", Json::Num(*have as f64)),
                    ("need", Json::Num(*need as f64)),
                ],
            ),
            RotaryError::PlanBind { plan, message } => kind(
                "plan-bind",
                vec![("plan", Json::Str(plan.clone())), ("message", Json::Str(message.clone()))],
            ),
            RotaryError::UnknownJob(id) => kind("unknown-job", vec![("job", u64_json(*id))]),
            RotaryError::ResourceExhausted { requested_mb, available_mb } => kind(
                "resource-exhausted",
                vec![
                    ("requested_mb", u64_json(*requested_mb)),
                    ("available_mb", u64_json(*available_mb)),
                ],
            ),
            RotaryError::InvalidConfig(msg) => {
                kind("invalid-config", vec![("message", Json::Str(msg.clone()))])
            }
            RotaryError::Persistence(msg) => {
                kind("persistence", vec![("message", Json::Str(msg.clone()))])
            }
            RotaryError::CheckpointFailed { job, operation } => kind(
                "checkpoint-failed",
                vec![("job", u64_json(*job)), ("operation", Json::Str(operation.to_string()))],
            ),
            RotaryError::EpochFailed { job, epoch, attempts } => kind(
                "epoch-failed",
                vec![
                    ("job", u64_json(*job)),
                    ("epoch", u64_json(*epoch)),
                    ("attempts", Json::Num(f64::from(*attempts))),
                ],
            ),
            RotaryError::RetriesExhausted { job, epoch, attempts } => kind(
                "retries-exhausted",
                vec![
                    ("job", u64_json(*job)),
                    ("epoch", u64_json(*epoch)),
                    ("attempts", Json::Num(f64::from(*attempts))),
                ],
            ),
            RotaryError::SnapshotCorrupt { detail } => {
                kind("snapshot-corrupt", vec![("detail", Json::Str(detail.clone()))])
            }
            RotaryError::SnapshotVersion { found, supported } => kind(
                "snapshot-version",
                vec![
                    ("found", Json::Num(f64::from(*found))),
                    ("supported", Json::Num(f64::from(*supported))),
                ],
            ),
            RotaryError::SnapshotMismatch { detail } => {
                kind("snapshot-mismatch", vec![("detail", Json::Str(detail.clone()))])
            }
            RotaryError::Stalled { site, outstanding } => kind(
                "stalled",
                vec![
                    ("site", Json::Str(site.to_string())),
                    ("outstanding", u64_json(*outstanding)),
                ],
            ),
        }
    }

    /// Decodes an error written by [`RotaryError::to_json`]. Returns `None`
    /// on any structural mismatch — callers translate that into a
    /// [`RotaryError::SnapshotCorrupt`] of their own.
    pub fn from_json(json: &Json) -> Option<RotaryError> {
        let s = |key: &str| json.get(key).and_then(Json::as_str).map(str::to_string);
        let u = |key: &str| json.get(key).and_then(Json::as_u64_str);
        let n = |key: &str| json.get(key).and_then(Json::as_u64);
        match json.get("kind")?.as_str()? {
            "parse" => Some(RotaryError::Parse { input: s("input")?, message: s("message")? }),
            "insufficient-data" => Some(RotaryError::InsufficientData {
                estimator: intern_estimator(&s("estimator")?),
                have: usize::try_from(n("have")?).ok()?,
                need: usize::try_from(n("need")?).ok()?,
            }),
            "plan-bind" => Some(RotaryError::PlanBind { plan: s("plan")?, message: s("message")? }),
            "unknown-job" => Some(RotaryError::UnknownJob(u("job")?)),
            "resource-exhausted" => Some(RotaryError::ResourceExhausted {
                requested_mb: u("requested_mb")?,
                available_mb: u("available_mb")?,
            }),
            "invalid-config" => Some(RotaryError::InvalidConfig(s("message")?)),
            "persistence" => Some(RotaryError::Persistence(s("message")?)),
            "checkpoint-failed" => Some(RotaryError::CheckpointFailed {
                job: u("job")?,
                operation: match s("operation")?.as_str() {
                    "write" => "write",
                    "restore" => "restore",
                    _ => return None,
                },
            }),
            "epoch-failed" => Some(RotaryError::EpochFailed {
                job: u("job")?,
                epoch: u("epoch")?,
                attempts: u32::try_from(n("attempts")?).ok()?,
            }),
            "retries-exhausted" => Some(RotaryError::RetriesExhausted {
                job: u("job")?,
                epoch: u("epoch")?,
                attempts: u32::try_from(n("attempts")?).ok()?,
            }),
            "snapshot-corrupt" => Some(RotaryError::SnapshotCorrupt { detail: s("detail")? }),
            "snapshot-version" => Some(RotaryError::SnapshotVersion {
                found: u16::try_from(n("found")?).ok()?,
                supported: u16::try_from(n("supported")?).ok()?,
            }),
            "snapshot-mismatch" => Some(RotaryError::SnapshotMismatch { detail: s("detail")? }),
            "stalled" => Some(RotaryError::Stalled {
                site: intern_site(&s("site")?),
                outstanding: u("outstanding")?,
            }),
            _ => None,
        }
    }
}

/// Maps a decoded estimator name back onto the static names the estimators
/// use; unknown names are leaked once to satisfy the `&'static str` field.
fn intern_estimator(name: &str) -> &'static str {
    const KNOWN: &[&str] = &["wlr", "log-shifted", "joint-curve", "tee", "tme"];
    for k in KNOWN {
        if *k == name {
            return k;
        }
    }
    Box::leak(name.to_string().into_boxed_str())
}

/// Same interning scheme for [`RotaryError::Stalled`] site names.
fn intern_site(name: &str) -> &'static str {
    const KNOWN: &[&str] = &["closed loop", "listener drain"];
    for k in KNOWN {
        if *k == name {
            return k;
        }
    }
    Box::leak(name.to_string().into_boxed_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e =
            RotaryError::Parse { input: "ACC MAX".into(), message: "expected MIN or DELTA".into() };
        let s = e.to_string();
        assert!(s.contains("ACC MAX"));
        assert!(s.contains("expected MIN or DELTA"));

        let e = RotaryError::InsufficientData { estimator: "wlr", have: 1, need: 2 };
        assert!(e.to_string().contains("wlr"));

        let e = RotaryError::ResourceExhausted { requested_mb: 9000, available_mb: 8192 };
        assert!(e.to_string().contains("9000"));

        let e = RotaryError::PlanBind { plan: "q6".into(), message: "unknown alias o".into() };
        let s = e.to_string();
        assert!(s.contains("q6") && s.contains("unknown alias o"), "{s}");
    }

    #[test]
    fn fault_errors_carry_their_context() {
        let e = RotaryError::CheckpointFailed { job: 7, operation: "restore" };
        assert!(e.to_string().contains("restore"));
        assert!(e.to_string().contains("7"));

        let e = RotaryError::EpochFailed { job: 2, epoch: 9, attempts: 1 };
        let s = e.to_string();
        assert!(s.contains("epoch 9") && s.contains("job 2"), "{s}");

        let e = RotaryError::RetriesExhausted { job: 3, epoch: 4, attempts: 3 };
        let s = e.to_string();
        assert!(s.contains("3 attempts") && s.contains("epoch 4"), "{s}");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(RotaryError::UnknownJob(3), RotaryError::UnknownJob(3));
        assert_ne!(RotaryError::UnknownJob(3), RotaryError::UnknownJob(4));
    }

    #[test]
    fn snapshot_errors_display_their_context() {
        let e = RotaryError::SnapshotCorrupt { detail: "record 2 CRC mismatch".into() };
        assert!(e.to_string().contains("record 2 CRC mismatch"));

        let e = RotaryError::SnapshotVersion { found: 9, supported: 1 };
        let s = e.to_string();
        assert!(s.contains("version 9") && s.contains("version 1"), "{s}");
    }

    #[test]
    fn json_codec_round_trips_every_variant() {
        let errors = [
            RotaryError::Parse { input: "ACC".into(), message: "truncated".into() },
            RotaryError::InsufficientData { estimator: "wlr", have: 1, need: 2 },
            RotaryError::PlanBind { plan: "q6".into(), message: "unknown alias".into() },
            RotaryError::UnknownJob(u64::MAX),
            RotaryError::ResourceExhausted { requested_mb: 1 << 60, available_mb: 8192 },
            RotaryError::InvalidConfig("bad bandwidth".into()),
            RotaryError::Persistence("disk full".into()),
            RotaryError::CheckpointFailed { job: 7, operation: "restore" },
            RotaryError::EpochFailed { job: 2, epoch: 9, attempts: 1 },
            RotaryError::RetriesExhausted { job: 3, epoch: 4, attempts: 3 },
            RotaryError::SnapshotCorrupt { detail: "torn".into() },
            RotaryError::SnapshotVersion { found: 2, supported: 1 },
            RotaryError::SnapshotMismatch { detail: "different backend".into() },
            RotaryError::Stalled { site: "closed loop", outstanding: u64::MAX },
        ];
        for e in errors {
            let json = e.to_json();
            let text = json.to_pretty();
            let parsed = crate::json::parse(&text).unwrap();
            assert_eq!(RotaryError::from_json(&parsed), Some(e.clone()), "{text}");
        }
    }

    #[test]
    fn json_codec_rejects_malformed_shapes() {
        for bad in [
            Json::Null,
            Json::obj(vec![]),
            Json::obj(vec![("kind", Json::Str("no-such-kind".into()))]),
            Json::obj(vec![("kind", Json::Str("unknown-job".into()))]),
            Json::obj(vec![
                ("kind", Json::Str("checkpoint-failed".into())),
                ("job", u64_json(1)),
                ("operation", Json::Str("frobnicate".into())),
            ]),
        ] {
            assert_eq!(RotaryError::from_json(&bad), None, "{}", bad.to_pretty());
        }
    }
}
