//! Error types shared across the Rotary framework.

use std::fmt;

/// Convenience alias used throughout the framework crates.
pub type Result<T> = std::result::Result<T, RotaryError>;

/// Errors produced by the Rotary framework.
#[derive(Debug, Clone, PartialEq)]
pub enum RotaryError {
    /// A completion-criterion statement failed to parse.
    Parse {
        /// The offending input (possibly truncated).
        input: String,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// An estimator was asked to predict before it had any observations.
    InsufficientData {
        /// Which estimator raised the error.
        estimator: &'static str,
        /// How many observations it had.
        have: usize,
        /// How many it needs.
        need: usize,
    },
    /// A job referenced by id does not exist in the system.
    UnknownJob(u64),
    /// A job cannot fit on any available resource.
    ResourceExhausted {
        /// Memory the job was estimated to need, in megabytes.
        requested_mb: u64,
        /// Largest amount any single resource could offer, in megabytes.
        available_mb: u64,
    },
    /// An invalid configuration value was supplied.
    InvalidConfig(String),
    /// History-repository persistence failed.
    Persistence(String),
}

impl fmt::Display for RotaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RotaryError::Parse { input, message } => {
                write!(f, "failed to parse completion criterion {input:?}: {message}")
            }
            RotaryError::InsufficientData { estimator, have, need } => write!(
                f,
                "estimator {estimator} needs at least {need} observation(s), has {have}"
            ),
            RotaryError::UnknownJob(id) => write!(f, "unknown job id {id}"),
            RotaryError::ResourceExhausted { requested_mb, available_mb } => write!(
                f,
                "job needs {requested_mb} MB but the largest available resource offers {available_mb} MB"
            ),
            RotaryError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RotaryError::Persistence(msg) => write!(f, "history persistence failed: {msg}"),
        }
    }
}

impl std::error::Error for RotaryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e =
            RotaryError::Parse { input: "ACC MAX".into(), message: "expected MIN or DELTA".into() };
        let s = e.to_string();
        assert!(s.contains("ACC MAX"));
        assert!(s.contains("expected MIN or DELTA"));

        let e = RotaryError::InsufficientData { estimator: "wlr", have: 1, need: 2 };
        assert!(e.to_string().contains("wlr"));

        let e = RotaryError::ResourceExhausted { requested_mb: 9000, available_mb: 8192 };
        assert!(e.to_string().contains("9000"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(RotaryError::UnknownJob(3), RotaryError::UnknownJob(3));
        assert_ne!(RotaryError::UnknownJob(3), RotaryError::UnknownJob(4));
    }
}
