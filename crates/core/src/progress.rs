//! Attainment progress `φ`, attainment rate `ψ`, and workload objectives
//! (paper §III-D).
//!
//! At each epoch `t`, `φ_i^t` denotes job `j_i`'s progress toward its
//! completion criterion; `A_t = n − |W|` counts jobs that have reached their
//! criteria and `ψ_t = A_t / n` is the workload attainment rate. Rotary
//! maximises a utility constrained by **fairness** (maximise `min φ_i`) or
//! **efficiency** (maximise `ψ` by favouring jobs that can attain soonest).

use crate::job::JobState;

/// A clamped attainment-progress value in `[0, 1]`.
///
/// Estimated progress can mathematically exceed 1 (e.g. the ratio
/// `current epoch / estimated epochs` when the estimate was low) or be
/// negative (regression artifacts); `Progress` normalises every producer to
/// the unit interval so policies can compare values safely.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Progress(f64);

impl Progress {
    /// Zero progress.
    pub const ZERO: Progress = Progress(0.0);
    /// Complete (`φ = 100%`).
    pub const COMPLETE: Progress = Progress(1.0);

    /// Builds a progress value, clamping to `[0, 1]` and mapping NaN to 0.
    pub fn new(value: f64) -> Progress {
        if value.is_nan() {
            Progress(0.0)
        } else {
            Progress(value.clamp(0.0, 1.0))
        }
    }

    /// Builds progress from a ratio `numerator / denominator`, treating a
    /// non-positive denominator as zero progress.
    pub fn from_ratio(numerator: f64, denominator: f64) -> Progress {
        if denominator <= 0.0 || !denominator.is_finite() {
            Progress::ZERO
        } else {
            Progress::new(numerator / denominator)
        }
    }

    /// The raw value in `[0, 1]`.
    pub fn value(self) -> f64 {
        self.0
    }

    /// True when `φ = 100%`.
    pub fn is_complete(self) -> bool {
        self.0 >= 1.0
    }
}

impl std::fmt::Display for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}%", self.0 * 100.0)
    }
}

/// The optimisation objective guiding a policy (paper §III-D "Objective").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Maximise `min φ_i`: keep allocating to the lowest-progress job.
    Fairness,
    /// Maximise `ψ`: keep selecting jobs that can attain soonest.
    Efficiency,
    /// The threshold-T blend of Algorithm 3: fairness until every job has
    /// reached progress `T` (or converged), then efficiency.
    /// `T = 0` degenerates to pure efficiency, `T = 1` to pure fairness.
    Threshold(f64),
}

impl Objective {
    /// The threshold `T ∈ [0, 1]` this objective corresponds to.
    pub fn threshold(self) -> f64 {
        match self {
            Objective::Efficiency => 0.0,
            Objective::Fairness => 1.0,
            Objective::Threshold(t) => t.clamp(0.0, 1.0),
        }
    }
}

/// Attainment rate `ψ = A / n` over a set of jobs. Empty workloads have
/// `ψ = 0` by convention.
///
/// Only genuinely attained jobs count: false attainment (Fig. 7a) is a
/// mistake the paper tallies separately, not a success.
pub fn attainment_rate(jobs: &[JobState]) -> f64 {
    if jobs.is_empty() {
        return 0.0;
    }
    let attained = jobs.iter().filter(|j| j.status == crate::job::JobStatus::Attained).count();
    attained as f64 / jobs.len() as f64
}

/// Minimum attainment progress across jobs (the fairness objective's
/// quantity of interest). Terminal jobs count as complete.
pub fn min_progress(jobs: &[JobState]) -> f64 {
    jobs.iter()
        .map(|j| if j.status.is_terminal() { 1.0 } else { j.progress() })
        .fold(f64::INFINITY, f64::min)
        .clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::{CompletionCriterion, Deadline, Metric};
    use crate::job::{IntermediateState, JobId, JobKind, JobStatus};
    use crate::time::SimTime;

    fn job(id: u64) -> JobState {
        JobState::new(
            JobId(id),
            JobKind::Dlt,
            CompletionCriterion::Accuracy {
                metric: Metric::Accuracy,
                threshold: 0.9,
                deadline: Deadline::Epochs(30),
            },
            SimTime::ZERO,
        )
    }

    #[test]
    fn progress_clamps() {
        assert_eq!(Progress::new(-0.5).value(), 0.0);
        assert_eq!(Progress::new(1.5).value(), 1.0);
        assert_eq!(Progress::new(f64::NAN).value(), 0.0);
        assert_eq!(Progress::new(0.42).value(), 0.42);
        assert!(Progress::new(1.0).is_complete());
        assert!(!Progress::new(0.999).is_complete());
    }

    #[test]
    fn ratio_handles_degenerate_denominator() {
        assert_eq!(Progress::from_ratio(5.0, 0.0), Progress::ZERO);
        assert_eq!(Progress::from_ratio(5.0, -1.0), Progress::ZERO);
        assert_eq!(Progress::from_ratio(5.0, f64::INFINITY), Progress::ZERO);
        assert_eq!(Progress::from_ratio(5.0, 15.0).value(), 1.0 / 3.0);
        // Paper's example: 5 of 15 epochs = 33.3%.
        assert_eq!(Progress::from_ratio(5.0, 15.0).to_string(), "33.3%");
    }

    #[test]
    fn objective_thresholds_match_paper() {
        assert_eq!(Objective::Efficiency.threshold(), 0.0);
        assert_eq!(Objective::Fairness.threshold(), 1.0);
        assert_eq!(Objective::Threshold(0.5).threshold(), 0.5);
        assert_eq!(Objective::Threshold(7.0).threshold(), 1.0);
    }

    #[test]
    fn attainment_rate_counts_only_true_attainment() {
        let mut jobs = vec![job(0), job(1), job(2), job(3)];
        jobs[0].finish(JobStatus::Attained, SimTime::from_secs(1));
        jobs[1].finish(JobStatus::FalselyAttained, SimTime::from_secs(2));
        jobs[2].finish(JobStatus::DeadlineMissed, SimTime::from_secs(3));
        assert_eq!(attainment_rate(&jobs), 0.25);
        assert_eq!(attainment_rate(&[]), 0.0);
    }

    #[test]
    fn min_progress_over_workload() {
        let mut jobs = vec![job(0), job(1)];
        jobs[0].record_epoch(
            IntermediateState {
                epoch: 1,
                at: SimTime::from_secs(1),
                metric_value: 0.3,
                progress: 0.4,
            },
            SimTime::from_secs(1),
        );
        assert_eq!(min_progress(&jobs), 0.0); // job 1 has not run yet
        jobs[1].record_epoch(
            IntermediateState {
                epoch: 1,
                at: SimTime::from_secs(1),
                metric_value: 0.6,
                progress: 0.7,
            },
            SimTime::from_secs(1),
        );
        assert!((min_progress(&jobs) - 0.4).abs() < 1e-12);
        // Terminal jobs no longer hold the minimum down.
        jobs[0].finish(JobStatus::DeadlineMissed, SimTime::from_secs(9));
        assert!((min_progress(&jobs) - 0.7).abs() < 1e-12);
    }
}
