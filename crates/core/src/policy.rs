//! The arbitration-policy abstraction (paper §III-D).
//!
//! A resource arbitration policy is a function `π : Q_t ↦ assign(W, M)` from
//! the current queue state to an assignment of jobs onto resources. The
//! queue state [`JobSnapshot`] carries, per job, the intermediate state and
//! estimates a policy may consult; concrete assignment shapes differ between
//! the CPU pool (thread counts) and the GPU pool (device indices), so the
//! application crates define their own arbitration loops on top of the
//! shared [`Prioritizer`] abstraction: a total order over arbitrable jobs.
//!
//! The classic dynamic-priority baselines of §V (EDF, LAF, SRF, BCF) are all
//! prioritizers, as is the threshold-T rule at the heart of Algorithm 3.

use crate::criteria::Deadline;
use crate::job::{JobId, JobStatus};
use crate::progress::Objective;
use crate::time::SimTime;
use std::cmp::Ordering;

/// A policy-facing view of one job in the queue `Q_t`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSnapshot {
    /// Job identity.
    pub id: JobId,
    /// Lifecycle status (policies only see arbitrable jobs in practice).
    pub status: JobStatus,
    /// Current attainment progress `φ ∈ [0, 1]`.
    pub progress: f64,
    /// Estimated attainment progress `φ̂` after one more epoch.
    pub estimated_progress: f64,
    /// Estimated memory consumption for the next epoch, in megabytes.
    pub estimated_memory_mb: u64,
    /// The job's deadline (criterion budget).
    pub deadline: Deadline,
    /// Arrival time, for FIFO tie-breaks.
    pub arrival: SimTime,
    /// Epochs completed so far.
    pub epochs_run: u64,
    /// Latest convergence-metric value (accuracy for most workloads).
    pub metric_value: f64,
    /// Whether the system currently believes the job has converged (i.e.
    /// further epochs will not improve it) without having attained its goal.
    pub considered_converged: bool,
}

impl JobSnapshot {
    /// Estimated progress *gain* from one more epoch.
    pub fn estimated_gain(&self) -> f64 {
        (self.estimated_progress - self.progress).max(0.0)
    }

    /// Deadline pressure: virtual time remaining until the deadline, for
    /// time-based deadlines. Epoch deadlines return `SimTime::MAX` (EDF in
    /// the paper is evaluated on the AQP workload, whose deadlines are all
    /// in seconds).
    pub fn time_to_deadline(&self, now: SimTime) -> SimTime {
        match self.deadline {
            Deadline::Time(t) => (self.arrival + t).saturating_sub(now),
            Deadline::Epochs(_) => SimTime::MAX,
        }
    }
}

/// A total order over queue snapshots: *smaller sorts first* (highest
/// priority). Implementations must be deterministic; all built-ins fall back
/// to `(arrival, id)` so equal-priority jobs are served FIFO.
pub trait Prioritizer {
    /// Stable, human-readable policy name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Compares two jobs; `Ordering::Less` means `a` runs before `b`.
    fn compare(&self, a: &JobSnapshot, b: &JobSnapshot, now: SimTime) -> Ordering;

    /// Sorts a queue into priority order.
    fn sort(&self, queue: &mut [JobSnapshot], now: SimTime) {
        queue.sort_by(|a, b| self.compare(a, b, now));
    }
}

fn fifo_tiebreak(a: &JobSnapshot, b: &JobSnapshot) -> Ordering {
    a.arrival.cmp(&b.arrival).then(a.id.cmp(&b.id))
}

/// Earliest Deadline First: the AQP baseline that always prioritises the job
/// whose deadline is nearest.
#[derive(Debug, Clone, Copy, Default)]
pub struct EarliestDeadlineFirst;

impl Prioritizer for EarliestDeadlineFirst {
    fn name(&self) -> &'static str {
        "EDF"
    }
    fn compare(&self, a: &JobSnapshot, b: &JobSnapshot, now: SimTime) -> Ordering {
        a.time_to_deadline(now).cmp(&b.time_to_deadline(now)).then(fifo_tiebreak(a, b))
    }
}

/// Least Accuracy First: prioritises the job with the lowest current metric
/// (an AQP *and* DLT baseline in the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastAccuracyFirst;

impl Prioritizer for LeastAccuracyFirst {
    fn name(&self) -> &'static str {
        "LAF"
    }
    fn compare(&self, a: &JobSnapshot, b: &JobSnapshot, _now: SimTime) -> Ordering {
        a.metric_value
            .partial_cmp(&b.metric_value)
            .unwrap_or(Ordering::Equal)
            .then(fifo_tiebreak(a, b))
    }
}

/// The Rotary ordering for a given [`Objective`] (Algorithm 3's queue
/// construction):
///
/// * while any job is below the threshold `T` (and not converged), the
///   *lowest*-progress job runs first (fairness phase);
/// * once every job has reached `T` or converged, the *highest*
///   estimated-progress job runs first (efficiency phase).
///
/// The caller signals the phase via [`ThresholdPrioritizer::set_phase`] after
/// inspecting the whole queue; `compare` alone cannot see global state.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdPrioritizer {
    objective: Objective,
    efficiency_phase: bool,
}

impl ThresholdPrioritizer {
    /// Creates the prioritizer for an objective; starts in the fairness
    /// phase (harmless for `T = 0`, where the first `update_phase` flips it
    /// immediately).
    pub fn new(objective: Objective) -> Self {
        ThresholdPrioritizer { objective, efficiency_phase: false }
    }

    /// The objective's threshold `T`.
    pub fn threshold(&self) -> f64 {
        self.objective.threshold()
    }

    /// Recomputes the phase from the queue: efficiency once "all the jobs
    /// either achieve T progress or are considered converged".
    pub fn update_phase(&mut self, queue: &[JobSnapshot]) {
        let t = self.threshold();
        self.efficiency_phase = queue
            .iter()
            .all(|j| j.progress >= t || j.considered_converged || j.status.is_terminal());
    }

    /// Overrides the phase directly (mainly for tests).
    pub fn set_phase(&mut self, efficiency: bool) {
        self.efficiency_phase = efficiency;
    }

    /// Whether the prioritizer is in the efficiency phase.
    pub fn in_efficiency_phase(&self) -> bool {
        self.efficiency_phase
    }
}

impl Prioritizer for ThresholdPrioritizer {
    fn name(&self) -> &'static str {
        "Rotary"
    }
    fn compare(&self, a: &JobSnapshot, b: &JobSnapshot, _now: SimTime) -> Ordering {
        let ord = if self.efficiency_phase {
            // Highest estimated progress first.
            b.estimated_progress.partial_cmp(&a.estimated_progress).unwrap_or(Ordering::Equal)
        } else {
            // Lowest current progress first.
            a.progress.partial_cmp(&b.progress).unwrap_or(Ordering::Equal)
        };
        ord.then(fifo_tiebreak(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(
        id: u64,
        progress: f64,
        est: f64,
        metric: f64,
        deadline_s: u64,
        arrival_s: u64,
    ) -> JobSnapshot {
        JobSnapshot {
            id: JobId(id),
            status: JobStatus::Active,
            progress,
            estimated_progress: est,
            estimated_memory_mb: 1024,
            deadline: Deadline::Time(SimTime::from_secs(deadline_s)),
            arrival: SimTime::from_secs(arrival_s),
            epochs_run: 1,
            metric_value: metric,
            considered_converged: false,
        }
    }

    #[test]
    fn estimated_gain_is_non_negative() {
        let mut j = snap(1, 0.5, 0.7, 0.5, 100, 0);
        assert!((j.estimated_gain() - 0.2).abs() < 1e-12);
        j.estimated_progress = 0.3; // bad estimate below current progress
        assert_eq!(j.estimated_gain(), 0.0);
    }

    #[test]
    fn edf_orders_by_remaining_time() {
        // Same deadline length; the earlier arrival has less time left? No —
        // deadline is arrival + budget, so earlier arrival → earlier deadline.
        let a = snap(1, 0.0, 0.0, 0.0, 600, 0);
        let b = snap(2, 0.0, 0.0, 0.0, 600, 100);
        let c = snap(3, 0.0, 0.0, 0.0, 60, 100); // tightest
        let mut q = vec![a, b, c];
        EarliestDeadlineFirst.sort(&mut q, SimTime::from_secs(150));
        let ids: Vec<u64> = q.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![3, 1, 2]);
    }

    #[test]
    fn laf_orders_by_metric() {
        let mut q = vec![
            snap(1, 0.9, 0.9, 0.8, 600, 0),
            snap(2, 0.3, 0.4, 0.2, 600, 0),
            snap(3, 0.5, 0.6, 0.5, 600, 0),
        ];
        LeastAccuracyFirst.sort(&mut q, SimTime::ZERO);
        let ids: Vec<u64> = q.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![2, 3, 1]);
    }

    #[test]
    fn threshold_prioritizer_switches_phase() {
        let mut p = ThresholdPrioritizer::new(Objective::Threshold(0.5));
        let queue = vec![snap(1, 0.2, 0.4, 0.2, 600, 0), snap(2, 0.8, 0.9, 0.8, 600, 0)];
        p.update_phase(&queue);
        assert!(!p.in_efficiency_phase(), "job 1 is below T=0.5");

        // Fairness phase: lowest progress first.
        let mut q = queue.clone();
        p.sort(&mut q, SimTime::ZERO);
        assert_eq!(q[0].id, JobId(1));

        // All above threshold → efficiency phase, highest φ̂ first.
        let queue2 = vec![snap(1, 0.6, 0.7, 0.6, 600, 0), snap(2, 0.8, 0.95, 0.8, 600, 0)];
        p.update_phase(&queue2);
        assert!(p.in_efficiency_phase());
        let mut q2 = queue2;
        p.sort(&mut q2, SimTime::ZERO);
        assert_eq!(q2[0].id, JobId(2));
    }

    #[test]
    fn converged_jobs_do_not_block_the_phase_switch() {
        let mut p = ThresholdPrioritizer::new(Objective::Threshold(0.5));
        let mut stuck = snap(1, 0.1, 0.1, 0.1, 600, 0);
        stuck.considered_converged = true;
        let queue = vec![stuck, snap(2, 0.9, 0.95, 0.9, 600, 0)];
        p.update_phase(&queue);
        assert!(p.in_efficiency_phase());
    }

    #[test]
    fn efficiency_objective_is_immediately_in_efficiency_phase() {
        let mut p = ThresholdPrioritizer::new(Objective::Efficiency);
        let queue = vec![snap(1, 0.0, 0.1, 0.0, 600, 0)];
        p.update_phase(&queue);
        // T = 0: every job trivially meets the threshold.
        assert!(p.in_efficiency_phase());
    }

    #[test]
    fn fairness_objective_stays_fair_until_complete() {
        let mut p = ThresholdPrioritizer::new(Objective::Fairness);
        let queue = vec![snap(1, 0.99, 0.995, 0.99, 600, 0)];
        p.update_phase(&queue);
        assert!(!p.in_efficiency_phase(), "T=1.0 requires full completion");
    }

    #[test]
    fn fifo_tiebreak_is_deterministic() {
        let mut q = vec![snap(2, 0.5, 0.5, 0.5, 600, 10), snap(1, 0.5, 0.5, 0.5, 600, 10)];
        LeastAccuracyFirst.sort(&mut q, SimTime::ZERO);
        assert_eq!(q[0].id, JobId(1));
    }

    #[test]
    fn epoch_deadlines_are_never_urgent_for_edf() {
        let mut j = snap(1, 0.0, 0.0, 0.0, 600, 0);
        j.deadline = Deadline::Epochs(10);
        assert_eq!(j.time_to_deadline(SimTime::from_secs(100)), SimTime::MAX);
    }
}
