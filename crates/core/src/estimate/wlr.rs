//! Weighted linear regression (paper §IV-A, citing Kay's *Fundamentals of
//! Statistical Signal Processing*).
//!
//! Fits `y = intercept + slope · x` minimising `Σ wᵢ (yᵢ − ŷᵢ)²`. This is
//! the workhorse under both the AQP progress-runtime curve and the DLT
//! accuracy-epoch / batch-size-memory curves; those callers transform their
//! x-axis first (see [`super::joint::CurveBasis`]) so the concave
//! diminishing-returns shape of Fig. 1 becomes (approximately) linear.

use crate::error::{Result, RotaryError};

/// One weighted observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedPoint {
    /// Independent variable (already basis-transformed by the caller).
    pub x: f64,
    /// Dependent variable.
    pub y: f64,
    /// Non-negative weight; zero-weight points are ignored.
    pub weight: f64,
}

impl WeightedPoint {
    /// Convenience constructor.
    pub fn new(x: f64, y: f64, weight: f64) -> Self {
        WeightedPoint { x, y, weight }
    }
}

/// The result of a weighted least-squares line fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Estimated intercept `a` of `y = a + b·x`.
    pub intercept: f64,
    /// Estimated slope `b`.
    pub slope: f64,
}

impl LinearFit {
    /// Fits a line through weighted points.
    ///
    /// Needs at least two points with positive weight and distinct `x`
    /// values; a degenerate (vertical or single-point) configuration returns
    /// [`RotaryError::InsufficientData`]. Points with non-finite coordinates
    /// or weights are rejected via [`RotaryError::InvalidConfig`] rather than
    /// silently skewing the fit.
    pub fn fit(points: &[WeightedPoint]) -> Result<LinearFit> {
        let mut w_sum = 0.0;
        let mut wx = 0.0;
        let mut wy = 0.0;
        let mut n_effective = 0usize;
        for p in points {
            if !(p.x.is_finite() && p.y.is_finite() && p.weight.is_finite()) || p.weight < 0.0 {
                return Err(RotaryError::InvalidConfig(format!(
                    "non-finite or negative-weight observation ({}, {}, w={})",
                    p.x, p.y, p.weight
                )));
            }
            if p.weight == 0.0 {
                continue;
            }
            n_effective += 1;
            w_sum += p.weight;
            wx += p.weight * p.x;
            wy += p.weight * p.y;
        }
        if n_effective < 2 {
            return Err(RotaryError::InsufficientData {
                estimator: "weighted-linear-regression",
                have: n_effective,
                need: 2,
            });
        }
        let x_bar = wx / w_sum;
        let y_bar = wy / w_sum;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for p in points.iter().filter(|p| p.weight > 0.0) {
            let dx = p.x - x_bar;
            sxx += p.weight * dx * dx;
            sxy += p.weight * dx * (p.y - y_bar);
        }
        if sxx <= f64::EPSILON * w_sum.max(1.0) {
            // All x identical: no slope information.
            return Err(RotaryError::InsufficientData {
                estimator: "weighted-linear-regression",
                have: 1,
                need: 2,
            });
        }
        let slope = sxy / sxx;
        Ok(LinearFit { intercept: y_bar - slope * x_bar, slope })
    }

    /// Predicts `ŷ` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Inverse prediction: the `x` at which the fitted line reaches `y`.
    /// Returns `None` when the line is flat (slope ≈ 0), i.e. the target is
    /// unreachable by extrapolation.
    pub fn solve_for_x(&self, y: f64) -> Option<f64> {
        if self.slope.abs() < 1e-12 {
            None
        } else {
            Some((y - self.intercept) / self.slope)
        }
    }
}

/// Sufficient statistics for a weighted linear regression, updatable in
/// O(1) per observation (a rank-1 update of the normal equations).
///
/// [`LinearFit::fit`] re-reads every point on every call — fine for a
/// one-shot solve, linear-per-event once an arbitration loop refits a
/// running job's curve at every epoch. `WlrStats` instead accumulates the
/// weighted raw moments `Σw`, `Σwx`, `Σwy`, `Σwx²`, `Σwxy`; adding an
/// observation touches five floats, and [`WlrStats::fit`] solves the line
/// from the moments alone in O(1).
///
/// The raw-moment solve is algebraically identical to the two-pass centered
/// solve but rounds differently, so fits differ from [`LinearFit::fit`] at
/// ULP level on well-conditioned data (the property suite bounds the
/// difference and keeps the dense path as the oracle). Degeneracy detection
/// compensates for the cancellation in `Σwx² − (Σwx)²/Σw` with a
/// magnitude-aware threshold: identical-x inputs whose cancellation noise
/// survives the subtraction still classify as slope-free.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WlrStats {
    n_effective: usize,
    w_sum: f64,
    wx: f64,
    wy: f64,
    wxx: f64,
    wxy: f64,
}

impl WlrStats {
    /// Empty statistics (no observations).
    pub fn new() -> Self {
        WlrStats::default()
    }

    /// Folds one weighted observation into the moments. Mirrors
    /// [`LinearFit::fit`]'s input rules: non-finite coordinates or weights
    /// are rejected with [`RotaryError::InvalidConfig`], zero-weight points
    /// are ignored.
    pub fn add(&mut self, x: f64, y: f64, weight: f64) -> Result<()> {
        if !(x.is_finite() && y.is_finite() && weight.is_finite()) || weight < 0.0 {
            return Err(RotaryError::InvalidConfig(format!(
                "non-finite or negative-weight observation ({x}, {y}, w={weight})"
            )));
        }
        if weight == 0.0 {
            return Ok(());
        }
        self.n_effective += 1;
        self.w_sum += weight;
        self.wx += weight * x;
        self.wy += weight * y;
        self.wxx += weight * x * x;
        self.wxy += weight * x * y;
        Ok(())
    }

    /// Number of positive-weight observations folded in so far.
    pub fn n_effective(&self) -> usize {
        self.n_effective
    }

    /// Solves the weighted least-squares line from the accumulated moments.
    /// Same error contract as [`LinearFit::fit`]: fewer than two points, or
    /// no x spread, is [`RotaryError::InsufficientData`].
    pub fn fit(&self) -> Result<LinearFit> {
        if self.n_effective < 2 {
            return Err(RotaryError::InsufficientData {
                estimator: "weighted-linear-regression",
                have: self.n_effective,
                need: 2,
            });
        }
        let x_bar = self.wx / self.w_sum;
        let y_bar = self.wy / self.w_sum;
        let sxx = self.wxx - x_bar * self.wx;
        let sxy = self.wxy - x_bar * self.wy;
        // `wxx` bounds the cancellation noise of the raw-moment subtraction;
        // without it, identical x's of large magnitude would leave a tiny
        // garbage `sxx` that passes a purely weight-scaled threshold.
        if sxx <= f64::EPSILON * 32.0 * (self.w_sum.max(1.0) + self.wxx) {
            return Err(RotaryError::InsufficientData {
                estimator: "weighted-linear-regression",
                have: 1,
                need: 2,
            });
        }
        let slope = sxy / sxx;
        Ok(LinearFit { intercept: y_bar - slope * x_bar, slope })
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn stats_recover_exact_line() {
        let mut stats = WlrStats::new();
        for &(x, y) in &[(0.0, 2.0), (1.0, 5.0), (2.0, 8.0), (5.0, 17.0)] {
            stats.add(x, y, 1.0).unwrap();
        }
        let fit = stats.fit().unwrap();
        assert!((fit.intercept - 2.0).abs() < 1e-9);
        assert!((fit.slope - 3.0).abs() < 1e-9);
    }

    #[test]
    fn stats_match_dense_fit_closely() {
        let pts: Vec<WeightedPoint> = (0..40)
            .map(|i| {
                let x = i as f64 * 0.25;
                let noise = if i % 2 == 0 { 0.03 } else { -0.03 };
                WeightedPoint::new(x, 1.0 + 0.5 * x + noise, if i % 3 == 0 { 2.0 } else { 1.0 })
            })
            .collect();
        let dense = LinearFit::fit(&pts).unwrap();
        let mut stats = WlrStats::new();
        for p in &pts {
            stats.add(p.x, p.y, p.weight).unwrap();
        }
        let inc = stats.fit().unwrap();
        assert!((inc.slope - dense.slope).abs() < 1e-10);
        assert!((inc.intercept - dense.intercept).abs() < 1e-10);
    }

    #[test]
    fn stats_degeneracy_matches_dense() {
        // Identical large-magnitude x's: the raw-moment cancellation leaves
        // noise, which the magnitude-aware threshold must still classify as
        // "no slope information".
        let mut stats = WlrStats::new();
        stats.add(1.0e3 / 3.0, 1.0, 1.0).unwrap();
        stats.add(1.0e3 / 3.0, 5.0, 1.0).unwrap();
        stats.add(1.0e3 / 3.0, -2.0, 0.5).unwrap();
        assert!(matches!(stats.fit(), Err(RotaryError::InsufficientData { .. })));
        // And the trivial under-determined cases.
        assert!(matches!(WlrStats::new().fit(), Err(RotaryError::InsufficientData { .. })));
        let mut one = WlrStats::new();
        one.add(1.0, 1.0, 1.0).unwrap();
        assert!(matches!(one.fit(), Err(RotaryError::InsufficientData { .. })));
    }

    #[test]
    fn stats_reject_bad_inputs_and_skip_zero_weight() {
        let mut stats = WlrStats::new();
        assert!(stats.add(f64::NAN, 1.0, 1.0).is_err());
        assert!(stats.add(1.0, 1.0, -1.0).is_err());
        stats.add(50.0, -999.0, 0.0).unwrap();
        assert_eq!(stats.n_effective(), 0, "zero-weight points are ignored");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unweighted(points: &[(f64, f64)]) -> Vec<WeightedPoint> {
        points.iter().map(|&(x, y)| WeightedPoint::new(x, y, 1.0)).collect()
    }

    #[test]
    fn recovers_exact_line() {
        // y = 2 + 3x
        let pts = unweighted(&[(0.0, 2.0), (1.0, 5.0), (2.0, 8.0), (5.0, 17.0)]);
        let fit = LinearFit::fit(&pts).unwrap();
        assert!((fit.intercept - 2.0).abs() < 1e-10);
        assert!((fit.slope - 3.0).abs() < 1e-10);
        assert!((fit.predict(10.0) - 32.0).abs() < 1e-9);
        assert!((fit.solve_for_x(32.0).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn weights_pull_the_fit() {
        // Two clusters disagree; the heavier one dominates.
        let pts = vec![
            WeightedPoint::new(0.0, 0.0, 10.0),
            WeightedPoint::new(1.0, 1.0, 10.0),
            WeightedPoint::new(0.0, 5.0, 0.1),
            WeightedPoint::new(1.0, 4.0, 0.1),
        ];
        let fit = LinearFit::fit(&pts).unwrap();
        // Close to y = x (heavy cluster), far from y = 5 - x.
        assert!(fit.slope > 0.8, "slope {}", fit.slope);
        assert!(fit.intercept < 0.3, "intercept {}", fit.intercept);
    }

    #[test]
    fn zero_weight_points_are_ignored() {
        let pts = vec![
            WeightedPoint::new(0.0, 1.0, 1.0),
            WeightedPoint::new(1.0, 3.0, 1.0),
            WeightedPoint::new(50.0, -999.0, 0.0),
        ];
        let fit = LinearFit::fit(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-10);
        assert!((fit.intercept - 1.0).abs() < 1e-10);
    }

    #[test]
    fn insufficient_data_errors() {
        assert!(matches!(LinearFit::fit(&[]), Err(RotaryError::InsufficientData { .. })));
        assert!(matches!(
            LinearFit::fit(&unweighted(&[(1.0, 1.0)])),
            Err(RotaryError::InsufficientData { .. })
        ));
        // Identical x's: vertical line, no usable slope.
        assert!(matches!(
            LinearFit::fit(&unweighted(&[(2.0, 1.0), (2.0, 5.0)])),
            Err(RotaryError::InsufficientData { .. })
        ));
    }

    #[test]
    fn rejects_non_finite_inputs() {
        let bad = vec![WeightedPoint::new(f64::NAN, 1.0, 1.0), WeightedPoint::new(1.0, 2.0, 1.0)];
        assert!(matches!(LinearFit::fit(&bad), Err(RotaryError::InvalidConfig(_))));
        let bad = vec![WeightedPoint::new(0.0, 1.0, -1.0), WeightedPoint::new(1.0, 2.0, 1.0)];
        assert!(matches!(LinearFit::fit(&bad), Err(RotaryError::InvalidConfig(_))));
    }

    #[test]
    fn flat_line_has_no_inverse() {
        let pts = unweighted(&[(0.0, 4.0), (1.0, 4.0), (2.0, 4.0)]);
        let fit = LinearFit::fit(&pts).unwrap();
        assert!(fit.solve_for_x(9.0).is_none());
    }

    #[test]
    fn noisy_fit_is_close() {
        // y = 1 + 0.5x with deterministic "noise".
        let pts: Vec<WeightedPoint> = (0..50)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.05 } else { -0.05 };
                WeightedPoint::new(x, 1.0 + 0.5 * x + noise, 1.0)
            })
            .collect();
        let fit = LinearFit::fit(&pts).unwrap();
        assert!((fit.slope - 0.5).abs() < 0.01);
        assert!((fit.intercept - 1.0).abs() < 0.1);
    }
}
