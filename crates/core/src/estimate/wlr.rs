//! Weighted linear regression (paper §IV-A, citing Kay's *Fundamentals of
//! Statistical Signal Processing*).
//!
//! Fits `y = intercept + slope · x` minimising `Σ wᵢ (yᵢ − ŷᵢ)²`. This is
//! the workhorse under both the AQP progress-runtime curve and the DLT
//! accuracy-epoch / batch-size-memory curves; those callers transform their
//! x-axis first (see [`super::joint::CurveBasis`]) so the concave
//! diminishing-returns shape of Fig. 1 becomes (approximately) linear.

use crate::error::{Result, RotaryError};

/// One weighted observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedPoint {
    /// Independent variable (already basis-transformed by the caller).
    pub x: f64,
    /// Dependent variable.
    pub y: f64,
    /// Non-negative weight; zero-weight points are ignored.
    pub weight: f64,
}

impl WeightedPoint {
    /// Convenience constructor.
    pub fn new(x: f64, y: f64, weight: f64) -> Self {
        WeightedPoint { x, y, weight }
    }
}

/// The result of a weighted least-squares line fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Estimated intercept `a` of `y = a + b·x`.
    pub intercept: f64,
    /// Estimated slope `b`.
    pub slope: f64,
}

impl LinearFit {
    /// Fits a line through weighted points.
    ///
    /// Needs at least two points with positive weight and distinct `x`
    /// values; a degenerate (vertical or single-point) configuration returns
    /// [`RotaryError::InsufficientData`]. Points with non-finite coordinates
    /// or weights are rejected via [`RotaryError::InvalidConfig`] rather than
    /// silently skewing the fit.
    pub fn fit(points: &[WeightedPoint]) -> Result<LinearFit> {
        let mut w_sum = 0.0;
        let mut wx = 0.0;
        let mut wy = 0.0;
        let mut n_effective = 0usize;
        for p in points {
            if !(p.x.is_finite() && p.y.is_finite() && p.weight.is_finite()) || p.weight < 0.0 {
                return Err(RotaryError::InvalidConfig(format!(
                    "non-finite or negative-weight observation ({}, {}, w={})",
                    p.x, p.y, p.weight
                )));
            }
            if p.weight == 0.0 {
                continue;
            }
            n_effective += 1;
            w_sum += p.weight;
            wx += p.weight * p.x;
            wy += p.weight * p.y;
        }
        if n_effective < 2 {
            return Err(RotaryError::InsufficientData {
                estimator: "weighted-linear-regression",
                have: n_effective,
                need: 2,
            });
        }
        let x_bar = wx / w_sum;
        let y_bar = wy / w_sum;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for p in points.iter().filter(|p| p.weight > 0.0) {
            let dx = p.x - x_bar;
            sxx += p.weight * dx * dx;
            sxy += p.weight * dx * (p.y - y_bar);
        }
        if sxx <= f64::EPSILON * w_sum.max(1.0) {
            // All x identical: no slope information.
            return Err(RotaryError::InsufficientData {
                estimator: "weighted-linear-regression",
                have: 1,
                need: 2,
            });
        }
        let slope = sxy / sxx;
        Ok(LinearFit { intercept: y_bar - slope * x_bar, slope })
    }

    /// Predicts `ŷ` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Inverse prediction: the `x` at which the fitted line reaches `y`.
    /// Returns `None` when the line is flat (slope ≈ 0), i.e. the target is
    /// unreachable by extrapolation.
    pub fn solve_for_x(&self, y: f64) -> Option<f64> {
        if self.slope.abs() < 1e-12 {
            None
        } else {
            Some((y - self.intercept) / self.slope)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unweighted(points: &[(f64, f64)]) -> Vec<WeightedPoint> {
        points.iter().map(|&(x, y)| WeightedPoint::new(x, y, 1.0)).collect()
    }

    #[test]
    fn recovers_exact_line() {
        // y = 2 + 3x
        let pts = unweighted(&[(0.0, 2.0), (1.0, 5.0), (2.0, 8.0), (5.0, 17.0)]);
        let fit = LinearFit::fit(&pts).unwrap();
        assert!((fit.intercept - 2.0).abs() < 1e-10);
        assert!((fit.slope - 3.0).abs() < 1e-10);
        assert!((fit.predict(10.0) - 32.0).abs() < 1e-9);
        assert!((fit.solve_for_x(32.0).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn weights_pull_the_fit() {
        // Two clusters disagree; the heavier one dominates.
        let pts = vec![
            WeightedPoint::new(0.0, 0.0, 10.0),
            WeightedPoint::new(1.0, 1.0, 10.0),
            WeightedPoint::new(0.0, 5.0, 0.1),
            WeightedPoint::new(1.0, 4.0, 0.1),
        ];
        let fit = LinearFit::fit(&pts).unwrap();
        // Close to y = x (heavy cluster), far from y = 5 - x.
        assert!(fit.slope > 0.8, "slope {}", fit.slope);
        assert!(fit.intercept < 0.3, "intercept {}", fit.intercept);
    }

    #[test]
    fn zero_weight_points_are_ignored() {
        let pts = vec![
            WeightedPoint::new(0.0, 1.0, 1.0),
            WeightedPoint::new(1.0, 3.0, 1.0),
            WeightedPoint::new(50.0, -999.0, 0.0),
        ];
        let fit = LinearFit::fit(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-10);
        assert!((fit.intercept - 1.0).abs() < 1e-10);
    }

    #[test]
    fn insufficient_data_errors() {
        assert!(matches!(LinearFit::fit(&[]), Err(RotaryError::InsufficientData { .. })));
        assert!(matches!(
            LinearFit::fit(&unweighted(&[(1.0, 1.0)])),
            Err(RotaryError::InsufficientData { .. })
        ));
        // Identical x's: vertical line, no usable slope.
        assert!(matches!(
            LinearFit::fit(&unweighted(&[(2.0, 1.0), (2.0, 5.0)])),
            Err(RotaryError::InsufficientData { .. })
        ));
    }

    #[test]
    fn rejects_non_finite_inputs() {
        let bad = vec![WeightedPoint::new(f64::NAN, 1.0, 1.0), WeightedPoint::new(1.0, 2.0, 1.0)];
        assert!(matches!(LinearFit::fit(&bad), Err(RotaryError::InvalidConfig(_))));
        let bad = vec![WeightedPoint::new(0.0, 1.0, -1.0), WeightedPoint::new(1.0, 2.0, 1.0)];
        assert!(matches!(LinearFit::fit(&bad), Err(RotaryError::InvalidConfig(_))));
    }

    #[test]
    fn flat_line_has_no_inverse() {
        let pts = unweighted(&[(0.0, 4.0), (1.0, 4.0), (2.0, 4.0)]);
        let fit = LinearFit::fit(&pts).unwrap();
        assert!(fit.solve_for_x(9.0).is_none());
    }

    #[test]
    fn noisy_fit_is_close() {
        // y = 1 + 0.5x with deterministic "noise".
        let pts: Vec<WeightedPoint> = (0..50)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.05 } else { -0.05 };
                WeightedPoint::new(x, 1.0 + 0.5 * x + noise, 1.0)
            })
            .collect();
        let fit = LinearFit::fit(&pts).unwrap();
        assert!((fit.slope - 0.5).abs() < 0.01);
        assert!((fit.intercept - 1.0).abs() < 0.1);
    }
}
