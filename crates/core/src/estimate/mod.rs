//! Estimation toolkit (paper §IV).
//!
//! Rotary's arbitration decisions rest on two families of estimates:
//!
//! 1. **Progress estimation** — how much attainment progress a job would
//!    make if granted resources for another epoch. Both Rotary-AQP and
//!    Rotary-DLT fit a curve through *historical* observations (from top-k
//!    similar completed jobs) and *real-time* observations (from the running
//!    job itself) using [weighted linear regression](wlr), with the paper's
//!    distinctive weighting: each real-time point and the combination of all
//!    historical points share equal weight ([`joint`]).
//! 2. **Resource estimation** — memory consumption, via table/column
//!    statistics (AQP, implemented in `rotary-engine`) or a
//!    batch-size→memory curve over similar historical jobs (DLT's TME,
//!    which uses [`similarity`] weighting).
//!
//! Rotary-AQP additionally uses a non-parametric [envelope](envelope)
//! detector over a sliding window of aggregation results to decide
//! convergence — which "can make mistakes" and produce the false attainment
//! of Fig. 7a.

pub mod envelope;
pub mod joint;
pub mod similarity;
pub mod wlr;

pub use envelope::EnvelopeDetector;
pub use joint::{CurveBasis, JointCurveEstimator};
pub use similarity::{scalar_similarity, top_k_by};
pub use wlr::{LinearFit, WeightedPoint};
