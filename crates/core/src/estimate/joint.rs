//! Joint historical + real-time curve fitting (paper §IV-A and §IV-B).
//!
//! Both Rotary-AQP's accuracy-progress estimator and Rotary-DLT's training
//! epoch estimator (TEE) fit a curve through two data sources:
//!
//! * **historical** points, extracted from the top-k most similar completed
//!   jobs in the repository — these bootstrap the first estimate (avoiding
//!   the cold-start problem the paper criticises ReLAQS for);
//! * **real-time** points recorded from the running job itself.
//!
//! The paper's weighting rule: *"each recorded real-time result and the
//! combination of all the historical data will share equal weight"* — with
//! `r` real-time points, each real-time point gets weight `1/(r+1)` and the
//! historical points share the remaining `1/(r+1)` equally. With zero
//! real-time points the historical data carries everything.
//!
//! Progress curves exhibit diminishing returns (Fig. 1), so a straight line
//! in `(x, y)` space is a poor model. The estimator therefore fits the line
//! in a transformed basis chosen by the caller: `y = a + b·ln(1+x)` captures
//! the concave saturating shape while remaining a *weighted linear
//! regression* exactly as the paper prescribes.

use super::wlr::{LinearFit, WeightedPoint, WlrStats};
use crate::error::Result;

/// The x-axis transformation under the linear fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CurveBasis {
    /// `y = a + b·x` — plain line (used for batch-size→memory, which is
    /// genuinely affine: activations scale linearly with batch size on top
    /// of a fixed parameter footprint).
    Linear,
    /// `y = a + b·ln(1+x)` — concave saturating curve (progress-vs-runtime,
    /// accuracy-vs-epoch).
    #[default]
    LogShifted,
}

impl CurveBasis {
    /// Applies the basis transform to a raw x value.
    pub fn transform(self, x: f64) -> f64 {
        match self {
            CurveBasis::Linear => x,
            CurveBasis::LogShifted => (1.0 + x.max(0.0)).ln(),
        }
    }

    /// Inverts the basis transform.
    pub fn invert(self, t: f64) -> f64 {
        match self {
            CurveBasis::Linear => t,
            CurveBasis::LogShifted => t.exp() - 1.0,
        }
    }
}

/// Fits `y = f(x)` through historical and real-time observations with the
/// paper's equal-share weighting.
///
/// The fit is maintained *incrementally*: the equal-share weights (each of
/// `r` real-time points at `1/(r+1)`, the historical block sharing the last
/// `1/(r+1)`) are globally proportional to the fixed per-point weights
/// "historical `1/h` each, real-time `1` each" — and a weighted
/// least-squares line is invariant under scaling every weight by the same
/// factor. So the estimator folds each point into [`WlrStats`] once, at
/// construction or [`observe`](Self::observe) time, and [`fit`](Self::fit)
/// solves from the accumulated moments in O(1) instead of re-reading all
/// `h + r` points. [`fit_dense`](Self::fit_dense) keeps the original
/// full-pass solve as the oracle the property suite compares against.
#[derive(Debug, Clone)]
pub struct JointCurveEstimator {
    basis: CurveBasis,
    historical: Vec<(f64, f64)>,
    realtime: Vec<(f64, f64)>,
    stats: WlrStats,
}

impl JointCurveEstimator {
    /// Creates an estimator with the given basis and historical points
    /// (possibly empty — the estimator then needs ≥ 2 real-time points
    /// before it can predict).
    pub fn new(basis: CurveBasis, mut historical: Vec<(f64, f64)>) -> Self {
        // Repositories populated under fault injection may carry poisoned
        // entries; a single NaN here would make every later fit unusable.
        historical.retain(|&(x, y)| x.is_finite() && y.is_finite());
        let mut stats = WlrStats::new();
        if !historical.is_empty() {
            let each = 1.0 / historical.len() as f64;
            for &(x, y) in &historical {
                // Finite by the retain above, positive finite weight: add
                // cannot fail.
                let _ = stats.add(basis.transform(x), y, each);
            }
        }
        JointCurveEstimator { basis, historical, realtime: Vec::new(), stats }
    }

    /// Records a real-time observation from the running job.
    ///
    /// Non-finite observations (a crashed epoch reporting NaN progress, an
    /// overflowed runtime) are dropped rather than stored: one poisoned point
    /// would otherwise turn every subsequent fit into NaN. The remaining
    /// points simply re-share the weight — skip-and-reweight, never panic.
    pub fn observe(&mut self, x: f64, y: f64) {
        if !(x.is_finite() && y.is_finite()) {
            return;
        }
        self.realtime.push((x, y));
        // Finite by the guard above: add cannot fail.
        let _ = self.stats.add(self.basis.transform(x), y, 1.0);
    }

    /// Number of real-time observations recorded so far.
    pub fn realtime_len(&self) -> usize {
        self.realtime.len()
    }

    /// The basis the estimator fits in. Captured by durable snapshots.
    pub fn basis(&self) -> CurveBasis {
        self.basis
    }

    /// The historical points backing the estimator, post-filtering. Captured
    /// by durable snapshots so a restored estimator fits identical curves.
    pub fn historical_points(&self) -> &[(f64, f64)] {
        &self.historical
    }

    /// The real-time observations recorded so far, in observation order.
    /// Captured by durable snapshots.
    pub fn realtime_points(&self) -> &[(f64, f64)] {
        &self.realtime
    }

    /// Number of historical points backing the estimator.
    pub fn historical_len(&self) -> usize {
        self.historical.len()
    }

    /// The weight granted to *each* real-time point (and to the historical
    /// combination as a whole): `1/(r+1)` for `r` real-time points, or 1.0
    /// when only historical data exists.
    pub fn realtime_weight(&self) -> f64 {
        1.0 / (self.realtime.len() as f64 + 1.0)
    }

    /// Assembles the weighted point set in the transformed basis.
    fn weighted_points(&self) -> Vec<WeightedPoint> {
        let r = self.realtime.len();
        let h = self.historical.len();
        let mut points = Vec::with_capacity(r + h);
        if h > 0 {
            // The historical *combination* gets one share, split equally.
            let share = if r == 0 { 1.0 } else { 1.0 / (r as f64 + 1.0) };
            let each = share / h as f64;
            points.extend(
                self.historical
                    .iter()
                    .map(|&(x, y)| WeightedPoint::new(self.basis.transform(x), y, each)),
            );
        }
        if r > 0 {
            let each = if h == 0 { 1.0 } else { 1.0 / (r as f64 + 1.0) };
            points.extend(
                self.realtime
                    .iter()
                    .map(|&(x, y)| WeightedPoint::new(self.basis.transform(x), y, each)),
            );
        }
        points
    }

    /// Fits the current curve. Errors when fewer than two usable points
    /// exist (distinct x after transformation).
    ///
    /// O(1): solves from the incrementally maintained moments rather than
    /// re-reading the point set. Numerically this is the raw-moment solve of
    /// the same weighted least-squares problem as [`fit_dense`](Self::fit_dense)
    /// (up to the global weight scale, which cancels), so the two agree to
    /// fitting precision but not bit-for-bit.
    pub fn fit(&self) -> Result<FittedCurve> {
        let fit = self.stats.fit()?;
        Ok(FittedCurve { basis: self.basis, fit })
    }

    /// The original full-pass fit over the materialized equal-share point
    /// set. Kept as the oracle for the control-plane property suite; the
    /// production path is the O(1) [`fit`](Self::fit).
    pub fn fit_dense(&self) -> Result<FittedCurve> {
        let fit = LinearFit::fit(&self.weighted_points())?;
        Ok(FittedCurve { basis: self.basis, fit })
    }

    /// Predicts `ŷ` at raw `x` (fitting on demand).
    pub fn predict(&self, x: f64) -> Result<f64> {
        Ok(self.fit()?.predict(x))
    }

    /// Solves for the raw `x` at which the curve reaches `y` (e.g. "how many
    /// epochs until accuracy 0.9"). `Err` when no data; `Ok(None)` when the
    /// curve is flat or moving away from the target — the paper's erroneous-
    /// estimation scenario (Fig. 11b) emerges naturally from this path.
    pub fn solve_for_x(&self, y: f64) -> Result<Option<f64>> {
        let curve = self.fit()?;
        Ok(curve.solve_for_x(y))
    }
}

/// An immutable fitted curve: the basis plus the line in transformed space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedCurve {
    basis: CurveBasis,
    fit: LinearFit,
}

impl FittedCurve {
    /// Predicts `ŷ` at raw `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.fit.predict(self.basis.transform(x))
    }

    /// Inverse prediction in raw x space; `None` if the line is flat or the
    /// solution is negative (target already passed / unreachable).
    pub fn solve_for_x(&self, y: f64) -> Option<f64> {
        let t = self.fit.solve_for_x(y)?;
        let x = self.basis.invert(t);
        (x.is_finite() && x >= 0.0).then_some(x)
    }

    /// Slope in transformed space: positive means the metric still improves.
    pub fn slope(&self) -> f64 {
        self.fit.slope
    }
}

/// Convenience: builds an estimator whose historical points come from several
/// completed jobs' curves concatenated together (the paper treats "the
/// combination of all the historical data" as one pool).
pub fn pool_historical_curves(curves: &[Vec<(f64, f64)>]) -> Vec<(f64, f64)> {
    curves.iter().flatten().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ground truth: y = 0.2 + 0.15·ln(1+x).
    fn truth(x: f64) -> f64 {
        0.2 + 0.15 * (1.0 + x).ln()
    }

    fn historical() -> Vec<(f64, f64)> {
        (0..20).map(|i| (i as f64 * 10.0, truth(i as f64 * 10.0))).collect()
    }

    #[test]
    fn historical_only_prediction() {
        let est = JointCurveEstimator::new(CurveBasis::LogShifted, historical());
        let y = est.predict(50.0).unwrap();
        assert!((y - truth(50.0)).abs() < 1e-9, "got {y}, want {}", truth(50.0));
    }

    #[test]
    fn equal_share_weighting_matches_paper_example() {
        // Paper: with one recorded real-time result, it gets 0.5 and the
        // historical data as a whole gets 0.5; with three, 0.25 each.
        let mut est = JointCurveEstimator::new(CurveBasis::LogShifted, historical());
        assert_eq!(est.realtime_weight(), 1.0);
        est.observe(5.0, truth(5.0));
        assert_eq!(est.realtime_weight(), 0.5);
        est.observe(10.0, truth(10.0));
        est.observe(15.0, truth(15.0));
        assert_eq!(est.realtime_weight(), 0.25);

        let pts = est.weighted_points();
        let hist_total: f64 = pts.iter().take(est.historical_len()).map(|p| p.weight).sum();
        let rt_weights: Vec<f64> =
            pts.iter().skip(est.historical_len()).map(|p| p.weight).collect();
        assert!((hist_total - 0.25).abs() < 1e-12);
        assert_eq!(rt_weights, vec![0.25, 0.25, 0.25]);
    }

    #[test]
    fn realtime_data_corrects_biased_history() {
        // History claims a much slower job (bias), real-time tells the truth.
        let biased: Vec<(f64, f64)> =
            (0..20).map(|i| (i as f64 * 10.0, truth(i as f64 * 10.0) * 0.5)).collect();
        let mut est = JointCurveEstimator::new(CurveBasis::LogShifted, biased);
        let before = est.predict(100.0).unwrap();
        for i in 1..=8 {
            let x = i as f64 * 10.0;
            est.observe(x, truth(x));
        }
        let after = est.predict(100.0).unwrap();
        let target = truth(100.0);
        assert!(
            (after - target).abs() < (before - target).abs() / 2.0,
            "real-time data should pull the estimate toward truth: before={before}, after={after}, truth={target}"
        );
    }

    #[test]
    fn realtime_only_needs_two_points() {
        let mut est = JointCurveEstimator::new(CurveBasis::LogShifted, Vec::new());
        assert!(est.predict(10.0).is_err());
        est.observe(1.0, truth(1.0));
        assert!(est.predict(10.0).is_err());
        est.observe(4.0, truth(4.0));
        assert!(est.predict(10.0).is_ok());
    }

    #[test]
    fn solve_for_x_inverts_prediction() {
        let est = JointCurveEstimator::new(CurveBasis::LogShifted, historical());
        let target = truth(42.0);
        let x = est.solve_for_x(target).unwrap().unwrap();
        assert!((x - 42.0).abs() < 1e-6, "got {x}");
    }

    #[test]
    fn flat_curve_yields_no_solution() {
        let flat: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 0.5)).collect();
        let est = JointCurveEstimator::new(CurveBasis::LogShifted, flat);
        assert_eq!(est.solve_for_x(0.9).unwrap(), None);
    }

    #[test]
    fn linear_basis_is_identity() {
        assert_eq!(CurveBasis::Linear.transform(7.0), 7.0);
        assert_eq!(CurveBasis::Linear.invert(7.0), 7.0);
        let t = CurveBasis::LogShifted.transform(9.0);
        assert!((CurveBasis::LogShifted.invert(t) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn poisoned_observations_are_skipped_and_reweighted() {
        let mut est = JointCurveEstimator::new(CurveBasis::LogShifted, historical());
        est.observe(5.0, truth(5.0));
        est.observe(f64::NAN, 0.9); // crashed epoch reporting garbage
        est.observe(10.0, f64::INFINITY);
        est.observe(10.0, truth(10.0));
        assert_eq!(est.realtime_len(), 2, "poisoned points never enter the set");
        // Weights re-share over the two surviving points: 1/(2+1) each.
        assert!((est.realtime_weight() - 1.0 / 3.0).abs() < 1e-12);
        let y = est.predict(50.0).unwrap();
        assert!(y.is_finite());
        assert!((y - truth(50.0)).abs() < 0.05, "fit stays sane: got {y}");
    }

    #[test]
    fn poisoned_history_is_filtered_at_construction() {
        let mut hist = historical();
        hist.push((f64::NAN, 0.5));
        hist.push((30.0, f64::NEG_INFINITY));
        let est = JointCurveEstimator::new(CurveBasis::LogShifted, hist);
        assert_eq!(est.historical_len(), 20);
        assert!(est.predict(50.0).unwrap().is_finite());
    }

    #[test]
    fn incremental_fit_matches_dense_oracle() {
        let mut est = JointCurveEstimator::new(CurveBasis::LogShifted, historical());
        for i in 1..=6 {
            let x = i as f64 * 7.0;
            est.observe(x, truth(x) + if i % 2 == 0 { 0.01 } else { -0.01 });
        }
        let inc = est.fit().unwrap();
        let dense = est.fit_dense().unwrap();
        assert!((inc.slope() - dense.slope()).abs() < 1e-9);
        assert!((inc.predict(33.0) - dense.predict(33.0)).abs() < 1e-9);
        // Replaying the same points through a fresh estimator performs the
        // identical fold, so an incremental fit is bit-identical to a full
        // re-fit — the invariant durable snapshot restore relies on.
        let mut rebuilt = JointCurveEstimator::new(CurveBasis::LogShifted, historical());
        for &(x, y) in est.realtime_points() {
            rebuilt.observe(x, y);
        }
        let re = rebuilt.fit().unwrap();
        assert_eq!(re.predict(33.0).to_bits(), inc.predict(33.0).to_bits());
        assert_eq!(re.slope().to_bits(), inc.slope().to_bits());
    }

    #[test]
    fn pooling_concatenates() {
        let pooled = pool_historical_curves(&[vec![(0.0, 0.1), (1.0, 0.2)], vec![(0.0, 0.15)]]);
        assert_eq!(pooled.len(), 3);
    }
}
