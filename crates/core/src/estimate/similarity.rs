//! Similarity-based top-k historical job selection (paper §IV-A and §IV-B).
//!
//! Rotary selects the top-k historical jobs most similar to the target job
//! before fitting estimation curves. Rotary-DLT's training memory estimator
//! defines `similarity(x, y) = 1 − |x − y| / max(x, y)` on model parameter
//! counts; Rotary-AQP compares query features (predicates, tables, columns,
//! batch size) — callers provide their own scoring function to [`top_k_by`]
//! and can reuse [`scalar_similarity`] for numeric features.

/// The paper's scalar similarity: `1 − |x − y| / max(x, y)`, in `[0, 1]`.
///
/// Both inputs must be positive for the formula to be meaningful; when either
/// is non-positive the function returns 1.0 if they are equal and 0.0
/// otherwise (a zero-parameter "model" is only like another zero-parameter
/// model).
pub fn scalar_similarity(x: f64, y: f64) -> f64 {
    if x <= 0.0 || y <= 0.0 {
        return if x == y { 1.0 } else { 0.0 };
    }
    1.0 - (x - y).abs() / x.max(y)
}

/// Selects the `k` items with the highest similarity score, in descending
/// score order. Ties preserve the input order (stable), making selection
/// deterministic. Items with non-finite scores are skipped.
pub fn top_k_by<T, F>(items: &[T], k: usize, mut score: F) -> Vec<(&T, f64)>
where
    F: FnMut(&T) -> f64,
{
    let mut scored: Vec<(usize, &T, f64)> = items
        .iter()
        .enumerate()
        .filter_map(|(i, item)| {
            let s = score(item);
            s.is_finite().then_some((i, item, s))
        })
        .collect();
    // Stable by construction: sort by (score desc, original index asc).
    scored.sort_by_key(|&(i, _, s)| (std::cmp::Reverse(crate::arb::OrdF64::new(s)), i));
    scored.into_iter().take(k).map(|(_, item, s)| (item, s)).collect()
}

/// Jaccard similarity of two string sets — used by the AQP estimator to
/// compare query features such as referenced tables and columns.
pub fn jaccard<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let set_a: std::collections::BTreeSet<&str> = a.iter().map(|s| s.as_ref()).collect();
    let set_b: std::collections::BTreeSet<&str> = b.iter().map(|s| s.as_ref()).collect();
    let inter = set_a.intersection(&set_b).count();
    let union = set_a.union(&set_b).count();
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_similarity_matches_paper_formula() {
        assert_eq!(scalar_similarity(10.0, 10.0), 1.0);
        // |25−20|/25 = 0.2 → similarity 0.8
        assert!((scalar_similarity(25.0, 20.0) - 0.8).abs() < 1e-12);
        assert!((scalar_similarity(20.0, 25.0) - 0.8).abs() < 1e-12);
        // Very different sizes → near zero.
        assert!(scalar_similarity(1.0, 1000.0) < 0.01);
    }

    #[test]
    fn scalar_similarity_degenerate_inputs() {
        assert_eq!(scalar_similarity(0.0, 0.0), 1.0);
        assert_eq!(scalar_similarity(0.0, 5.0), 0.0);
        assert_eq!(scalar_similarity(-3.0, 5.0), 0.0);
    }

    #[test]
    fn top_k_orders_and_truncates() {
        let params = [11.0_f64, 25.0, 9.5, 100.0, 10.5];
        let target = 10.0;
        let top = top_k_by(&params, 3, |&p| scalar_similarity(target, p));
        let picked: Vec<f64> = top.iter().map(|(p, _)| **p).collect();
        assert_eq!(picked, vec![10.5, 9.5, 11.0]);
        assert!(top[0].1 > top[1].1 && top[1].1 >= top[2].1);
    }

    #[test]
    fn top_k_with_k_larger_than_items() {
        let items = [1.0_f64, 2.0];
        assert_eq!(top_k_by(&items, 10, |&x| x).len(), 2);
        let empty: [f64; 0] = [];
        assert!(top_k_by(&empty, 3, |&x| x).is_empty());
    }

    #[test]
    fn top_k_skips_nan_scores() {
        let items = [1.0_f64, 2.0, 3.0];
        let top = top_k_by(&items, 3, |&x| if x == 2.0 { f64::NAN } else { x });
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn top_k_ties_are_stable() {
        let items = ["a", "b", "c"];
        let top = top_k_by(&items, 2, |_| 0.5);
        assert_eq!(*top[0].0, "a");
        assert_eq!(*top[1].0, "b");
    }

    #[test]
    fn jaccard_similarity() {
        assert_eq!(jaccard(&["lineitem"], &["lineitem"]), 1.0);
        assert_eq!(jaccard::<&str>(&[], &[]), 1.0);
        assert_eq!(jaccard(&["a"], &["b"]), 0.0);
        // {a,b} ∩ {b,c} = {b}; union = {a,b,c}.
        assert!((jaccard(&["a", "b"], &["b", "c"]) - 1.0 / 3.0).abs() < 1e-12);
        // Duplicates collapse.
        assert_eq!(jaccard(&["a", "a"], &["a"]), 1.0);
    }
}
