//! Non-parametric envelope convergence detector (paper §IV-A).
//!
//! Rotary-AQP "keeps tracking the least and largest aggregation results
//! within a time window (e.g., t epochs) and uses this gap to determine
//! convergence". With `p` the least and `q` the largest aggregate in the
//! window, the accuracy progress is approximated by `p/q`; the gap shrinks as
//! the aggregate converges, and the job is declared converged once
//! `1 − p/q` drops below a tolerance.
//!
//! The detector *can make mistakes* — a temporarily flat aggregate (e.g. a
//! run of batches that barely touch the query's selective predicate) looks
//! converged even though later batches would still move the result. The
//! paper measures exactly these mistakes as **false attainment** (Fig. 7a)
//! and notes they can be mitigated by lengthening the window.

use std::collections::VecDeque;

/// Sliding-window min/max envelope over a stream of aggregation results.
#[derive(Debug, Clone)]
pub struct EnvelopeDetector {
    window: usize,
    tolerance: f64,
    values: VecDeque<f64>,
}

impl EnvelopeDetector {
    /// Creates a detector over a window of `window` epochs declaring
    /// convergence when the relative gap `1 − p/q` falls to or below
    /// `tolerance`.
    ///
    /// # Panics
    /// Panics if `window == 0` or `tolerance` is negative/non-finite; these
    /// are static configuration errors, not runtime conditions.
    pub fn new(window: usize, tolerance: f64) -> Self {
        assert!(window > 0, "envelope window must be positive");
        assert!(
            tolerance.is_finite() && tolerance >= 0.0,
            "envelope tolerance must be a finite non-negative number"
        );
        EnvelopeDetector { window, tolerance, values: VecDeque::with_capacity(window + 1) }
    }

    /// Records the aggregate observed at the end of an epoch.
    /// Non-finite values are ignored (a failed batch produces no evidence).
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.values.push_back(value);
        while self.values.len() > self.window {
            self.values.pop_front();
        }
    }

    /// The least aggregate `p` currently in the window.
    pub fn least(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |m, v| Some(m.map_or(v, |m: f64| m.min(v))))
    }

    /// The largest aggregate `q` currently in the window.
    pub fn largest(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }

    /// Envelope progress `p/q ∈ [0, 1]`, the paper's approximate estimate of
    /// aggregation accuracy. `None` until at least one observation exists;
    /// a window straddling zero or of mixed sign yields 0 (no convergence
    /// evidence).
    pub fn progress(&self) -> Option<f64> {
        let p = self.least()?;
        let q = self.largest()?;
        if q == 0.0 && p == 0.0 {
            // Aggregate is identically zero: fully converged.
            return Some(1.0);
        }
        if p.signum() != q.signum() {
            return Some(0.0);
        }
        // For negative aggregates (-5 .. -4), p/q > 1; use |smaller|/|larger|.
        let (lo, hi) = (p.abs().min(q.abs()), p.abs().max(q.abs()));
        if hi == 0.0 {
            Some(1.0)
        } else {
            Some((lo / hi).clamp(0.0, 1.0))
        }
    }

    /// Whether the detector currently declares convergence: the window is
    /// full *and* the relative gap is within tolerance. Requiring a full
    /// window prevents declaring convergence off a single observation.
    pub fn is_converged(&self) -> bool {
        if self.values.len() < self.window {
            return false;
        }
        match self.progress() {
            Some(p) => 1.0 - p <= self.tolerance,
            None => false,
        }
    }

    /// Number of observations currently in the window.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no observation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The configured window length in epochs.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The observations currently in the window, oldest first. Captured by
    /// durable snapshots; re-observing these into a fresh detector of the
    /// same window reproduces the state exactly.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }

    /// Clears all observations (used when a checkpointed job resumes with a
    /// fresh sampling order).
    pub fn reset(&mut self) {
        self.values.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_detector_reports_nothing() {
        let d = EnvelopeDetector::new(3, 0.01);
        assert!(d.is_empty());
        assert_eq!(d.progress(), None);
        assert!(!d.is_converged());
    }

    #[test]
    fn window_slides() {
        let mut d = EnvelopeDetector::new(3, 0.01);
        for v in [10.0, 20.0, 30.0, 40.0] {
            d.observe(v);
        }
        assert_eq!(d.len(), 3);
        assert_eq!(d.least(), Some(20.0));
        assert_eq!(d.largest(), Some(40.0));
    }

    #[test]
    fn progress_is_p_over_q() {
        let mut d = EnvelopeDetector::new(4, 0.01);
        d.observe(90.0);
        d.observe(100.0);
        assert!((d.progress().unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn converges_when_gap_shrinks() {
        let mut d = EnvelopeDetector::new(3, 0.01);
        d.observe(50.0);
        d.observe(80.0);
        d.observe(100.0);
        assert!(!d.is_converged());
        // The aggregate settles near 100.
        for v in [99.5, 99.8, 100.0] {
            d.observe(v);
        }
        assert!(d.is_converged());
    }

    #[test]
    fn does_not_converge_on_partial_window() {
        let mut d = EnvelopeDetector::new(5, 0.01);
        d.observe(100.0);
        d.observe(100.0);
        // Gap is zero but the window is not full yet.
        assert!(!d.is_converged());
    }

    #[test]
    fn false_attainment_scenario() {
        // A flat stretch inside a short window triggers convergence even
        // though the true aggregate later moves: the paper's Fig. 7a mistake.
        let mut short = EnvelopeDetector::new(2, 0.01);
        short.observe(50.0);
        short.observe(50.1);
        assert!(short.is_converged(), "short window is fooled by a plateau");

        // A longer window sees the earlier variation and is not fooled —
        // "this issue can be mitigated by lengthening the time window".
        let mut long = EnvelopeDetector::new(4, 0.01);
        long.observe(30.0);
        long.observe(42.0);
        long.observe(50.0);
        long.observe(50.1);
        assert!(!long.is_converged());
    }

    #[test]
    fn negative_aggregates_are_handled() {
        let mut d = EnvelopeDetector::new(2, 0.05);
        d.observe(-100.0);
        d.observe(-98.0);
        let p = d.progress().unwrap();
        assert!((p - 0.98).abs() < 1e-12);
        assert!(d.is_converged());
    }

    #[test]
    fn mixed_sign_window_is_zero_progress() {
        let mut d = EnvelopeDetector::new(2, 0.05);
        d.observe(-10.0);
        d.observe(10.0);
        assert_eq!(d.progress(), Some(0.0));
        assert!(!d.is_converged());
    }

    #[test]
    fn zero_aggregate_is_converged() {
        let mut d = EnvelopeDetector::new(2, 0.0);
        d.observe(0.0);
        d.observe(0.0);
        assert_eq!(d.progress(), Some(1.0));
        assert!(d.is_converged());
    }

    #[test]
    fn non_finite_observations_ignored() {
        let mut d = EnvelopeDetector::new(3, 0.01);
        d.observe(f64::NAN);
        d.observe(f64::INFINITY);
        assert!(d.is_empty());
        d.observe(5.0);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn reset_clears_state() {
        let mut d = EnvelopeDetector::new(2, 0.01);
        d.observe(1.0);
        d.observe(1.0);
        assert!(d.is_converged());
        d.reset();
        assert!(d.is_empty());
        assert!(!d.is_converged());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = EnvelopeDetector::new(0, 0.01);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn negative_tolerance_panics() {
        let _ = EnvelopeDetector::new(2, -0.5);
    }
}
