//! User-defined completion criteria (paper §III-B).
//!
//! Rotary attaches a *completion criterion* to every progressive iterative
//! analytic job. The paper defines three templates (Fig. 3):
//!
//! * **accuracy-oriented** — `<metric> MIN <threshold> WITHIN <deadline>`:
//!   the job completes once the metric reaches the threshold; it is
//!   terminated (unattained) at the deadline;
//! * **convergence-oriented** — `<metric> DELTA <delta> WITHIN <deadline>`:
//!   the job completes once the metric's epoch-over-epoch improvement falls
//!   below `delta`; terminated at the deadline if it never converges;
//! * **runtime-oriented** — `FOR <runtime>`: run for a fixed number of
//!   epochs or a fixed virtual time and return whatever has been computed.
//!
//! Deadlines and runtimes can be expressed in *epochs* or in *time units*
//! (seconds / minutes / hours of virtual time).

use crate::job::IntermediateState;
use crate::time::SimTime;
use std::fmt;

/// The convergence metric a criterion is defined over.
///
/// The paper's examples use training/aggregation accuracy (`ACC`) but allow
/// "other user-defined metrics, such as F1 score and Perplexity".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Accuracy in `[0, 1]`; higher is better.
    Accuracy,
    /// Training/validation loss; lower is better.
    Loss,
    /// F1 score in `[0, 1]`; higher is better.
    F1,
    /// Language-model perplexity; lower is better.
    Perplexity,
    /// Any other user-defined metric name; assumed higher-is-better.
    Custom(String),
}

impl Metric {
    /// Whether larger metric values mean better results.
    pub fn higher_is_better(&self) -> bool {
        !matches!(self, Metric::Loss | Metric::Perplexity)
    }

    /// The DSL keyword for this metric.
    pub fn keyword(&self) -> &str {
        match self {
            Metric::Accuracy => "ACC",
            Metric::Loss => "LOSS",
            Metric::F1 => "F1",
            Metric::Perplexity => "PERPLEXITY",
            Metric::Custom(name) => name,
        }
    }

    /// Parses a DSL keyword (case-insensitive). Unknown names become
    /// [`Metric::Custom`].
    pub fn from_keyword(word: &str) -> Metric {
        match word.to_ascii_uppercase().as_str() {
            "ACC" | "ACCURACY" => Metric::Accuracy,
            "LOSS" => Metric::Loss,
            "F1" => Metric::F1,
            "PERPLEXITY" | "PPL" => Metric::Perplexity,
            _ => Metric::Custom(word.to_ascii_uppercase()),
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A deadline: either a number of epochs or a span of virtual time
/// (paper: "The deadline could be expressed in epochs or time units").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Deadline {
    /// At most this many epochs.
    Epochs(u64),
    /// At most this much virtual time since the job was submitted.
    Time(SimTime),
}

impl Deadline {
    /// True if a job at `epoch` / elapsed `time` has passed this deadline.
    pub fn is_past(&self, epoch: u64, elapsed: SimTime) -> bool {
        match *self {
            Deadline::Epochs(e) => epoch >= e,
            Deadline::Time(t) => elapsed >= t,
        }
    }

    /// The deadline expressed as epochs, if it is epoch-based.
    pub fn epochs(&self) -> Option<u64> {
        match *self {
            Deadline::Epochs(e) => Some(e),
            Deadline::Time(_) => None,
        }
    }

    /// The deadline expressed as time, if it is time-based.
    pub fn time(&self) -> Option<SimTime> {
        match *self {
            Deadline::Time(t) => Some(t),
            Deadline::Epochs(_) => None,
        }
    }
}

impl fmt::Display for Deadline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Deadline::Epochs(e) => write!(f, "{e} EPOCHS"),
            Deadline::Time(t) => {
                let ms = t.as_millis();
                if ms % 3_600_000 == 0 && ms > 0 {
                    write!(f, "{} HOURS", ms / 3_600_000)
                } else if ms % 60_000 == 0 && ms > 0 {
                    write!(f, "{} MINUTES", ms / 60_000)
                } else {
                    write!(f, "{} SECONDS", ms / 1000)
                }
            }
        }
    }
}

/// A user-defined completion criterion (paper Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub enum CompletionCriterion {
    /// `<metric> MIN <threshold> WITHIN <deadline>`.
    Accuracy {
        /// Metric the threshold applies to.
        metric: Metric,
        /// Target value; e.g. `0.95` for `ACC MIN 95%`. For lower-is-better
        /// metrics this is a *maximum* — the job completes once the metric
        /// drops to or below the threshold.
        threshold: f64,
        /// Hard stop: the job is dequeued unattained once past this.
        deadline: Deadline,
    },
    /// `<metric> DELTA <delta> WITHIN <deadline>`.
    Convergence {
        /// Metric whose epoch-over-epoch change is monitored.
        metric: Metric,
        /// The job is complete once `|metric_t − metric_{t−1}| ≤ delta`.
        delta: f64,
        /// Hard stop if convergence never happens.
        deadline: Deadline,
    },
    /// `FOR <runtime>` — run for a fixed budget, no quality target.
    Runtime {
        /// The fixed budget, in epochs or virtual time.
        runtime: Deadline,
    },
}

/// The verdict of checking a criterion against a job's latest state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CriterionCheck {
    /// Keep running: neither attained nor out of budget.
    Continue,
    /// The criterion's goal has been met (counts toward the attainment
    /// rate ψ). For runtime criteria, finishing the budget *is* the goal.
    Attained,
    /// The deadline passed without the goal being met.
    DeadlineMissed,
}

impl CompletionCriterion {
    /// Evaluates the criterion against the two most recent intermediate
    /// states of a job. `prev` is `None` on the first epoch.
    ///
    /// `elapsed` is virtual time since the job was *submitted* (waiting time
    /// counts against the deadline, exactly as in the paper's evaluation
    /// where deferred jobs can miss deadlines while queued).
    pub fn check(
        &self,
        current: &IntermediateState,
        prev: Option<&IntermediateState>,
        elapsed: SimTime,
    ) -> CriterionCheck {
        match self {
            CompletionCriterion::Accuracy { metric, threshold, deadline } => {
                let hit = if metric.higher_is_better() {
                    current.metric_value >= *threshold
                } else {
                    current.metric_value <= *threshold
                };
                if hit {
                    CriterionCheck::Attained
                } else if deadline.is_past(current.epoch, elapsed) {
                    CriterionCheck::DeadlineMissed
                } else {
                    CriterionCheck::Continue
                }
            }
            CompletionCriterion::Convergence { delta, deadline, .. } => {
                let converged = prev
                    .map(|p| (current.metric_value - p.metric_value).abs() <= *delta)
                    .unwrap_or(false);
                if converged {
                    CriterionCheck::Attained
                } else if deadline.is_past(current.epoch, elapsed) {
                    CriterionCheck::DeadlineMissed
                } else {
                    CriterionCheck::Continue
                }
            }
            CompletionCriterion::Runtime { runtime } => {
                if runtime.is_past(current.epoch, elapsed) {
                    CriterionCheck::Attained
                } else {
                    CriterionCheck::Continue
                }
            }
        }
    }

    /// The criterion's deadline (for runtime criteria, the budget itself).
    pub fn deadline(&self) -> Deadline {
        match self {
            CompletionCriterion::Accuracy { deadline, .. }
            | CompletionCriterion::Convergence { deadline, .. } => *deadline,
            CompletionCriterion::Runtime { runtime } => *runtime,
        }
    }

    /// The metric this criterion observes, if any.
    pub fn metric(&self) -> Option<&Metric> {
        match self {
            CompletionCriterion::Accuracy { metric, .. }
            | CompletionCriterion::Convergence { metric, .. } => Some(metric),
            CompletionCriterion::Runtime { .. } => None,
        }
    }

    /// Short tag used in workload summaries: `acc` / `conv` / `runtime`.
    pub fn kind_tag(&self) -> &'static str {
        match self {
            CompletionCriterion::Accuracy { .. } => "acc",
            CompletionCriterion::Convergence { .. } => "conv",
            CompletionCriterion::Runtime { .. } => "runtime",
        }
    }
}

impl fmt::Display for CompletionCriterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompletionCriterion::Accuracy { metric, threshold, deadline } => {
                // Thresholds in [0,1] for ratio metrics print as percentages,
                // matching the paper's examples (`ACC MIN 95%`).
                if matches!(metric, Metric::Accuracy | Metric::F1) {
                    write!(f, "{metric} MIN {}% WITHIN {deadline}", threshold * 100.0)
                } else {
                    write!(f, "{metric} MIN {threshold} WITHIN {deadline}")
                }
            }
            CompletionCriterion::Convergence { metric, delta, deadline } => {
                write!(f, "{metric} DELTA {delta} WITHIN {deadline}")
            }
            CompletionCriterion::Runtime { runtime } => write!(f, "FOR {runtime}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(epoch: u64, v: f64) -> IntermediateState {
        IntermediateState {
            epoch,
            at: SimTime::from_secs(epoch * 10),
            metric_value: v,
            progress: 0.0,
        }
    }

    #[test]
    fn accuracy_criterion_attains_at_threshold() {
        let c = CompletionCriterion::Accuracy {
            metric: Metric::Accuracy,
            threshold: 0.9,
            deadline: Deadline::Time(SimTime::from_secs(3600)),
        };
        assert_eq!(c.check(&state(1, 0.5), None, SimTime::from_secs(10)), CriterionCheck::Continue);
        assert_eq!(c.check(&state(2, 0.9), None, SimTime::from_secs(20)), CriterionCheck::Attained);
        assert_eq!(
            c.check(&state(3, 0.95), None, SimTime::from_secs(30)),
            CriterionCheck::Attained
        );
    }

    #[test]
    fn accuracy_criterion_misses_deadline() {
        let c = CompletionCriterion::Accuracy {
            metric: Metric::Accuracy,
            threshold: 0.9,
            deadline: Deadline::Time(SimTime::from_secs(100)),
        };
        assert_eq!(
            c.check(&state(5, 0.7), None, SimTime::from_secs(100)),
            CriterionCheck::DeadlineMissed
        );
    }

    #[test]
    fn loss_threshold_is_a_maximum() {
        let c = CompletionCriterion::Accuracy {
            metric: Metric::Loss,
            threshold: 0.1,
            deadline: Deadline::Epochs(100),
        };
        assert_eq!(c.check(&state(1, 0.5), None, SimTime::ZERO), CriterionCheck::Continue);
        assert_eq!(c.check(&state(2, 0.05), None, SimTime::ZERO), CriterionCheck::Attained);
    }

    #[test]
    fn convergence_needs_two_states() {
        let c = CompletionCriterion::Convergence {
            metric: Metric::Accuracy,
            delta: 0.01,
            deadline: Deadline::Epochs(30),
        };
        // First epoch: no previous state, cannot be converged.
        assert_eq!(c.check(&state(1, 0.5), None, SimTime::ZERO), CriterionCheck::Continue);
        // Big jump: still improving.
        assert_eq!(
            c.check(&state(2, 0.8), Some(&state(1, 0.5)), SimTime::ZERO),
            CriterionCheck::Continue
        );
        // Tiny delta: converged.
        assert_eq!(
            c.check(&state(3, 0.805), Some(&state(2, 0.8)), SimTime::ZERO),
            CriterionCheck::Attained
        );
    }

    #[test]
    fn convergence_deadline_in_epochs() {
        let c = CompletionCriterion::Convergence {
            metric: Metric::Accuracy,
            delta: 0.0001,
            deadline: Deadline::Epochs(5),
        };
        assert_eq!(
            c.check(&state(5, 0.9), Some(&state(4, 0.5)), SimTime::ZERO),
            CriterionCheck::DeadlineMissed
        );
    }

    #[test]
    fn runtime_criterion_attains_on_budget_exhaustion() {
        let c = CompletionCriterion::Runtime { runtime: Deadline::Epochs(15) };
        assert_eq!(c.check(&state(14, 0.1), None, SimTime::ZERO), CriterionCheck::Continue);
        assert_eq!(c.check(&state(15, 0.1), None, SimTime::ZERO), CriterionCheck::Attained);

        let c = CompletionCriterion::Runtime { runtime: Deadline::Time(SimTime::from_hours(2)) };
        assert_eq!(c.check(&state(3, 0.1), None, SimTime::from_hours(1)), CriterionCheck::Continue);
        assert_eq!(c.check(&state(9, 0.1), None, SimTime::from_hours(2)), CriterionCheck::Attained);
    }

    #[test]
    fn display_matches_paper_examples() {
        let c = CompletionCriterion::Accuracy {
            metric: Metric::Accuracy,
            threshold: 0.95,
            deadline: Deadline::Time(SimTime::from_secs(3600)),
        };
        assert_eq!(c.to_string(), "ACC MIN 95% WITHIN 1 HOURS");

        let c = CompletionCriterion::Convergence {
            metric: Metric::Accuracy,
            delta: 0.001,
            deadline: Deadline::Epochs(30),
        };
        assert_eq!(c.to_string(), "ACC DELTA 0.001 WITHIN 30 EPOCHS");

        let c = CompletionCriterion::Runtime { runtime: Deadline::Time(SimTime::from_hours(2)) };
        assert_eq!(c.to_string(), "FOR 2 HOURS");
    }

    #[test]
    fn metric_keywords_round_trip() {
        for m in [Metric::Accuracy, Metric::Loss, Metric::F1, Metric::Perplexity] {
            assert_eq!(Metric::from_keyword(m.keyword()), m);
        }
        assert_eq!(Metric::from_keyword("bleu"), Metric::Custom("BLEU".into()));
    }

    #[test]
    fn deadline_predicates() {
        let d = Deadline::Epochs(10);
        assert!(!d.is_past(9, SimTime::MAX));
        assert!(d.is_past(10, SimTime::ZERO));
        assert_eq!(d.epochs(), Some(10));
        assert_eq!(d.time(), None);

        let d = Deadline::Time(SimTime::from_secs(60));
        assert!(!d.is_past(u64::MAX, SimTime::from_secs(59)));
        assert!(d.is_past(0, SimTime::from_secs(60)));
        assert_eq!(d.time(), Some(SimTime::from_secs(60)));
    }
}
