//! Resource descriptions (paper §III-D "Resources").
//!
//! Jobs are assigned to computing resources — "an available GPU or CPU
//! hardware thread". Resources "can only process one job at a time and are
//! not sub-dividable", and "a job holds on to a particular resource for at
//! least an epoch". Two concrete pool shapes appear in the paper:
//!
//! * Rotary-AQP: `D` CPU hardware threads plus a *shared* memory budget `M`
//!   (Algorithm 2 allocates threads per job and subtracts estimated memory
//!   from the common pool);
//! * Rotary-DLT: `D` GPUs, each with its *own* memory `M_d` (Algorithm 3
//!   places a job on GPU `d` only if its estimated memory fits that device).

/// CPU pool: `D` hardware threads sharing one memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuPoolSpec {
    /// Total hardware threads available to arbitration.
    pub threads: u32,
    /// Total memory, in megabytes, shared by all running jobs.
    pub memory_mb: u64,
}

impl CpuPoolSpec {
    /// The paper's AQP testbed: 20 physical cores of a 2×12-core Xeon box
    /// with 192 GB RAM ("we use 20 physical cores and leave the rest for
    /// the OS"); we budget 180 GB for jobs.
    pub fn paper_aqp_testbed() -> Self {
        CpuPoolSpec { threads: 20, memory_mb: 180 * 1024 }
    }
}

/// One GPU device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuDeviceSpec {
    /// Device memory, in megabytes.
    pub memory_mb: u64,
    /// Relative compute throughput (1.0 = the paper's RTX 2080); the pool
    /// "possibly heterogeneous" clause of §III-D is exercised by varying
    /// this.
    pub speed: f64,
}

/// GPU pool: independent devices, each with private memory.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuPoolSpec {
    /// The devices, indexed 0..D.
    pub devices: Vec<GpuDeviceSpec>,
}

impl GpuPoolSpec {
    /// A homogeneous pool of `count` devices with `memory_mb` each.
    pub fn homogeneous(count: usize, memory_mb: u64) -> Self {
        GpuPoolSpec { devices: vec![GpuDeviceSpec { memory_mb, speed: 1.0 }; count] }
    }

    /// The paper's DLT testbed: 4 × RTX 2080 with 8 GB graphics memory.
    pub fn paper_dlt_testbed() -> Self {
        Self::homogeneous(4, 8 * 1024)
    }

    /// Number of devices `D`.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the pool has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

/// A CPU-side grant: how many threads and how much of the shared memory a
/// job holds for the next running epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuGrant {
    /// Hardware threads granted (≥ 1 while running).
    pub threads: u32,
    /// Shared memory reserved, in megabytes.
    pub memory_mb: u64,
}

/// A GPU-side grant: which device the job occupies for the next epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuGrant {
    /// Index into the pool's device list.
    pub device: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbeds_match_evaluation_section() {
        let cpu = CpuPoolSpec::paper_aqp_testbed();
        assert_eq!(cpu.threads, 20);
        assert_eq!(cpu.memory_mb, 184_320);

        let gpu = GpuPoolSpec::paper_dlt_testbed();
        assert_eq!(gpu.len(), 4);
        assert!(gpu.devices.iter().all(|d| d.memory_mb == 8192 && d.speed == 1.0));
    }

    #[test]
    fn homogeneous_pool_construction() {
        let pool = GpuPoolSpec::homogeneous(2, 16 * 1024);
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
        assert!(GpuPoolSpec::homogeneous(0, 1).is_empty());
    }
}
