//! # Rotary-DLT: resource arbitration for deep learning training
//!
//! The paper's second prototype system (§IV-B): threshold-based GPU
//! arbitration over a multi-tenant training cluster, where every job
//! carries a convergence-, accuracy-, or runtime-oriented completion
//! criterion from the Table II survey workload.
//!
//! * [`models`] — the Table II model zoo (all 17 architectures, shrunk
//!   variants, published parameter counts) and hyperparameter spaces;
//! * [`simulator`] — the TensorFlow stand-in: saturating learning curves
//!   with hyperparameter-dependent peaks/rates, batch-affine GPU memory,
//!   per-step timing with CUDA warm-up;
//! * [`workload`] — the survey-based workload generator (60/20/20 criteria
//!   mix) and the Fig. 11 eight-job micro-benchmark;
//! * [`estimators`] — TEE (epochs-to-accuracy), TME (batch-size→memory),
//!   TTR (training-time recorder), plus the Table III overhead meter;
//! * [`system`] — Algorithms 3–4 (threshold-T arbitration, progress
//!   computation) and the SRF/BCF/LAF baselines.

#![warn(missing_docs)]

pub mod estimators;
pub mod hpo;
pub mod models;
pub mod parse;
pub mod simulator;
pub mod system;
pub mod workload;

pub use estimators::{build_tee, estimate_epochs_to_accuracy, OverheadMeter, Tme, Ttr};
pub use hpo::{hyperband, HpoOutcome, SuccessiveHalving, TrialResult};
pub use models::{Architecture, Dataset, Domain, Optimizer};
pub use parse::parse_train_statement;
pub use simulator::{TrainingConfig, TrainingSim};
pub use system::{DltPolicy, DltRunResult, DltServeRun, DltSystem, DltSystemConfig};
pub use workload::{fig11_microbenchmark, CriteriaMix, DltJobSpec, DltWorkloadBuilder};
