//! Rotary-DLT's estimator components (paper §IV-B):
//!
//! * **TEE** — the training epoch estimator: predicts the number of epochs
//!   a job needs to reach a target accuracy by fitting an accuracy–epoch
//!   curve through the top-k most similar historical jobs (same dataset,
//!   close hyperparameters) jointly with the job's own real-time
//!   observations, using the framework's equal-share weighted linear
//!   regression.
//! * **TME** — the training memory estimator: fits a batch-size→memory
//!   line over the historical jobs with the *same* dataset, weighted by
//!   `similarity(x, y) = 1 − |x − y| / max(x, y)` on parameter counts, and
//!   pads the prediction to avoid OOM.
//! * **TTR** — the training time recorder: records one step/epoch time per
//!   job and device, discarding the CUDA-warm-up-affected first step.
//!
//! Each component runs inside an [`OverheadMeter`] so the Table III
//! overhead measurements are real wall-clock costs of this code. The meter
//! itself never reads the wall clock: a [`ProbeClock`] is injected by the
//! measuring harness (`rotary_bench::timing::monotonic_probe`), and the
//! default meter is inert — the arbitration data plane stays free of
//! wall-clock reads (lint rule D002).

use std::collections::BTreeMap;
use std::time::Duration;

use rotary_core::estimate::similarity::scalar_similarity;
use rotary_core::estimate::wlr::{LinearFit, WeightedPoint};
use rotary_core::estimate::{CurveBasis, JointCurveEstimator};
use rotary_core::history::{HistoryRepository, JobRecord};
use rotary_core::job::{JobId, JobKind};
use rotary_core::SimTime;

use crate::simulator::TrainingConfig;

/// Feature keys a DLT job stores in the history repository.
pub mod feature_keys {
    /// Parameter count, millions.
    pub const PARAMS_M: &str = "params_m";
    /// Training batch size.
    pub const BATCH: &str = "batch_size";
    /// Learning rate.
    pub const LR: &str = "learning_rate";
    /// Peak GPU memory observed, MB.
    pub const MEMORY_MB: &str = "memory_mb";
    /// 1.0 when the job fine-tuned a pre-trained checkpoint.
    pub const PRETRAINED: &str = "pretrained";
}

/// Builds the repository record for a completed DLT job.
pub fn job_record(config: &TrainingConfig, curve: Vec<(f64, f64)>, epochs: u64) -> JobRecord {
    let p = config.arch.profile();
    let final_metric = curve.last().map(|&(_, a)| a).unwrap_or(0.0);
    JobRecord {
        kind: JobKind::Dlt,
        label: p.name.to_string(),
        tags: vec![
            format!("dataset:{}", config.arch.dataset().name()),
            format!("optimizer:{}", config.optimizer.name()),
        ],
        numeric_features: BTreeMap::from([
            (feature_keys::PARAMS_M.to_string(), p.params_m),
            (feature_keys::BATCH.to_string(), config.batch_size as f64),
            (feature_keys::LR.to_string(), config.learning_rate),
            (feature_keys::MEMORY_MB.to_string(), config.memory_mb() as f64),
            (feature_keys::PRETRAINED.to_string(), if config.pretrained { 1.0 } else { 0.0 }),
        ]),
        curve,
        final_metric,
        epochs,
    }
}

/// TEE similarity between a job and a historical record: dataset match is
/// required in spirit (strongly weighted), then optimizer, learning rate
/// (log scale), batch size, model size, and fine-tuning mode.
pub fn tee_similarity(config: &TrainingConfig, record: &JobRecord) -> f64 {
    let dataset_tag = format!("dataset:{}", config.arch.dataset().name());
    let optimizer_tag = format!("optimizer:{}", config.optimizer.name());
    let dataset = if record.tags.contains(&dataset_tag) { 1.0 } else { 0.0 };
    let optimizer = if record.tags.contains(&optimizer_tag) { 1.0 } else { 0.0 };
    let lr = {
        let a = config.learning_rate.max(1e-12).ln();
        let b = record.feature(feature_keys::LR).unwrap_or(1.0).max(1e-12).ln();
        // Four orders of magnitude apart → 0.
        (1.0 - (a - b).abs() / (4.0 * std::f64::consts::LN_10)).max(0.0)
    };
    let batch = scalar_similarity(
        config.batch_size as f64,
        record.feature(feature_keys::BATCH).unwrap_or(0.0),
    );
    let size = scalar_similarity(
        config.arch.profile().params_m,
        record.feature(feature_keys::PARAMS_M).unwrap_or(0.0),
    );
    let pretrained = {
        let own = if config.pretrained { 1.0 } else { 0.0 };
        if (record.feature(feature_keys::PRETRAINED).unwrap_or(0.0) - own).abs() < 0.5 {
            1.0
        } else {
            0.0
        }
    };
    0.35 * dataset + 0.1 * optimizer + 0.15 * lr + 0.1 * batch + 0.15 * size + 0.15 * pretrained
}

/// Builds the TEE accuracy–epoch estimator for a job: the pooled curves of
/// the `top_k` most similar completed jobs as historical data, joint with
/// whatever real-time points the caller later records.
pub fn build_tee(
    config: &TrainingConfig,
    history: &HistoryRepository,
    top_k: usize,
) -> JointCurveEstimator {
    let similar = history.top_k_similar(JobKind::Dlt, top_k, |r| tee_similarity(config, r));
    let historical: Vec<(f64, f64)> =
        similar.iter().flat_map(|(r, _)| r.curve.iter().copied()).collect();
    JointCurveEstimator::new(CurveBasis::LogShifted, historical)
}

/// TEE's headline query: estimated epochs for the job to reach `target`
/// accuracy. `None` when the estimator cannot answer (no data) or the
/// fitted curve never reaches the target.
pub fn estimate_epochs_to_accuracy(estimator: &JointCurveEstimator, target: f64) -> Option<u64> {
    match estimator.solve_for_x(target) {
        Ok(Some(epochs)) => Some(epochs.ceil().max(0.0) as u64),
        _ => None,
    }
}

/// The training memory estimator.
#[derive(Debug, Clone)]
pub struct Tme {
    /// Top-k similar jobs fitted.
    pub top_k: usize,
    /// Padding applied to the prediction ("we pad the estimated memory by
    /// an additional offset to minimise the likelihood of OOM").
    pub pad_fraction: f64,
}

impl Default for Tme {
    fn default() -> Self {
        Tme { top_k: 5, pad_fraction: 0.10 }
    }
}

impl Tme {
    /// Predicts the job's peak GPU memory in MB from historical jobs on the
    /// same dataset, or `None` when no history exists (the caller falls
    /// back to a parameter-count heuristic).
    pub fn estimate_mb(&self, config: &TrainingConfig, history: &HistoryRepository) -> Option<u64> {
        let dataset_tag = format!("dataset:{}", config.arch.dataset().name());
        let own_params = config.arch.profile().params_m;
        // "TME first retrieves all the data of historical jobs that use the
        // same training dataset", scores them by the paper's model-size
        // similarity, and keeps the top-k.
        let candidates: Vec<&JobRecord> = history
            .of_kind(JobKind::Dlt)
            .into_iter()
            .filter(|r| r.tags.contains(&dataset_tag))
            .collect();
        let scored = rotary_core::estimate::similarity::top_k_by(&candidates, self.top_k, |r| {
            scalar_similarity(own_params, r.feature(feature_keys::PARAMS_M).unwrap_or(0.0))
        });
        // Fit memory = a + b·batch with similarity weights: "the more
        // similar a historical job is, the higher weights".
        let points: Vec<WeightedPoint> = scored
            .iter()
            .filter_map(|(r, sim)| {
                let batch = r.feature(feature_keys::BATCH)?;
                let mem = r.feature(feature_keys::MEMORY_MB)?;
                Some(WeightedPoint::new(batch, mem, sim.max(0.01)))
            })
            .collect();
        let fit = LinearFit::fit(&points).ok()?;
        let raw = fit.predict(config.batch_size as f64);
        if !raw.is_finite() || raw <= 0.0 {
            return None;
        }
        Some((raw * (1.0 + self.pad_fraction)).ceil() as u64)
    }

    /// The fallback heuristic when no history exists: parameter memory with
    /// optimizer state plus a generous activation allowance.
    pub fn cold_start_mb(&self, config: &TrainingConfig) -> u64 {
        let p = config.arch.profile();
        let params_mb = p.params_m * 4.0 * (2.0 + config.optimizer.state_copies());
        ((params_mb + 20.0 * config.batch_size as f64 + 600.0) * (1.0 + self.pad_fraction)).ceil()
            as u64
    }
}

/// The training time recorder.
///
/// "TTR records the time of a training step or a training epoch for each
/// DLT job on different devices … we always discard the first training
/// step" (the CUDA warm-up).
#[derive(Debug, Clone, Default)]
pub struct Ttr {
    records: BTreeMap<(JobId, usize), SimTime>,
}

impl Ttr {
    /// Fresh recorder.
    pub fn new() -> Ttr {
        Ttr::default()
    }

    /// Records an observed epoch duration for a job on a device. The first
    /// observation for a `(job, device)` pair is assumed warm-up-polluted
    /// and is corrected by the caller passing the warm-up-free duration.
    /// "Recording the single training time of each job is sufficient", so
    /// only the latest value is kept.
    pub fn record(&mut self, job: JobId, device: usize, epoch_time: SimTime) {
        self.records.insert((job, device), epoch_time);
    }

    /// The recorded epoch time of a job on a device, if any.
    pub fn epoch_time(&self, job: JobId, device: usize) -> Option<SimTime> {
        self.records.get(&(job, device)).copied()
    }

    /// The recorded epoch time of a job on *any* device (fastest record).
    pub fn any_epoch_time(&self, job: JobId) -> Option<SimTime> {
        self.records.iter().filter(|((j, _), _)| *j == job).map(|(_, &t)| t).min()
    }

    /// All records in deterministic `(job, device)` order, for durable
    /// snapshots.
    pub fn entries(&self) -> impl Iterator<Item = (JobId, usize, SimTime)> + '_ {
        self.records.iter().map(|(&(job, device), &t)| (job, device, t))
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// A monotonic probe: returns the elapsed time since some fixed anchor.
/// The only implementation backed by the wall clock lives in
/// `rotary_bench::timing::monotonic_probe`; everything inside the
/// arbitration loop runs with no probe installed and therefore performs no
/// wall-clock reads at all.
pub type ProbeClock = fn() -> Duration;

/// Overhead accounting for Table III: every TEE/TME/TTR call in the system
/// runs under `measure`, accumulating *real* execution time of the
/// estimator code **when a probe clock is installed**. The default meter
/// has no clock and is a deterministic no-op wrapper.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverheadMeter {
    /// Accumulated TTR time.
    pub ttr: Duration,
    /// Accumulated TEE time.
    pub tee: Duration,
    /// Accumulated TME time.
    pub tme: Duration,
    clock: Option<ProbeClock>,
}

/// Which component a measured call belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// Training time recorder.
    Ttr,
    /// Training epoch estimator.
    Tee,
    /// Training memory estimator.
    Tme,
}

impl OverheadMeter {
    /// A meter that charges real time through `clock` (Table III harness).
    pub fn with_clock(clock: ProbeClock) -> OverheadMeter {
        OverheadMeter { clock: Some(clock), ..OverheadMeter::default() }
    }

    /// Runs `f`, charging its cost to `component` when a probe clock is
    /// installed; without one, `f` runs untimed.
    pub fn measure<T>(&mut self, component: Component, f: impl FnOnce() -> T) -> T {
        let Some(clock) = self.clock else {
            return f();
        };
        let start = clock();
        let out = f();
        let elapsed = clock().saturating_sub(start);
        match component {
            Component::Ttr => self.ttr += elapsed,
            Component::Tee => self.tee += elapsed,
            Component::Tme => self.tme += elapsed,
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{Architecture, Optimizer};

    fn config(arch: Architecture, batch: u32) -> TrainingConfig {
        TrainingConfig {
            arch,
            batch_size: batch,
            optimizer: Optimizer::Adam,
            learning_rate: 0.001,
            pretrained: false,
        }
    }

    fn record_with_curve(arch: Architecture, batch: u32, epochs: u64) -> JobRecord {
        let c = config(arch, batch);
        let curve: Vec<(f64, f64)> =
            (1..=epochs).map(|e| (e as f64, c.accuracy_curve(e))).collect();
        job_record(&c, curve, epochs)
    }

    #[test]
    fn tee_similarity_prefers_same_setup() {
        let target = config(Architecture::ResNet18, 32);
        let same = record_with_curve(Architecture::ResNet18, 32, 10);
        let close = record_with_curve(Architecture::ResNet34, 32, 10);
        let far = record_with_curve(Architecture::Bert, 64, 5);
        let s_same = tee_similarity(&target, &same);
        let s_close = tee_similarity(&target, &close);
        let s_far = tee_similarity(&target, &far);
        assert!(s_same > s_close, "{s_same} vs {s_close}");
        assert!(s_close > s_far, "{s_close} vs {s_far}");
    }

    #[test]
    fn tee_estimates_epochs_from_similar_history() {
        let mut history = HistoryRepository::new();
        history.insert(record_with_curve(Architecture::ResNet18, 32, 40));
        let target = config(Architecture::ResNet18, 32);
        let tee = build_tee(&target, &history, 3);
        let truth = target.epochs_to_accuracy(0.85).unwrap();
        let est = estimate_epochs_to_accuracy(&tee, 0.85).expect("estimate");
        assert!(
            (est as i64 - truth as i64).unsigned_abs() <= truth / 2 + 2,
            "estimated {est}, truth {truth}"
        );
    }

    #[test]
    fn tee_with_wrong_history_is_erroneous() {
        // The Fig. 11 mechanism: strip NLP history and BERT fine-tuning gets
        // estimated from slow-converging CV curves.
        let mut history = HistoryRepository::new();
        for arch in [Architecture::ResNet18, Architecture::Vgg16, Architecture::DenseNet121] {
            history.insert(record_with_curve(arch, 16, 60));
        }
        let bert = TrainingConfig { pretrained: true, ..config(Architecture::Bert, 64) };
        let tee = build_tee(&bert, &history, 3);
        let truth = bert.epochs_to_accuracy(0.85).unwrap();
        let est = estimate_epochs_to_accuracy(&tee, 0.85);
        // Either no answer or a wildly pessimistic one.
        match est {
            None => {}
            Some(e) => assert!(e > truth * 5, "estimate {e} should be far from truth {truth}"),
        }
    }

    #[test]
    fn tme_fits_batch_memory_line() {
        let mut history = HistoryRepository::new();
        for batch in [2, 4, 8, 16, 32] {
            let c = config(Architecture::ResNet18, batch);
            history.insert(job_record(&c, vec![(1.0, 0.5)], 1));
        }
        let tme = Tme::default();
        let target = config(Architecture::ResNet18, 16);
        let est = tme.estimate_mb(&target, &history).expect("estimate");
        let truth = target.memory_mb();
        // Padded estimate: at or above truth, within ~25%.
        assert!(est >= truth, "est {est} ≥ truth {truth} (padding)");
        assert!((est as f64) < truth as f64 * 1.25, "est {est} vs truth {truth}");
    }

    #[test]
    fn tme_requires_same_dataset_history() {
        let mut history = HistoryRepository::new();
        // Only NLP (IMDB) history; estimating a CIFAR job must fall back.
        for batch in [32, 64, 128] {
            history.insert(job_record(&config(Architecture::Bert, batch), vec![], 1));
        }
        let tme = Tme::default();
        assert_eq!(tme.estimate_mb(&config(Architecture::ResNet18, 16), &history), None);
        let cold = tme.cold_start_mb(&config(Architecture::ResNet18, 16));
        assert!(cold > 0);
    }

    #[test]
    fn ttr_records_per_job_and_device() {
        let mut ttr = Ttr::new();
        assert!(ttr.is_empty());
        ttr.record(JobId(1), 0, SimTime::from_secs(90));
        ttr.record(JobId(1), 1, SimTime::from_secs(80));
        ttr.record(JobId(2), 0, SimTime::from_secs(200));
        assert_eq!(ttr.epoch_time(JobId(1), 0), Some(SimTime::from_secs(90)));
        assert_eq!(ttr.epoch_time(JobId(1), 2), None);
        assert_eq!(ttr.any_epoch_time(JobId(1)), Some(SimTime::from_secs(80)));
        assert_eq!(ttr.len(), 3);
        // Latest value wins.
        ttr.record(JobId(1), 0, SimTime::from_secs(85));
        assert_eq!(ttr.epoch_time(JobId(1), 0), Some(SimTime::from_secs(85)));
        assert_eq!(ttr.len(), 3);
    }

    /// Deterministic probe for tests: ticks one millisecond per call.
    fn ticking_probe() -> Duration {
        use std::sync::atomic::{AtomicU64, Ordering};
        static TICKS: AtomicU64 = AtomicU64::new(0);
        Duration::from_millis(TICKS.fetch_add(1, Ordering::Relaxed))
    }

    #[test]
    fn overhead_meter_charges_through_the_probe() {
        let mut meter = OverheadMeter::with_clock(ticking_probe);
        let x = meter.measure(Component::Tee, || 41 + 1);
        assert_eq!(x, 42);
        // The probe ticked once between the start and end reads.
        assert_eq!(meter.tee, Duration::from_millis(1));
        assert_eq!(meter.ttr, Duration::ZERO);
        meter.measure(Component::Ttr, || {});
        meter.measure(Component::Tme, || {});
        assert_eq!(meter.ttr, Duration::from_millis(1));
        assert_eq!(meter.tme, Duration::from_millis(1));
    }

    #[test]
    fn overhead_meter_without_probe_is_inert() {
        let mut meter = OverheadMeter::default();
        let x = meter.measure(Component::Tee, || 7u64);
        assert_eq!(x, 7);
        assert_eq!(meter.tee, Duration::ZERO);
        assert_eq!(meter.ttr + meter.tme, Duration::ZERO);
    }
}
