//! Rotary-DLT: threshold-based GPU arbitration for deep learning training
//! (paper §IV-B, Algorithms 3–4) and the §V-B baselines.
//!
//! All jobs are submitted at time zero. Whenever a GPU frees up, the system
//! re-ranks the queue: under Rotary's threshold policy the queue
//! prioritises the *lowest*-progress job until every job has reached
//! progress `T` (or is considered converged), then flips to the
//! *highest*-estimated-progress job (Algorithm 3); `T = 0` is pure
//! efficiency, `T = 1` pure fairness, `T = 0.5` the adaptive variant of
//! Fig. 10a. Progress `φ` follows Algorithm 4, with TEE supplying the
//! estimated epochs-to-target for accuracy- and convergence-oriented
//! criteria. TME gates placement (`m̂ ≤ M_d`); TTR records epoch times.
//! The baselines (SRF, BCF, LAF) prioritise one criterion family and
//! round-robin the rest, exactly as §V-B2 describes.

use std::collections::BTreeSet;

use rotary_core::arb::{DecisionCache, OrdF64, PriorityIndex};
use rotary_core::criteria::{CompletionCriterion, CriterionCheck};
use rotary_core::error::RotaryError;
use rotary_core::estimate::JointCurveEstimator;
use rotary_core::history::HistoryRepository;
use rotary_core::job::{IntermediateState, JobId, JobKind, JobState, JobStatus};
use rotary_core::progress::Objective;
use rotary_core::resources::GpuPoolSpec;
use rotary_core::SimTime;
use rotary_faults::{EpochFault, FaultPlan};
use rotary_sim::{
    CheckpointModel, EventQueue, GpuPool, PlacementSpan, WorkloadMetrics, WorkloadSummary,
};
use rotary_store::{DurableConfig, DurableOutcome, SnapshotStore};

use crate::estimators::{
    build_tee, estimate_epochs_to_accuracy, job_record, Component, OverheadMeter, Tme, Ttr,
};
use crate::simulator::{TrainingSim, CUDA_WARMUP};
use crate::workload::DltJobSpec;

mod snapshot;

/// The arbitration policy for a DLT run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DltPolicy {
    /// Rotary-DLT with the given objective (threshold `T`).
    Rotary(Objective),
    /// Shortest Runtime First: runtime-criteria jobs by smallest budget,
    /// everything else round-robin.
    Srf,
    /// Biggest Convergence First: convergence-criteria jobs by largest
    /// delta, everything else round-robin.
    Bcf,
    /// Lowest Accuracy First: accuracy-criteria jobs by lowest target,
    /// everything else round-robin.
    Laf,
}

impl DltPolicy {
    /// Display name matching the paper's figures.
    pub fn name(self) -> String {
        match self {
            DltPolicy::Rotary(obj) => {
                format!("Rotary-DLT(T={:.0}%)", obj.threshold() * 100.0)
            }
            DltPolicy::Srf => "SRF".to_string(),
            DltPolicy::Bcf => "BCF".to_string(),
            DltPolicy::Laf => "LAF".to_string(),
        }
    }

    /// The Fig. 10 line-up: three Rotary variants plus the baselines.
    pub fn all() -> Vec<DltPolicy> {
        vec![
            DltPolicy::Srf,
            DltPolicy::Bcf,
            DltPolicy::Laf,
            DltPolicy::Rotary(Objective::Threshold(0.5)),
            DltPolicy::Rotary(Objective::Fairness),
            DltPolicy::Rotary(Objective::Efficiency),
        ]
    }
}

/// Tunables; defaults reproduce the paper's testbed (4 × RTX 2080, 8 GB).
#[derive(Debug, Clone)]
pub struct DltSystemConfig {
    /// The GPU pool.
    pub pool: GpuPoolSpec,
    /// Checkpoint/restore cost model (model state to disk).
    pub checkpoint: CheckpointModel,
    /// Top-k similar historical jobs for TEE/TME.
    pub top_k: usize,
    /// Seed for evaluation noise.
    pub seed: u64,
    /// Fault-injection plan consulted by the control plane. Defaults to
    /// `ROTARY_FAULT_SEED` (the chaos profile at that seed; inert when
    /// unset). An inert plan injects nothing and leaves the run
    /// byte-identical to a build without the fault layer.
    pub faults: FaultPlan,
    /// Worker threads for the data plane (host threads running the training
    /// simulations, not the simulated GPUs). Defaults to `ROTARY_THREADS`
    /// (1 when unset); results are bit-identical across values.
    pub threads: usize,
    /// Monotonic probe for Table III overhead accounting. `None` (the
    /// default) keeps the arbitration loop free of wall-clock reads; the
    /// Table III harness installs `rotary_bench::timing::monotonic_probe`.
    pub overhead_probe: Option<crate::estimators::ProbeClock>,
    /// Forces the retired dense (full re-sort per event) control plane for
    /// the Rotary policy instead of the incrementally maintained priority
    /// index. The two paths are proven byte-equivalent by the property
    /// suite; this switch keeps whole-run equivalence testable.
    pub dense_control_plane: bool,
}

impl Default for DltSystemConfig {
    fn default() -> Self {
        DltSystemConfig {
            pool: GpuPoolSpec::paper_dlt_testbed(),
            checkpoint: CheckpointModel::ssd(),
            top_k: 5,
            seed: 0,
            faults: FaultPlan::from_env(),
            threads: rotary_par::configured_threads(),
            overhead_probe: None,
            dense_control_plane: false,
        }
    }
}

/// Outcome of one DLT workload run.
#[derive(Debug)]
pub struct DltRunResult {
    /// Policy name.
    pub policy: String,
    /// Final job states, parallel to the submitted specs.
    pub jobs: Vec<(DltJobSpec, JobState)>,
    /// Condensed statistics.
    pub summary: WorkloadSummary,
    /// Placement spans and live-progress snapshots.
    pub metrics: WorkloadMetrics,
    /// Virtual time when the last job finished.
    pub makespan: SimTime,
    /// TTR/TEE/TME overhead during the run (Table III). Real wall-clock
    /// time when the config installed an `overhead_probe`; zero otherwise.
    pub overheads: OverheadMeter,
}

impl DltRunResult {
    /// The §V-B2 attainment-progress metrics, evaluated retrospectively at
    /// virtual time `t` for every job — the raw values behind one Fig. 10
    /// violin.
    ///
    /// * accuracy-oriented: `current accuracy / target accuracy`;
    /// * convergence-oriented: `epochs at t / convergence-line` (the epoch
    ///   where the job converged), or `/ max epochs` if it never converged;
    /// * runtime-oriented: `epochs at t / budget`.
    pub fn attainment_progress_at(&self, t: SimTime) -> Vec<f64> {
        self.jobs
            .iter()
            .map(|(spec, state)| {
                let epochs_at = state.history.iter().take_while(|s| s.at <= t).count() as u64;
                let acc_at = state
                    .history
                    .iter()
                    .take_while(|s| s.at <= t)
                    .last()
                    .map(|s| s.metric_value)
                    .unwrap_or(0.0);
                match &spec.criterion {
                    CompletionCriterion::Accuracy { threshold, .. } => {
                        (acc_at / threshold).clamp(0.0, 1.0)
                    }
                    CompletionCriterion::Convergence { delta, deadline, .. } => {
                        let max_e = deadline.epochs().unwrap_or(30);
                        // Retrospective convergence-line: the first epoch
                        // whose observed improvement fell within delta.
                        let line = state
                            .history
                            .windows(2)
                            .position(|w| (w[1].metric_value - w[0].metric_value).abs() <= *delta)
                            .map(|i| (i + 2) as u64)
                            .unwrap_or(max_e)
                            .max(1);
                        (epochs_at as f64 / line as f64).clamp(0.0, 1.0)
                    }
                    CompletionCriterion::Runtime { runtime } => match runtime {
                        rotary_core::criteria::Deadline::Epochs(budget) => {
                            (epochs_at as f64 / (*budget).max(1) as f64).clamp(0.0, 1.0)
                        }
                        rotary_core::criteria::Deadline::Time(budget) => {
                            let end =
                                state.finished_at.map(|f| f.min(t)).unwrap_or(t).as_secs_f64();
                            (end / budget.as_secs_f64().max(1e-9)).clamp(0.0, 1.0)
                        }
                    },
                }
            })
            .collect()
    }

    /// Number of genuinely attained jobs by time `t`.
    pub fn attained_by(&self, t: SimTime) -> usize {
        self.jobs
            .iter()
            .filter(|(_, s)| {
                s.status == JobStatus::Attained && s.finished_at.map(|f| f <= t).unwrap_or(false)
            })
            .count()
    }
}

#[derive(Debug)]
enum Event {
    EpochDone(usize),
    /// An injected crash ends this job's in-flight epoch, losing its work.
    EpochFailed(usize),
    /// A crashed job's retry backoff has elapsed; it may be placed again.
    RetryReady(usize),
    /// A memory-pressure slot boundary: re-arbitrate in case the pressure
    /// that blocked placements has lifted (without this, an otherwise idle
    /// queue would never wake up again).
    Wake,
}

struct RunJob {
    spec: DltJobSpec,
    core: JobState,
    sim: TrainingSim,
    tee: JointCurveEstimator,
    memory_estimate_mb: u64,
    true_memory_mb: u64,
    converged_flag: bool,
    in_memory: bool,
    last_device: Option<usize>,
    epoch_start: SimTime,
    /// Failed attempts at the current epoch; reset on success.
    fault_attempts: u32,
    /// Restores performed so far — indexes the restore-fault stream.
    restores: u64,
    /// Checkpoint writes so far — indexes the write-fault stream.
    ckpt_writes: u64,
}

/// Mutable state of one in-flight workload run: everything `step` needs
/// between events, and exactly what a durable snapshot captures.
struct DltRunState {
    jobs: Vec<RunJob>,
    events: EventQueue<Event>,
    pool: GpuPool,
    metrics: WorkloadMetrics,
    meter: OverheadMeter,
    ttr: Ttr,
    rr_cursor: usize,
    makespan: SimTime,
    /// Epochs completed so far — the durable-snapshot cadence counter.
    epochs_done: u64,
    /// Incremental control-plane state; derived, rebuilt lazily after a
    /// durable restore, never snapshotted.
    arb: DltArbCaches,
}

/// The non-job inputs a DLT arbitration pass reads. Matching the state the
/// previous pass left behind (with no job dirtied since) proves re-running
/// the pass would place nothing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct DltFingerprint {
    free_devices: Vec<usize>,
    spike: u64,
}

/// Incrementally maintained control-plane caches for the Rotary-DLT
/// threshold policy: the trial FIFO, standing fairness- and
/// efficiency-phase orders (both maintained at once — the phase flip just
/// selects which to read), a counter-based phase predicate, and decision
/// memoization. Baselines (SRF/BCF/LAF) mutate rank-time state (the
/// round-robin cursor) and keep the dense path.
#[derive(Debug, Default)]
struct DltArbCaches {
    /// True once the lazy first build ran (decides `enabled`).
    built: bool,
    /// Indexed path active (Rotary policy and not forced dense).
    enabled: bool,
    /// Arbitrable never-run jobs, served FIFO (ascending id) first so
    /// estimates get real-time grounding.
    trial: BTreeSet<u32>,
    /// Fairness-phase order over arbitrable warm jobs:
    /// (progress, arrival) ascending.
    fair: PriorityIndex<(OrdF64, SimTime)>,
    /// Efficiency-phase order over arbitrable warm jobs whose φ̂ is
    /// clock-free: (−φ̂, arrival) ascending.
    eff: PriorityIndex<(OrdF64, SimTime)>,
    /// Arbitrable warm jobs whose φ̂ depends on the clock (time-budget
    /// runtime criteria); re-keyed fresh and merged into the efficiency
    /// order at each pass.
    eff_dynamic: BTreeSet<u32>,
    /// Per-job phase predicate (progress ≥ T, considered converged, or
    /// terminal) as last folded into `n_satisfied`.
    satisfied: Vec<bool>,
    /// Jobs currently satisfying the predicate; the efficiency phase holds
    /// iff this equals the job count (Algorithm 3's phase switch).
    n_satisfied: usize,
    /// Jobs whose state changed since the last pass (re-key these).
    dirty: Vec<u32>,
    /// Jobs whose progress may have changed since the last metrics row.
    touched: Vec<u32>,
    /// Decision memoization over the non-job inputs.
    memo: DecisionCache<DltFingerprint>,
}

impl DltArbCaches {
    /// Marks a job dirty and touched; no-op until the first build decides
    /// the indexed path is active (the build re-keys everything anyway).
    fn mark(&mut self, i: usize) {
        if self.enabled {
            self.dirty.push(i as u32);
            self.touched.push(i as u32);
        }
    }
}

/// Benchmark-only opaque handle over a mid-run state (see
/// [`DltSystem::bench_start`]).
#[doc(hidden)]
pub struct DltBenchRun(DltRunState);

/// Streaming-service handle: an open-ended run that admits training jobs
/// one at a time instead of taking the whole workload up front (the seam
/// the `rotary-serve` daemon drives). The handle accumulates the admitted
/// specs so a durable snapshot of the stream is exactly a snapshot of the
/// equivalent batch run over those specs.
pub struct DltServeRun {
    st: DltRunState,
    policy: DltPolicy,
    specs: Vec<DltJobSpec>,
    /// Per-job flag: terminal outcome already handed out by
    /// [`DltSystem::serve_drain_finished`].
    reported: Vec<bool>,
}

impl DltServeRun {
    /// The specs admitted so far, in admission order.
    pub fn specs(&self) -> &[DltJobSpec] {
        &self.specs
    }
}

/// The Rotary-DLT system.
pub struct DltSystem {
    config: DltSystemConfig,
    history: HistoryRepository,
    tme: Tme,
    /// Data-plane worker pool (host threads, not the simulated GPUs).
    exec_pool: rotary_par::ThreadPool,
}

impl DltSystem {
    /// Creates a system with an empty history repository.
    pub fn new(config: DltSystemConfig) -> DltSystem {
        let exec_pool = rotary_par::ThreadPool::new(config.threads);
        DltSystem { config, history: HistoryRepository::new(), tme: Tme::default(), exec_pool }
    }

    /// Read access to the repository.
    pub fn history(&self) -> &HistoryRepository {
        &self.history
    }

    /// Mutable access (the Fig. 11 experiment strips NLP records).
    pub fn history_mut(&mut self) -> &mut HistoryRepository {
        &mut self.history
    }

    /// Installs a fault-injection plan for subsequent runs.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.config.faults = plan;
    }

    /// Runs every workload job once, uncontended, to populate the
    /// repository — the completed historical jobs the estimators rely on.
    /// Returns the number of records inserted.
    pub fn prepopulate_history(&mut self, specs: &[DltJobSpec], seed: u64) -> usize {
        // The uncontended historical runs are independent (each owns its
        // seeded TrainingSim), so they execute concurrently on the host
        // pool; insertion stays serial, in fixed spec order, so the
        // repository's contents are independent of worker scheduling.
        let curves: Vec<(Vec<(f64, f64)>, u64)> = self.exec_pool.map(specs, |i, spec| {
            let mut sim = TrainingSim::new(spec.config, seed ^ ((i as u64 + 1) * 0x9e3));
            let epochs = spec.max_epochs().clamp(5, 40);
            let mut curve = Vec::with_capacity(epochs as usize);
            for e in 1..=epochs {
                curve.push((e as f64, sim.train_epoch()));
            }
            (curve, epochs)
        });
        for (spec, (curve, epochs)) in specs.iter().zip(curves) {
            self.history.insert(job_record(&spec.config, curve, epochs));
        }
        specs.len()
    }

    /// Algorithm 4: attainment progress of a job.
    ///
    /// `observed_acc` carries the job's latest evaluation when computing
    /// *current* progress; pass `None` to compute the *estimated* progress
    /// after one more epoch (φ̂), which falls back to TEE's accuracy-epoch
    /// curve.
    fn progress_at(
        job: &RunJob,
        epochs: u64,
        observed_acc: Option<f64>,
        now: SimTime,
        meter: &mut OverheadMeter,
    ) -> f64 {
        match &job.spec.criterion {
            CompletionCriterion::Runtime { runtime } => match runtime {
                // "the ratio of current runtime (e.g., number of epochs) to
                // the runtime threshold" — in whichever unit the user chose.
                rotary_core::criteria::Deadline::Epochs(budget) => {
                    (epochs as f64 / (*budget).max(1) as f64).clamp(0.0, 1.0)
                }
                rotary_core::criteria::Deadline::Time(budget) => {
                    (now.as_secs_f64() / budget.as_secs_f64().max(1e-9)).clamp(0.0, 1.0)
                }
            },
            CompletionCriterion::Accuracy { threshold, deadline, .. } => {
                match observed_acc {
                    // §V-B2: accuracy-oriented attainment progress is
                    // `current accuracy / completion criteria`.
                    Some(a) => (a / threshold).clamp(0.0, 1.0),
                    // For the next-epoch estimate, measure the epoch
                    // fraction of TEE's epochs-to-threshold answer. The
                    // predicted-accuracy ratio saturates at 1.0 as soon
                    // as the fitted curve crosses the threshold, so every
                    // fast-converging job ties and the estimate drops out
                    // of the efficiency ranking; the epoch fraction stays
                    // ordered by estimated remaining work, which is what
                    // mis-estimation must be able to distort (Fig. 11).
                    None => {
                        let e_max = deadline.epochs().unwrap_or(30).max(1);
                        let e_hat = meter.measure(Component::Tee, || {
                            estimate_epochs_to_accuracy(&job.tee, *threshold)
                                .unwrap_or(e_max)
                                .clamp(1, e_max)
                        });
                        // ê at or below the lookahead epoch means "attains
                        // by then" — full estimated progress.
                        (epochs as f64 / e_hat.max(epochs) as f64).clamp(0.0, 1.0)
                    }
                }
            }
            CompletionCriterion::Convergence { delta, deadline, .. } => {
                let e_max = deadline.epochs().unwrap_or(30).max(1);
                // Expected convergence epoch from the fitted curve: with
                // acc = a + b·ln(1+e), the per-epoch gain is ≈ b/(1+e), so
                // the gain falls to `delta` at ê = b/delta − 1.
                let e_hat = meter.measure(Component::Tee, || match job.tee.fit() {
                    Ok(curve) => {
                        let b = curve.slope().max(0.0);
                        let raw = (b / delta.max(1e-9) - 1.0).ceil() as i64;
                        raw.clamp(1, e_max as i64) as u64
                    }
                    Err(_) => e_max,
                });
                // The job demonstrably has NOT converged yet (its criterion
                // has not fired), so an estimate at or below the completed
                // epochs is stale — clamp it one epoch ahead, keeping the
                // job visibly unfinished to the fairness objective.
                let e_hat = e_hat.max(epochs + 1);
                (epochs as f64 / e_hat as f64).clamp(0.0, 1.0)
            }
        }
    }

    /// Runs a workload under a policy.
    pub fn run(&mut self, specs: &[DltJobSpec], policy: DltPolicy) -> DltRunResult {
        let mut st = self.start_run(specs, policy);
        while self.step(&mut st, policy) {}
        self.finish_run(st, specs, policy)
    }

    /// Like [`DltSystem::run`], but writes a durable snapshot to
    /// `durable.dir` every `durable.every` completed epochs, so a crashed
    /// process can pick the run back up with
    /// [`DltSystem::resume_durable`]. With `halt_after` set the run stops
    /// right after that snapshot generation commits (the crash-injection
    /// hook used by the kill-and-resume tests).
    pub fn run_durable(
        &mut self,
        specs: &[DltJobSpec],
        policy: DltPolicy,
        durable: &DurableConfig,
    ) -> rotary_core::error::Result<DurableOutcome<DltRunResult>> {
        durable.validate()?;
        self.config.checkpoint.validate()?;
        let store = SnapshotStore::open(&durable.dir)?;
        let st = self.start_run(specs, policy);
        self.drive(st, specs, policy, durable, &store, 0)
    }

    /// Resumes a run from the newest valid snapshot in `durable.dir`
    /// (corrupt generations are skipped), continuing to completion exactly
    /// as the uninterrupted run would have: the resumed trace is
    /// byte-identical. Starts fresh when the store holds no usable
    /// snapshot. Fails with `InvalidConfig` when the snapshot belongs to a
    /// different workload, policy, or config.
    pub fn resume_durable(
        &mut self,
        specs: &[DltJobSpec],
        policy: DltPolicy,
        durable: &DurableConfig,
    ) -> rotary_core::error::Result<DurableOutcome<DltRunResult>> {
        durable.validate()?;
        self.config.checkpoint.validate()?;
        let store = SnapshotStore::open(&durable.dir)?;
        match store.latest_valid()? {
            Some((generation, records)) => {
                let st = snapshot::restore_run(self, specs, policy, &records)?;
                self.drive(st, specs, policy, durable, &store, generation)
            }
            None => {
                let st = self.start_run(specs, policy);
                self.drive(st, specs, policy, durable, &store, 0)
            }
        }
    }

    /// The durable event loop: steps the run, committing one snapshot
    /// generation per `durable.every` completed epochs.
    fn drive(
        &mut self,
        mut st: DltRunState,
        specs: &[DltJobSpec],
        policy: DltPolicy,
        durable: &DurableConfig,
        store: &SnapshotStore,
        mut generation: u64,
    ) -> rotary_core::error::Result<DurableOutcome<DltRunResult>> {
        loop {
            if !self.step(&mut st, policy) {
                return Ok(DurableOutcome::Completed(self.finish_run(st, specs, policy)));
            }
            if st.epochs_done >= (generation + 1).saturating_mul(durable.every) {
                generation += 1;
                let records = snapshot::snapshot_records(self, &st, specs, policy, generation)?;
                let damage = self.config.faults.snapshot_fault(generation);
                store.commit(generation, &records, damage.as_ref())?;
                if durable.halt_after == Some(generation) {
                    return Ok(DurableOutcome::Halted { generation });
                }
            }
        }
    }

    /// Builds the per-job run state (estimators seeded from history, fresh
    /// training simulations) and rejects jobs no device could ever host.
    fn build_jobs(&mut self, specs: &[DltJobSpec], meter: &mut OverheadMeter) -> Vec<RunJob> {
        specs
            .iter()
            .enumerate()
            .map(|(i, spec)| self.build_job(i, spec, meter, SimTime::ZERO))
            .collect()
    }

    /// Binds one spec at global job index `i`, arriving at `arrival`. The
    /// index seeds the training simulation, so a job admitted mid-run
    /// through the streaming seam binds identically to the same spec at
    /// the same position in a batch run. A job no device could ever host
    /// finishes `DeadlineMissed` on the spot: "these resources can only
    /// process one job at a time and are not sub-dividable", so it can
    /// never be placed and must not wait forever.
    fn build_job(
        &mut self,
        i: usize,
        spec: &DltJobSpec,
        meter: &mut OverheadMeter,
        arrival: SimTime,
    ) -> RunJob {
        let tee = meter
            .measure(Component::Tee, || build_tee(&spec.config, &self.history, self.config.top_k));
        let memory_estimate_mb = meter.measure(Component::Tme, || {
            self.tme
                .estimate_mb(&spec.config, &self.history)
                .unwrap_or_else(|| self.tme.cold_start_mb(&spec.config))
        });
        let mut core =
            JobState::new(JobId(i as u64), JobKind::Dlt, spec.criterion.clone(), arrival);
        core.status = JobStatus::Active;
        let mut job = RunJob {
            sim: TrainingSim::new(spec.config, self.config.seed ^ ((i as u64 + 1) * 0x51)),
            tee,
            memory_estimate_mb,
            true_memory_mb: spec.config.memory_mb(),
            converged_flag: false,
            in_memory: false,
            last_device: None,
            epoch_start: SimTime::ZERO,
            fault_attempts: 0,
            restores: 0,
            ckpt_writes: 0,
            core,
            spec: spec.clone(),
        };
        let largest_device =
            self.config.pool.devices.iter().map(|d| d.memory_mb).max().unwrap_or(0);
        if job.true_memory_mb.max(job.memory_estimate_mb) > largest_device {
            job.core.finish(JobStatus::DeadlineMissed, arrival);
        }
        job
    }

    /// Builds the fresh run state and performs the t = 0 arbitration.
    fn start_run(&mut self, specs: &[DltJobSpec], policy: DltPolicy) -> DltRunState {
        let mut meter = match self.config.overhead_probe {
            Some(probe) => OverheadMeter::with_clock(probe),
            None => OverheadMeter::default(),
        };
        let mut jobs = self.build_jobs(specs, &mut meter);
        let mut pool = GpuPool::new(self.config.pool.clone());
        let mut events: EventQueue<Event> = EventQueue::new();
        let mut metrics = WorkloadMetrics::new();
        let mut rr_cursor = 0usize;
        let mut arb = DltArbCaches::default();

        // Initial arbitration at t = 0.
        self.arbitrate(
            &mut jobs,
            SimTime::ZERO,
            &mut pool,
            &mut events,
            &mut metrics,
            policy,
            &mut meter,
            &mut rr_cursor,
            &mut arb,
            None,
        );
        DltRunState {
            jobs,
            events,
            pool,
            metrics,
            meter,
            ttr: Ttr::new(),
            rr_cursor,
            makespan: SimTime::ZERO,
            epochs_done: 0,
            arb,
        }
    }

    /// Benchmark hook: builds a run state without driving it, so the
    /// `bench_arbitration` harness can time individual control-plane steps.
    /// Not part of the public API contract.
    #[doc(hidden)]
    pub fn bench_start(&mut self, specs: &[DltJobSpec], policy: DltPolicy) -> DltBenchRun {
        DltBenchRun(self.start_run(specs, policy))
    }

    /// Benchmark hook: processes one event of a [`DltSystem::bench_start`]
    /// run; returns `false` once the event queue has drained.
    #[doc(hidden)]
    pub fn bench_step(&mut self, run: &mut DltBenchRun, policy: DltPolicy) -> bool {
        self.step(&mut run.0, policy)
    }

    /// Opens an empty streaming run for the serve daemon: no jobs, no
    /// pending events — work arrives later through
    /// [`DltSystem::serve_admit`].
    pub fn serve_start(&mut self, policy: DltPolicy) -> DltServeRun {
        DltServeRun {
            st: self.start_run(&[], policy),
            policy,
            specs: Vec::new(),
            reported: Vec::new(),
        }
    }

    /// Admits one training job into a streaming run at virtual time `now`
    /// (which must not precede the run's clock — the daemon guarantees
    /// this), returning its job index. Unlike the batch path, the job
    /// arrives `Active` at `now`, and a [`Event::Wake`] is scheduled so
    /// the next step re-arbitrates with the newcomer in the trial queue.
    /// A job no device could host is finished `DeadlineMissed` on the
    /// spot and surfaces through [`DltSystem::serve_drain_finished`].
    pub fn serve_admit(&mut self, run: &mut DltServeRun, spec: DltJobSpec, now: SimTime) -> usize {
        let i = run.st.jobs.len();
        let job = self.build_job(i, &spec, &mut run.st.meter, now);
        run.st.jobs.push(job);
        if run.st.arb.built && run.st.arb.enabled {
            // The first cache build sized `satisfied` to the job count it
            // saw; grow it before marking so the re-key can fold the
            // newcomer into the phase predicate.
            run.st.arb.satisfied.push(false);
            run.st.arb.mark(i);
        }
        run.st.events.schedule(now, Event::Wake);
        run.specs.push(spec);
        run.reported.push(false);
        i
    }

    /// The virtual time of the run's next internal event, if any.
    pub fn serve_peek(&self, run: &DltServeRun) -> Option<SimTime> {
        run.st.events.peek_time()
    }

    /// Processes one event of a streaming run; returns `false` when the
    /// event queue has drained (more admissions may refill it).
    pub fn serve_step(&mut self, run: &mut DltServeRun) -> bool {
        let policy = run.policy;
        self.step(&mut run.st, policy)
    }

    /// Drains the jobs that reached a terminal status since the last call:
    /// `(job index, terminal status, finish time)`. Each job is reported
    /// exactly once across the run's lifetime, including across a
    /// snapshot/restore boundary (restored terminals count as already
    /// reported — their outcomes live in the daemon's own ledger).
    pub fn serve_drain_finished(
        &mut self,
        run: &mut DltServeRun,
    ) -> Vec<(usize, JobStatus, SimTime)> {
        let mut out = Vec::new();
        for (i, job) in run.st.jobs.iter().enumerate() {
            if !run.reported[i] && job.core.status.is_terminal() {
                run.reported[i] = true;
                out.push((i, job.core.status, job.core.finished_at.unwrap_or(run.st.makespan)));
            }
        }
        out
    }

    /// Jobs admitted but not yet terminal.
    pub fn serve_inflight(&self, run: &DltServeRun) -> usize {
        run.st.jobs.iter().filter(|j| !j.core.status.is_terminal()).count()
    }

    /// Serialises the streaming run as named snapshot records — the same
    /// layout a batch [`DltSystem::run_durable`] writes for the admitted
    /// specs.
    ///
    /// # Errors
    /// Serialization failures pass through as typed errors.
    pub fn serve_snapshot(
        &self,
        run: &DltServeRun,
        generation: u64,
    ) -> rotary_core::error::Result<Vec<(String, Vec<u8>)>> {
        snapshot::snapshot_records(self, &run.st, &run.specs, run.policy, generation)
    }

    /// Rebuilds a streaming run from records written by
    /// [`DltSystem::serve_snapshot`]. `specs` must be the admitted specs
    /// in admission order (the serve layer snapshots them alongside).
    ///
    /// # Errors
    /// [`RotaryError::SnapshotCorrupt`](rotary_core::error::RotaryError::SnapshotCorrupt)
    /// on structural damage; `InvalidConfig` when the snapshot belongs to
    /// a different workload, policy, or config.
    pub fn serve_restore(
        &mut self,
        specs: Vec<DltJobSpec>,
        policy: DltPolicy,
        records: &[(String, Vec<u8>)],
    ) -> rotary_core::error::Result<DltServeRun> {
        let st = snapshot::restore_run(self, &specs, policy, records)?;
        let reported = st.jobs.iter().map(|j| j.core.status.is_terminal()).collect();
        Ok(DltServeRun { st, policy, specs, reported })
    }

    /// Processes one event; returns `false` when the queue has drained.
    fn step(&mut self, st: &mut DltRunState, policy: DltPolicy) -> bool {
        let Some((now, event)) = st.events.pop() else {
            return false;
        };
        // Only an epoch completion can leave a job Active and in memory, so
        // the trailing checkpoint pass has at most this one candidate to
        // examine (validated against the dense full scan by the property
        // suite).
        let ckpt_candidate = match &event {
            Event::EpochDone(i) => Some(*i),
            _ => None,
        };
        match event {
            Event::EpochDone(i) => {
                self.complete_epoch(
                    &mut st.jobs[i],
                    now,
                    &mut st.pool,
                    &mut st.metrics,
                    &mut st.meter,
                    &mut st.ttr,
                );
                st.epochs_done += 1;
                st.arb.mark(i);
                if st.jobs[i].core.status.is_terminal() {
                    st.makespan = st.makespan.max(now);
                }
            }
            Event::EpochFailed(i) => {
                self.fail_epoch(
                    i,
                    &mut st.jobs[i],
                    now,
                    &mut st.pool,
                    &mut st.metrics,
                    &mut st.events,
                );
                st.arb.mark(i);
                if st.jobs[i].core.status.is_terminal() {
                    st.makespan = st.makespan.max(now);
                }
            }
            Event::RetryReady(i) => {
                if st.jobs[i].core.status == JobStatus::Recovering {
                    // Backoff served: the job rejoins the arbitration
                    // queue from its last durable checkpoint.
                    st.jobs[i].core.status = JobStatus::Checkpointed;
                    st.arb.mark(i);
                }
            }
            Event::Wake => {}
        }
        self.arbitrate(
            &mut st.jobs,
            now,
            &mut st.pool,
            &mut st.events,
            &mut st.metrics,
            policy,
            &mut st.meter,
            &mut st.rr_cursor,
            &mut st.arb,
            ckpt_candidate,
        );
        if st.arb.enabled && st.metrics.snapshot_count() > 0 {
            // Delta row: only jobs an event or a placement touched can have
            // moved; the recorder bit-compares and drops the unchanged.
            let touched = std::mem::take(&mut st.arb.touched);
            let candidates: Vec<(JobId, f64)> = touched
                .iter()
                .map(|&id| {
                    let j = &st.jobs[id as usize];
                    (j.core.id, Self::snapshot_progress(j))
                })
                .collect();
            st.metrics.record_snapshot_sparse(now, &candidates);
        } else {
            st.arb.touched.clear();
            st.metrics.record_snapshot(
                now,
                st.jobs.iter().map(|j| (j.core.id, Self::snapshot_progress(j))).collect(),
            );
        }
        true
    }

    /// The per-job value reported in progress snapshots.
    fn snapshot_progress(j: &RunJob) -> f64 {
        if j.core.status == JobStatus::Attained {
            1.0
        } else {
            j.core.progress()
        }
    }

    /// Assembles the run result once the event queue has drained.
    fn finish_run(&self, st: DltRunState, specs: &[DltJobSpec], policy: DltPolicy) -> DltRunResult {
        let states: Vec<JobState> = st.jobs.iter().map(|j| j.core.clone()).collect();
        let summary = WorkloadSummary::from_jobs(&states, st.makespan);
        DltRunResult {
            policy: policy.name(),
            jobs: specs.iter().cloned().zip(states).collect(),
            summary,
            metrics: st.metrics,
            makespan: st.makespan,
            overheads: st.meter,
        }
    }

    fn complete_epoch(
        &mut self,
        job: &mut RunJob,
        now: SimTime,
        pool: &mut GpuPool,
        metrics: &mut WorkloadMetrics,
        meter: &mut OverheadMeter,
        ttr: &mut Ttr,
    ) {
        let device = pool.vacate(job.core.id).expect("completing job must occupy a device");
        let service = now - job.epoch_start;
        job.fault_attempts = 0;
        // The isolated baseline: GPUs are not shared, so an epoch costs the
        // same alone; only queueing differs.
        job.core.add_isolated_service(service);

        // Train + evaluate.
        let accuracy = job.sim.train_epoch();
        let epoch = job.core.epochs_run + 1;

        // TTR: record the epoch time net of the warm-up-affected first step.
        let net = if epoch == 1 { service.saturating_sub(CUDA_WARMUP) } else { service };
        meter.measure(Component::Ttr, || ttr.record(job.core.id, device, net));

        // TEE real-time observation.
        meter.measure(Component::Tee, || job.tee.observe(epoch as f64, accuracy));

        // Plateau detection feeds the "considered converged" flag of
        // Algorithm 3's phase switch.
        if let Some(prev) = job.core.latest() {
            if (accuracy - prev.metric_value).abs() < 0.002 && epoch >= 3 {
                job.converged_flag = true;
            }
        }

        let progress = Self::progress_at(job, epoch, Some(accuracy), now, meter);
        let state = IntermediateState { epoch, at: now, metric_value: accuracy, progress };
        let check = job.spec.criterion.check(&state, job.core.latest(), now);
        job.core.record_epoch(state, service);

        let status = match check {
            CriterionCheck::Attained => Some(JobStatus::Attained),
            CriterionCheck::DeadlineMissed => Some(JobStatus::DeadlineMissed),
            CriterionCheck::Continue => None,
        };
        metrics.record_span(PlacementSpan {
            job: job.core.id,
            resource: format!("gpu{device}"),
            start: job.epoch_start,
            end: now,
            attained_at_end: matches!(status, Some(JobStatus::Attained)),
        });
        match status {
            Some(s) => {
                job.core.finish(s, now);
                // Archive: "all the completed jobs' information are stored".
                let curve: Vec<(f64, f64)> =
                    job.core.history.iter().map(|s| (s.epoch as f64, s.metric_value)).collect();
                self.history.insert(job_record(&job.spec.config, curve, job.core.epochs_run));
            }
            None => job.core.status = JobStatus::Active,
        }
    }

    /// Handles an injected epoch crash: the in-flight epoch is lost, the
    /// device is freed, and the job either backs off for a retry (rolling
    /// back to its last durable checkpoint) or — with retries exhausted —
    /// fails permanently, archiving whatever curve it did produce.
    fn fail_epoch(
        &mut self,
        i: usize,
        job: &mut RunJob,
        now: SimTime,
        pool: &mut GpuPool,
        metrics: &mut WorkloadMetrics,
        events: &mut EventQueue<Event>,
    ) {
        let device = pool.vacate(job.core.id).expect("crashed job must occupy a device");
        job.fault_attempts += 1;
        let epoch = job.core.epochs_run + 1;
        let attempts = job.fault_attempts;
        metrics.record_span(PlacementSpan {
            job: job.core.id,
            resource: format!("gpu{device}"),
            start: job.epoch_start,
            end: now,
            attained_at_end: false,
        });
        job.core.record_lost_epoch(RotaryError::EpochFailed {
            job: job.core.id.0,
            epoch,
            attempts,
        });
        let counters = metrics.recovery_of(job.core.id);
        counters.crashes += 1;
        counters.epochs_lost += 1;
        // Device state died with the crash: the next launch restores from
        // the last durable checkpoint.
        job.in_memory = false;
        match self.config.faults.retry().evaluate(job.core.id.0, epoch, attempts) {
            Ok(backoff) => {
                job.core.retries += 1;
                metrics.recovery_of(job.core.id).retries += 1;
                job.core.status = JobStatus::Recovering;
                events.schedule(now + backoff, Event::RetryReady(i));
            }
            Err(e) => {
                job.core.failure = Some(e);
                job.core.finish(JobStatus::Failed, now);
                if job.core.epochs_run > 0 {
                    // Partial curves are still valid history for estimators.
                    let curve: Vec<(f64, f64)> =
                        job.core.history.iter().map(|s| (s.epoch as f64, s.metric_value)).collect();
                    self.history.insert(job_record(&job.spec.config, curve, job.core.epochs_run));
                }
            }
        }
    }

    /// Ranks arbitrable job indices per the policy.
    #[allow(clippy::too_many_arguments)]
    fn rank(
        &self,
        jobs: &mut [RunJob],
        indices: Vec<usize>,
        now: SimTime,
        policy: DltPolicy,
        meter: &mut OverheadMeter,
        rr_cursor: &mut usize,
    ) -> Vec<usize> {
        match policy {
            DltPolicy::Rotary(objective) => {
                // Algorithm 3 on explicit total-order keys: the phase is
                // decided over the WHOLE workload (efficiency once every job
                // reaches T progress or is considered converged), then
                // arbitrable jobs sort under that phase — lowest current
                // progress first in the fairness phase, highest estimated
                // next-epoch progress first in the efficiency phase, FIFO
                // (arrival, then id) breaking ties.
                let threshold = objective.threshold();
                let efficiency = jobs.iter().all(|j| Self::phase_satisfied(j, threshold));

                // Trial phase: never-run jobs go first (FIFO) so estimates
                // get real-time grounding.
                let (trial, rest): (Vec<usize>, Vec<usize>) =
                    indices.into_iter().partition(|&i| jobs[i].core.epochs_run == 0);
                let mut keyed: Vec<((OrdF64, SimTime), usize)> = rest
                    .into_iter()
                    .map(|i| {
                        let key = if efficiency {
                            let phi_hat = Self::progress_at(
                                &jobs[i],
                                jobs[i].core.epochs_run + 1,
                                None,
                                now,
                                meter,
                            );
                            // Negated: highest estimated progress first.
                            OrdF64::new(-phi_hat)
                        } else {
                            OrdF64::new(jobs[i].core.progress())
                        };
                        ((key, jobs[i].core.arrival), i)
                    })
                    .collect();
                keyed.sort_unstable();
                trial.into_iter().chain(keyed.into_iter().map(|(_, i)| i)).collect()
            }
            DltPolicy::Srf | DltPolicy::Bcf | DltPolicy::Laf => {
                // Priority group by criterion family, round-robin the rest.
                let group_key = |spec: &DltJobSpec| -> Option<f64> {
                    match (&spec.criterion, policy) {
                        (CompletionCriterion::Runtime { runtime }, DltPolicy::Srf) => {
                            // Shortest *runtime* first: commensurate epoch
                            // and time budgets via the job's own epoch cost.
                            Some(match runtime {
                                rotary_core::criteria::Deadline::Epochs(e) => {
                                    *e as f64 * spec.config.epoch_time(1.0).as_secs_f64()
                                }
                                rotary_core::criteria::Deadline::Time(t) => t.as_secs_f64(),
                            })
                        }
                        (CompletionCriterion::Convergence { delta, .. }, DltPolicy::Bcf) => {
                            Some(-*delta)
                        }
                        (CompletionCriterion::Accuracy { threshold, .. }, DltPolicy::Laf) => {
                            Some(*threshold)
                        }
                        _ => None,
                    }
                };
                let mut priority: Vec<(usize, f64)> = Vec::new();
                let mut rest: Vec<usize> = Vec::new();
                for &i in &indices {
                    match group_key(&jobs[i].spec) {
                        Some(k) => priority.push((i, k)),
                        None => rest.push(i),
                    }
                }
                priority.sort_by_key(|&(i, k)| (OrdF64::new(k), i));
                rest.sort_unstable();
                if !rest.is_empty() {
                    let n = rest.len();
                    rest.rotate_left(*rr_cursor % n);
                    *rr_cursor = (*rr_cursor + 1) % n;
                }
                priority.into_iter().map(|(i, _)| i).chain(rest).collect()
            }
        }
    }

    /// Algorithm 3's per-job phase predicate: the job no longer holds the
    /// workload in the fairness phase.
    fn phase_satisfied(j: &RunJob, threshold: f64) -> bool {
        j.core.progress() >= threshold || j.converged_flag || j.core.status.is_terminal()
    }

    /// Whether the job's estimated next-epoch progress φ̂ depends on the
    /// clock (time-budget runtime criteria) rather than on job state alone.
    /// Such keys cannot stand in an index between events; they are re-keyed
    /// fresh at every efficiency-phase pass.
    fn phi_hat_is_dynamic(j: &RunJob) -> bool {
        matches!(
            &j.spec.criterion,
            CompletionCriterion::Runtime { runtime: rotary_core::criteria::Deadline::Time(_) }
        )
    }

    /// First-touch build of the control-plane caches: decides whether the
    /// indexed path is active and, if so, keys every job.
    fn build_dlt_caches(
        &self,
        arb: &mut DltArbCaches,
        jobs: &[RunJob],
        policy: DltPolicy,
        now: SimTime,
        meter: &mut OverheadMeter,
    ) {
        arb.built = true;
        arb.enabled = !self.config.dense_control_plane && matches!(policy, DltPolicy::Rotary(_));
        if !arb.enabled {
            return;
        }
        let DltPolicy::Rotary(objective) = policy else { unreachable!("enabled implies Rotary") };
        arb.trial.clear();
        arb.fair.clear();
        arb.eff.clear();
        arb.eff_dynamic.clear();
        arb.satisfied = vec![false; jobs.len()];
        arb.n_satisfied = 0;
        arb.dirty.clear();
        arb.memo.invalidate();
        let threshold = objective.threshold();
        for i in 0..jobs.len() {
            Self::dlt_refresh_job(arb, jobs, i, threshold, now, meter);
        }
        // A build absorbs marks that were dropped while the caches were
        // down (the event preceding a lazy rebuild after a durable restore
        // fires before `enabled` is known): every job is a metrics
        // candidate for the next row; the recorder's bit-compare drops the
        // unchanged ones.
        arb.touched = (0..jobs.len() as u32).collect();
    }

    /// Re-derives one job's control-plane entries from its current state:
    /// the phase-predicate counter, trial membership, and the standing
    /// fairness/efficiency keys. Idempotent; O(log n).
    fn dlt_refresh_job(
        arb: &mut DltArbCaches,
        jobs: &[RunJob],
        i: usize,
        threshold: f64,
        now: SimTime,
        meter: &mut OverheadMeter,
    ) {
        let id = i as u32;
        let j = &jobs[i];
        let sat = Self::phase_satisfied(j, threshold);
        if sat != arb.satisfied[i] {
            arb.satisfied[i] = sat;
            if sat {
                arb.n_satisfied += 1;
            } else {
                arb.n_satisfied -= 1;
            }
        }
        if !j.core.status.is_arbitrable() {
            arb.trial.remove(&id);
            arb.fair.remove(id);
            arb.eff.remove(id);
            arb.eff_dynamic.remove(&id);
            return;
        }
        if j.core.epochs_run == 0 {
            // Trial phase: FIFO by id, no keys needed.
            arb.trial.insert(id);
            arb.fair.remove(id);
            arb.eff.remove(id);
            arb.eff_dynamic.remove(&id);
            return;
        }
        arb.trial.remove(&id);
        arb.fair.upsert(id, (OrdF64::new(j.core.progress()), j.core.arrival));
        if Self::phi_hat_is_dynamic(j) {
            arb.eff.remove(id);
            arb.eff_dynamic.insert(id);
        } else {
            let phi_hat = Self::progress_at(j, j.core.epochs_run + 1, None, now, meter);
            // Negated: highest estimated progress first.
            arb.eff.upsert(id, (OrdF64::new(-phi_hat), j.core.arrival));
            arb.eff_dynamic.remove(&id);
        }
    }

    /// Merges two ascending `((key, arrival), id)` streams into one
    /// ascending id stream — the standing efficiency order and the
    /// freshly-keyed clock-dependent jobs.
    fn merge_orders<'a>(
        a: impl Iterator<Item = ((OrdF64, SimTime), u32)> + 'a,
        b: impl Iterator<Item = ((OrdF64, SimTime), u32)> + 'a,
    ) -> impl Iterator<Item = usize> + 'a {
        let mut a = a.peekable();
        let mut b = b.peekable();
        std::iter::from_fn(move || {
            let take_a = match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => x <= y,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return None,
            };
            let (_, id) = if take_a { a.next()? } else { b.next()? };
            Some(id as usize)
        })
    }

    /// Walks the priority order, placing every job that fits a free device
    /// (Algorithm 3's m̂ ≤ M_d test, last-device affinity first). Returns
    /// the placed job indices and the jobs whose launch OOM-failed (their
    /// memory estimate was corrected in place). Breaks out as soon as the
    /// pool has no free device: every remaining iteration would no-op, and
    /// placement is the only way free devices shrink.
    #[allow(clippy::too_many_arguments)]
    fn place_jobs(
        &self,
        jobs: &mut [RunJob],
        order: impl Iterator<Item = usize>,
        now: SimTime,
        pool: &mut GpuPool,
        events: &mut EventQueue<Event>,
        metrics: &mut WorkloadMetrics,
        spike: u64,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut placed: Vec<usize> = Vec::new();
        let mut oom: Vec<usize> = Vec::new();
        for i in order {
            if pool.free_devices().is_empty() {
                break;
            }
            let estimate = jobs[i].memory_estimate_mb.saturating_add(spike);
            // Prefer the device the job last ran on (its state may still be
            // resident); otherwise first fit (Algorithm 3's m̂ ≤ M_d test).
            let device = match jobs[i].last_device {
                Some(d)
                    if pool.device_of(jobs[i].core.id).is_none()
                        && pool.free_devices().contains(&d)
                        && self.config.pool.devices[d].memory_mb >= estimate =>
                {
                    Some(d)
                }
                _ => pool.first_fit(estimate),
            };
            let Some(device) = device else { continue };
            pool.place(jobs[i].core.id, device);
            placed.push(i);

            let job = &mut jobs[i];
            // OOM: the estimate under-shot the device and the true footprint
            // does not fit. The launch fails fast, the system learns the
            // real footprint, and the job returns to the queue.
            if self.config.pool.devices[device].memory_mb < job.true_memory_mb {
                job.memory_estimate_mb = job.true_memory_mb;
                job.core.checkpoints += 1;
                pool.vacate(job.core.id).expect("OOM job was placed just above");
                placed.pop();
                oom.push(i);
                continue;
            }

            let speed = self.config.pool.devices[device].speed;
            let mut duration = job.spec.config.epoch_time(speed);
            if job.core.epochs_run == 0 {
                duration += CUDA_WARMUP;
            }
            let same_device = job.last_device == Some(device);
            if job.core.epochs_run > 0 && (!job.in_memory || !same_device) {
                let mut restore = self.config.checkpoint.restore_cost(job.true_memory_mb);
                job.restores += 1;
                if self.config.faults.restore(job.core.id.0, job.restores).is_err() {
                    // A corrupt read is retried from the replica; the job
                    // pays the restore path twice.
                    restore += self.config.checkpoint.restore_cost(job.true_memory_mb);
                    metrics.recovery_of(job.core.id).restore_failures += 1;
                }
                duration += restore;
            }
            job.in_memory = true;
            job.last_device = Some(device);
            job.epoch_start = now;
            job.core.status = JobStatus::Running;
            match self.config.faults.epoch_fault(
                job.core.id.0,
                job.core.epochs_run + 1,
                job.fault_attempts,
            ) {
                EpochFault::Crash { wasted_fraction } => {
                    // The epoch dies partway through: the device burns the
                    // wasted span, the training work never lands.
                    job.in_memory = false;
                    events.schedule(now + duration.scale(wasted_fraction), Event::EpochFailed(i));
                }
                EpochFault::Straggler { slowdown } => {
                    metrics.recovery_of(job.core.id).stragglers += 1;
                    events.schedule(now + duration.scale(slowdown), Event::EpochDone(i));
                }
                EpochFault::None => {
                    events.schedule(now + duration, Event::EpochDone(i));
                }
            }
        }
        (placed, oom)
    }

    /// A job that just finished an epoch but was not re-placed is
    /// checkpointed to disk.
    fn pause_if_idle(&self, job: &mut RunJob, metrics: &mut WorkloadMetrics) {
        if job.core.status == JobStatus::Active && job.in_memory {
            job.in_memory = false;
            job.core.checkpoints += 1;
            job.ckpt_writes += 1;
            if self.config.faults.checkpoint_write(job.core.id.0, job.ckpt_writes).is_err() {
                // The write is retried against the replica off the
                // critical path; only the failure is recorded.
                metrics.recovery_of(job.core.id).checkpoint_failures += 1;
            }
            job.core.status = JobStatus::Checkpointed;
        }
    }

    /// If transient pressure (and nothing else) is what kept a queued job
    /// off an otherwise-fitting device, make sure the system re-arbitrates
    /// when the pressure slot ends — the event queue may otherwise drain.
    fn schedule_wake_if_blocked(
        &self,
        jobs: &[RunJob],
        now: SimTime,
        pool: &GpuPool,
        events: &mut EventQueue<Event>,
        spike: u64,
    ) {
        if spike > 0 {
            let blocked = jobs.iter().any(|j| {
                j.core.status.is_arbitrable() && pool.first_fit(j.memory_estimate_mb).is_some()
            });
            if blocked {
                let slot_ms = self.config.faults.config().mem_spike_slot.as_millis().max(1);
                let boundary = SimTime::from_millis((now.as_millis() / slot_ms + 1) * slot_ms);
                events.schedule(boundary, Event::Wake);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn arbitrate(
        &mut self,
        jobs: &mut [RunJob],
        now: SimTime,
        pool: &mut GpuPool,
        events: &mut EventQueue<Event>,
        metrics: &mut WorkloadMetrics,
        policy: DltPolicy,
        meter: &mut OverheadMeter,
        rr_cursor: &mut usize,
        arb: &mut DltArbCaches,
        ckpt_candidate: Option<usize>,
    ) {
        // Transient co-located pressure shrinks what a device can host this
        // slot; zero under an inert plan.
        let spike = self.config.faults.memory_pressure_mb(now);
        if !arb.built {
            self.build_dlt_caches(arb, jobs, policy, now, meter);
        }
        if arb.enabled {
            self.arbitrate_indexed(
                jobs,
                now,
                pool,
                events,
                metrics,
                policy,
                meter,
                arb,
                ckpt_candidate,
                spike,
            );
            return;
        }

        // Dense control plane: full re-rank per event (the baselines'
        // round-robin cursor requires it; the Rotary policy keeps it
        // reachable as the oracle behind `dense_control_plane`).
        let arbitrable: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.core.status.is_arbitrable())
            .map(|(i, _)| i)
            .collect();
        if arbitrable.is_empty() {
            return;
        }
        let ranked = self.rank(jobs, arbitrable, now, policy, meter, rr_cursor);
        let _ = self.place_jobs(jobs, ranked.into_iter(), now, pool, events, metrics, spike);

        // Jobs that just finished an epoch but were not re-placed are
        // checkpointed to disk.
        for job in jobs.iter_mut() {
            self.pause_if_idle(job, metrics);
        }
        self.schedule_wake_if_blocked(jobs, now, pool, events, spike);
    }

    /// The indexed control plane: re-keys only dirtied jobs, reads the
    /// standing order for the current phase, and memoizes the decision when
    /// nothing changed.
    #[allow(clippy::too_many_arguments)]
    fn arbitrate_indexed(
        &self,
        jobs: &mut [RunJob],
        now: SimTime,
        pool: &mut GpuPool,
        events: &mut EventQueue<Event>,
        metrics: &mut WorkloadMetrics,
        policy: DltPolicy,
        meter: &mut OverheadMeter,
        arb: &mut DltArbCaches,
        ckpt_candidate: Option<usize>,
        spike: u64,
    ) {
        let DltPolicy::Rotary(objective) = policy else { return };
        let threshold = objective.threshold();
        let dirty = std::mem::take(&mut arb.dirty);
        for &id in &dirty {
            Self::dlt_refresh_job(arb, jobs, id as usize, threshold, now, meter);
        }
        // `fair` and `eff ∪ eff_dynamic` hold exactly the warm arbitrable
        // jobs, `trial` the cold ones — together, the dense path's
        // arbitrable filter.
        if arb.trial.is_empty() && arb.fair.is_empty() {
            return;
        }
        // Decision memo. Only consulted at zero pressure: a hit while a
        // spike is active would skip re-scheduling the wake at the next
        // pressure-slot boundary and the queue could drain with jobs still
        // blocked. At spike == 0 the previous identical pass proved every
        // queued job unplaceable, and the wake tail is a no-op anyway.
        if dirty.is_empty() && spike == 0 {
            let fingerprint = DltFingerprint { free_devices: pool.free_devices(), spike };
            if arb.memo.hit(&fingerprint) {
                return;
            }
        }
        let efficiency = arb.n_satisfied == jobs.len();
        let (placed, oom) = if efficiency {
            // Clock-dependent φ̂ keys cannot stand in the index; key them
            // fresh and merge with the standing order.
            let mut dyn_keyed: Vec<((OrdF64, SimTime), u32)> = arb
                .eff_dynamic
                .iter()
                .map(|&id| {
                    let j = &jobs[id as usize];
                    let phi_hat = Self::progress_at(j, j.core.epochs_run + 1, None, now, meter);
                    ((OrdF64::new(-phi_hat), j.core.arrival), id)
                })
                .collect();
            dyn_keyed.sort_unstable();
            let order = arb
                .trial
                .iter()
                .map(|&id| id as usize)
                .chain(Self::merge_orders(arb.eff.iter(), dyn_keyed.into_iter()));
            self.place_jobs(jobs, order, now, pool, events, metrics, spike)
        } else {
            let order = arb
                .trial
                .iter()
                .map(|&id| id as usize)
                .chain(arb.fair.iter().map(|(_, id)| id as usize));
            self.place_jobs(jobs, order, now, pool, events, metrics, spike)
        };
        // Placed jobs left the arbitrable set (Running) and OOM launches
        // corrected their memory estimate: both must be re-examined before
        // the next pass can trust the standing state.
        for &i in placed.iter().chain(oom.iter()) {
            arb.mark(i);
        }
        if let Some(i) = ckpt_candidate {
            self.pause_if_idle(&mut jobs[i], metrics);
        }
        arb.memo.store(DltFingerprint { free_devices: pool.free_devices(), spike });
        self.schedule_wake_if_blocked(jobs, now, pool, events, spike);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{fig11_microbenchmark, DltWorkloadBuilder};

    fn quick() -> DltSystemConfig {
        DltSystemConfig { seed: 5, ..Default::default() }
    }

    #[test]
    fn all_jobs_terminate() {
        let specs = DltWorkloadBuilder::paper().jobs(12).seed(3).build();
        for policy in DltPolicy::all() {
            let mut sys = DltSystem::new(quick());
            let r = sys.run(&specs, policy);
            for (spec, state) in &r.jobs {
                assert!(
                    state.status.is_terminal(),
                    "{} left {} in {:?}",
                    r.policy,
                    spec.config.arch,
                    state.status
                );
                assert!(state.epochs_run <= spec.max_epochs());
            }
            assert!(r.makespan > SimTime::ZERO);
        }
    }

    /// Drives a streaming run: each spec is admitted once the run's clock
    /// is about to pass its arrival time, then the queue drains. Returns
    /// every job's terminal outcome in index order.
    fn stream_run(
        sys: &mut DltSystem,
        arrivals: &[(SimTime, DltJobSpec)],
        policy: DltPolicy,
    ) -> Vec<(usize, JobStatus, SimTime)> {
        let mut run = sys.serve_start(policy);
        let mut done = Vec::new();
        for (at, spec) in arrivals {
            while sys.serve_peek(&run).is_some_and(|t| t < *at) {
                sys.serve_step(&mut run);
                done.extend(sys.serve_drain_finished(&mut run));
            }
            sys.serve_admit(&mut run, spec.clone(), *at);
        }
        while sys.serve_step(&mut run) {
            done.extend(sys.serve_drain_finished(&mut run));
        }
        done.extend(sys.serve_drain_finished(&mut run));
        done.sort_by_key(|&(i, _, _)| i);
        done
    }

    #[test]
    fn streaming_admission_at_zero_matches_batch_run() {
        // Admitting the whole workload at t = 0 through the serve seam
        // must reproduce the batch run exactly: same statuses, same
        // finish times (the Wake events it adds are no-ops).
        let specs = DltWorkloadBuilder::paper().jobs(6).seed(3).build();
        let policy = DltPolicy::Rotary(Objective::Threshold(0.5));
        let batch = DltSystem::new(quick()).run(&specs, policy);
        let arrivals: Vec<(SimTime, DltJobSpec)> =
            specs.iter().map(|s| (SimTime::ZERO, s.clone())).collect();
        let streamed = stream_run(&mut DltSystem::new(quick()), &arrivals, policy);
        assert_eq!(streamed.len(), specs.len());
        for (i, status, at) in streamed {
            let (_, state) = &batch.jobs[i];
            assert_eq!(status, state.status, "job {i}");
            assert_eq!(Some(at), state.finished_at, "job {i}");
        }
    }

    #[test]
    fn mid_run_admission_grows_indexed_caches_consistently() {
        // Jobs admitted mid-run must be arbitrated from their admission
        // instant on, and the indexed control plane (whose `satisfied`
        // vector and standing orders grow in place) must agree with the
        // dense full-scan path outcome for outcome.
        let specs = DltWorkloadBuilder::paper().jobs(5).seed(7).build();
        let policy = DltPolicy::Rotary(Objective::Threshold(0.5));
        let mut arrivals: Vec<(SimTime, DltJobSpec)> =
            specs.iter().map(|s| (SimTime::ZERO, s.clone())).collect();
        arrivals[3].0 = SimTime::from_secs(120);
        arrivals[4].0 = SimTime::from_secs(600);
        let streamed = stream_run(&mut DltSystem::new(quick()), &arrivals, policy);
        let dense_cfg = DltSystemConfig { dense_control_plane: true, ..quick() };
        let dense = stream_run(&mut DltSystem::new(dense_cfg), &arrivals, policy);
        assert_eq!(streamed, dense, "indexed cache growth diverged from dense");
        assert_eq!(streamed.len(), specs.len());
        for (i, status, at) in &streamed {
            assert!(status.is_terminal(), "job {i} ended {status:?}");
            assert!(*at >= arrivals[*i].0, "job {i} finished before it arrived");
        }
    }

    #[test]
    fn streaming_snapshot_restores_to_identical_outcomes() {
        let specs = DltWorkloadBuilder::paper().jobs(4).seed(13).build();
        let policy = DltPolicy::Rotary(Objective::Threshold(0.5));
        let mut sys = DltSystem::new(quick());
        let mut run = sys.serve_start(policy);
        for spec in &specs {
            sys.serve_admit(&mut run, spec.clone(), SimTime::ZERO);
        }
        for _ in 0..30 {
            assert!(sys.serve_step(&mut run), "run ended before the snapshot point");
        }
        let drained_before = sys.serve_drain_finished(&mut run);
        let records = sys.serve_snapshot(&run, 1).expect("snapshot");
        let kept_specs = run.specs().to_vec();

        fn finish(sys: &mut DltSystem, run: &mut DltServeRun) -> Vec<(usize, JobStatus, SimTime)> {
            let mut done = Vec::new();
            while sys.serve_step(run) {
                done.extend(sys.serve_drain_finished(run));
            }
            done.extend(sys.serve_drain_finished(run));
            done.sort_by_key(|&(i, _, _)| i);
            done
        }
        let original_tail = finish(&mut sys, &mut run);

        let mut sys2 = DltSystem::new(quick());
        let mut resumed = sys2.serve_restore(kept_specs, policy, &records).expect("restore");
        assert_eq!(sys2.serve_inflight(&resumed), specs.len() - drained_before.len());
        let resumed_tail = finish(&mut sys2, &mut resumed);
        assert_eq!(original_tail, resumed_tail, "resumed outcomes diverged");
        assert_eq!(original_tail.len() + drained_before.len(), specs.len());
    }

    #[test]
    fn runtime_jobs_always_attain_exactly_their_budget() {
        let specs = DltWorkloadBuilder::paper().jobs(24).seed(9).build();
        let mut sys = DltSystem::new(quick());
        let r = sys.run(&specs, DltPolicy::Rotary(Objective::Efficiency));
        for (spec, state) in &r.jobs {
            if let CompletionCriterion::Runtime { runtime } = &spec.criterion {
                assert_eq!(state.status, JobStatus::Attained);
                assert_eq!(state.epochs_run, runtime.epochs().unwrap());
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let specs = DltWorkloadBuilder::paper().jobs(10).seed(4).build();
        let mut s1 = DltSystem::new(quick());
        let r1 = s1.run(&specs, DltPolicy::Rotary(Objective::Threshold(0.5)));
        let mut s2 = DltSystem::new(quick());
        let r2 = s2.run(&specs, DltPolicy::Rotary(Objective::Threshold(0.5)));
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.summary, r2.summary);
    }

    #[test]
    fn fairness_pushes_minimum_progress_faster_than_efficiency() {
        let specs = DltWorkloadBuilder::paper().jobs(16).seed(11).build();
        let mut fair_sys = DltSystem::new(quick());
        fair_sys.prepopulate_history(&specs, 77);
        let fair = fair_sys.run(&specs, DltPolicy::Rotary(Objective::Fairness));
        let mut eff_sys = DltSystem::new(quick());
        eff_sys.prepopulate_history(&specs, 77);
        let eff = eff_sys.run(&specs, DltPolicy::Rotary(Objective::Efficiency));

        // At the quarter-makespan mark, fairness should have a higher
        // minimum attainment progress; efficiency should have completed at
        // least as many jobs by the same (absolute) time.
        let t = SimTime::from_millis(fair.makespan.as_millis() / 4);
        let min_fair = fair.attainment_progress_at(t).into_iter().fold(f64::INFINITY, f64::min);
        let min_eff = eff.attainment_progress_at(t).into_iter().fold(f64::INFINITY, f64::min);
        assert!(min_fair >= min_eff, "fairness min progress {min_fair} < efficiency {min_eff}");
        assert!(eff.attained_by(t) >= fair.attained_by(t));
    }

    #[test]
    fn gpu_count_speeds_up_the_workload() {
        let specs = DltWorkloadBuilder::paper().jobs(12).seed(6).build();
        let mut small = DltSystem::new(DltSystemConfig {
            pool: GpuPoolSpec::homogeneous(2, 8 * 1024),
            ..quick()
        });
        let r2 = small.run(&specs, DltPolicy::Rotary(Objective::Efficiency));
        let mut big = DltSystem::new(DltSystemConfig {
            pool: GpuPoolSpec::homogeneous(8, 8 * 1024),
            ..quick()
        });
        let r8 = big.run(&specs, DltPolicy::Rotary(Objective::Efficiency));
        assert!(r8.makespan < r2.makespan, "8 GPUs {} !< 2 GPUs {}", r8.makespan, r2.makespan);
    }

    /// Deterministic probe: ticks one microsecond per read, so the meter
    /// charges exactly one tick per measured call.
    fn test_probe() -> std::time::Duration {
        use std::sync::atomic::{AtomicU64, Ordering};
        static TICKS: AtomicU64 = AtomicU64::new(0);
        std::time::Duration::from_micros(TICKS.fetch_add(1, Ordering::Relaxed))
    }

    #[test]
    fn overheads_are_measured_when_probed_and_small() {
        let specs = DltWorkloadBuilder::paper().jobs(10).seed(2).build();
        let mut sys =
            DltSystem::new(DltSystemConfig { overhead_probe: Some(test_probe), ..quick() });
        sys.prepopulate_history(&specs, 5);
        let r = sys.run(&specs, DltPolicy::Rotary(Objective::Threshold(0.5)));
        // The estimators ran under the meter (one probe tick per call); a
        // 10-job workload makes only a bounded number of estimator calls —
        // the Table III "imperceptible overhead" claim in tick units.
        let total = r.overheads.tee + r.overheads.tme + r.overheads.ttr;
        assert!(total > std::time::Duration::ZERO);
        assert!(total < std::time::Duration::from_secs(1), "overhead {total:?}");
    }

    #[test]
    fn default_config_runs_without_wall_clock_overhead_probe() {
        let specs = DltWorkloadBuilder::paper().jobs(3).seed(2).build();
        let mut sys = DltSystem::new(quick());
        let r = sys.run(&specs, DltPolicy::Srf);
        let total = r.overheads.tee + r.overheads.tme + r.overheads.ttr;
        assert_eq!(total, std::time::Duration::ZERO, "inert meter must charge nothing");
    }

    #[test]
    fn history_accumulates_completed_jobs() {
        let specs = DltWorkloadBuilder::paper().jobs(6).seed(8).build();
        let mut sys = DltSystem::new(quick());
        assert!(sys.history().is_empty());
        sys.run(&specs, DltPolicy::Srf);
        assert_eq!(sys.history().len(), 6);
    }

    #[test]
    fn fig11_jobs_complete_under_both_estimation_regimes() {
        // The paper contends eight jobs; two devices keep the queue deep
        // enough that rank position translates into placement delay.
        let contended =
            || DltSystemConfig { pool: GpuPoolSpec::homogeneous(2, 8 * 1024), ..quick() };
        let specs = fig11_microbenchmark();
        // Reliable estimation: history contains everything.
        let mut good = DltSystem::new(contended());
        good.prepopulate_history(&specs, 31);
        let with = good.run(&specs, DltPolicy::Rotary(Objective::Efficiency));
        // Erroneous estimation: NLP history stripped.
        let mut bad = DltSystem::new(contended());
        bad.prepopulate_history(&specs, 31);
        bad.history_mut().remove_where(|r| r.label.contains("LSTM") || r.label.contains("BERT"));
        let without = bad.run(&specs, DltPolicy::Rotary(Objective::Efficiency));
        for r in [&with, &without] {
            assert!(r.jobs.iter().all(|(_, s)| s.status.is_terminal()));
        }
        // The NLP jobs (indices 4, 5, 6) finish no later under reliable
        // estimation.
        let finish = |r: &DltRunResult, i: usize| r.jobs[i].1.finished_at.unwrap();
        let avg_with: u64 = (4..=6).map(|i| finish(&with, i).as_millis()).sum::<u64>() / 3;
        let avg_without: u64 = (4..=6).map(|i| finish(&without, i).as_millis()).sum::<u64>() / 3;
        assert!(
            avg_with <= avg_without,
            "reliable estimation should finish NLP jobs earlier: {avg_with} vs {avg_without}"
        );
    }

    #[test]
    fn unplaceable_jobs_are_rejected_not_stranded() {
        use crate::models::{Architecture, Optimizer};
        use crate::simulator::TrainingConfig;
        use rotary_core::criteria::{CompletionCriterion as C, Deadline};
        // A batch far beyond the Table II spaces: activations alone exceed
        // every 8 GB device.
        let monster = DltJobSpec {
            config: TrainingConfig {
                arch: Architecture::Vgg16,
                batch_size: 4096,
                optimizer: Optimizer::Adam,
                learning_rate: 0.001,
                pretrained: false,
            },
            criterion: C::Runtime { runtime: Deadline::Epochs(5) },
        };
        let normal = DltWorkloadBuilder::paper().jobs(3).seed(1).build();
        let mut specs = vec![monster];
        specs.extend(normal);
        let mut sys = DltSystem::new(quick());
        let r = sys.run(&specs, DltPolicy::Rotary(Objective::Efficiency));
        assert_eq!(r.jobs[0].1.status, JobStatus::DeadlineMissed, "monster rejected");
        assert_eq!(r.jobs[0].1.epochs_run, 0);
        // The rest of the workload is unaffected.
        assert!(r.jobs[1..].iter().all(|(_, s)| s.status.is_terminal()));
        assert_eq!(r.summary.unfinished, 0);
    }

    fn temp_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rotary-dlt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_halt_and_resume_matches_plain_run() {
        let specs = DltWorkloadBuilder::paper().jobs(6).seed(17).build();
        let mut plain = DltSystem::new(quick());
        let baseline = plain.run(&specs, DltPolicy::Rotary(Objective::Threshold(0.5)));
        let expected = baseline.metrics.to_json().unwrap();

        let dir = temp_store("halt-resume");
        let mut cfg = DurableConfig::new(&dir, 3);
        cfg.halt_after = Some(2);
        let mut sys = DltSystem::new(quick());
        let halted = sys.run_durable(&specs, DltPolicy::Rotary(Objective::Threshold(0.5)), &cfg);
        assert!(matches!(halted, Ok(DurableOutcome::Halted { generation: 2 })));

        cfg.halt_after = None;
        let mut resumed_sys = DltSystem::new(quick());
        let resumed = resumed_sys
            .resume_durable(&specs, DltPolicy::Rotary(Objective::Threshold(0.5)), &cfg)
            .unwrap()
            .completed()
            .expect("resume must run to completion");
        assert_eq!(resumed.metrics.to_json().unwrap(), expected);
        assert_eq!(resumed.makespan, baseline.makespan);
        assert_eq!(resumed.summary, baseline.summary);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_mismatched_policy() {
        let specs = DltWorkloadBuilder::paper().jobs(4).seed(3).build();
        let dir = temp_store("mismatch");
        let mut cfg = DurableConfig::new(&dir, 1);
        cfg.halt_after = Some(1);
        let mut sys = DltSystem::new(quick());
        sys.run_durable(&specs, DltPolicy::Srf, &cfg).unwrap();

        cfg.halt_after = None;
        let mut resumed_sys = DltSystem::new(quick());
        let err = resumed_sys.resume_durable(&specs, DltPolicy::Bcf, &cfg);
        assert!(matches!(err, Err(RotaryError::InvalidConfig(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dense_and_indexed_control_planes_match() {
        let specs = DltWorkloadBuilder::paper().jobs(10).seed(21).build();
        for objective in [Objective::Threshold(0.5), Objective::Fairness, Objective::Efficiency] {
            let policy = DltPolicy::Rotary(objective);
            let mut dense_sys =
                DltSystem::new(DltSystemConfig { dense_control_plane: true, ..quick() });
            dense_sys.prepopulate_history(&specs, 77);
            let dense = dense_sys.run(&specs, policy);
            let mut indexed_sys = DltSystem::new(quick());
            indexed_sys.prepopulate_history(&specs, 77);
            let indexed = indexed_sys.run(&specs, policy);
            assert_eq!(dense.makespan, indexed.makespan, "{}", policy.name());
            assert_eq!(dense.summary, indexed.summary, "{}", policy.name());
            assert_eq!(
                dense.metrics.to_json().expect("metrics json"),
                indexed.metrics.to_json().expect("metrics json"),
                "{} traces must be byte-identical",
                policy.name()
            );
        }
    }

    #[test]
    fn placements_are_recorded_per_gpu() {
        let specs = DltWorkloadBuilder::paper().jobs(8).seed(14).build();
        let mut sys = DltSystem::new(quick());
        let r = sys.run(&specs, DltPolicy::Rotary(Objective::Threshold(0.5)));
        assert!(!r.metrics.spans().is_empty());
        let gpus_used: std::collections::BTreeSet<&str> =
            r.metrics.spans().iter().map(|s| s.resource.as_str()).collect();
        assert!(gpus_used.len() >= 2, "multiple GPUs in use: {gpus_used:?}");
    }
}
