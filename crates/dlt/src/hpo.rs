//! Hyperparameter optimisation on top of Rotary-DLT — the paper's §I
//! motivating scenario ("a set of hyperparameter configurations are sampled
//! from a hyperparameter space and formed a number of training trials …
//! resource arbitration could stop the trials that contain unpromising
//! hyperparameter configurations prematurely"), in the style of the
//! Hyperband work the paper cites.
//!
//! [`SuccessiveHalving`] runs candidate configurations in rungs: every
//! trial gets the rung's epoch budget as a runtime-oriented completion
//! criterion, the arbitration system schedules the rung on the GPU pool,
//! and only the top `1/eta` of trials (by observed accuracy) are promoted
//! to the next rung with an `eta`-times larger budget. [`hyperband`] runs
//! several such brackets with different aggressiveness.
//!
//! Trial learning curves are deterministic per configuration, so a promoted
//! trial re-trained under a larger budget reproduces its earlier epochs —
//! equivalent to resuming from a checkpoint, which is how the arbitration
//! system would realise promotion in production.

use rotary_core::criteria::{CompletionCriterion, Deadline};
use rotary_core::SimTime;

use crate::simulator::TrainingConfig;
use crate::system::{DltPolicy, DltSystem};
use crate::workload::DltJobSpec;

/// The outcome of one finished trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// The configuration trained.
    pub config: TrainingConfig,
    /// Final observed validation accuracy.
    pub accuracy: f64,
    /// Epochs trained in its last rung.
    pub epochs: u64,
}

/// Statistics of one rung.
#[derive(Debug, Clone, PartialEq)]
pub struct RungSummary {
    /// Epoch budget every trial in the rung received.
    pub budget_epochs: u64,
    /// Trials that entered the rung.
    pub candidates: usize,
    /// Trials promoted out of it.
    pub survivors: usize,
    /// Virtual time the rung occupied the pool.
    pub makespan: SimTime,
}

/// The search's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct HpoOutcome {
    /// The best configuration found, with its final accuracy.
    pub best: TrialResult,
    /// Per-rung statistics, in execution order.
    pub rungs: Vec<RungSummary>,
    /// Total virtual time across all rungs.
    pub total_time: SimTime,
}

/// Successive halving over a candidate set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuccessiveHalving {
    /// Promotion factor: the top `1/eta` of each rung survives and the
    /// budget grows by `eta`. Must be ≥ 2.
    pub eta: usize,
    /// Epoch budget of the first rung.
    pub initial_epochs: u64,
    /// Budget cap: the search stops growing rungs past this.
    pub max_epochs: u64,
}

impl Default for SuccessiveHalving {
    fn default() -> Self {
        SuccessiveHalving { eta: 3, initial_epochs: 2, max_epochs: 32 }
    }
}

impl SuccessiveHalving {
    /// Runs the search on `system` under `policy`.
    ///
    /// # Panics
    /// Panics on an empty candidate set or `eta < 2` / zero budgets.
    pub fn run(
        &self,
        system: &mut DltSystem,
        candidates: &[TrainingConfig],
        policy: DltPolicy,
    ) -> HpoOutcome {
        assert!(!candidates.is_empty(), "need at least one candidate");
        assert!(self.eta >= 2, "eta must be at least 2");
        assert!(
            self.initial_epochs >= 1 && self.max_epochs >= self.initial_epochs,
            "budgets must be positive and ordered"
        );

        let mut alive: Vec<TrainingConfig> = candidates.to_vec();
        let mut budget = self.initial_epochs;
        let mut rungs = Vec::new();
        let mut total_time = SimTime::ZERO;

        let best = loop {
            let specs: Vec<DltJobSpec> = alive
                .iter()
                .map(|&config| DltJobSpec {
                    config,
                    criterion: CompletionCriterion::Runtime { runtime: Deadline::Epochs(budget) },
                })
                .collect();
            let run = system.run(&specs, policy);
            total_time += run.makespan;

            let mut results: Vec<TrialResult> = run
                .jobs
                .iter()
                .map(|(spec, state)| TrialResult {
                    config: spec.config,
                    accuracy: state.latest().map(|s| s.metric_value).unwrap_or(0.0),
                    epochs: state.epochs_run,
                })
                .collect();
            results.sort_by_key(|r| std::cmp::Reverse(rotary_core::arb::OrdF64::new(r.accuracy)));

            let survivors = if alive.len() == 1 { 1 } else { alive.len().div_ceil(self.eta) };
            rungs.push(RungSummary {
                budget_epochs: budget,
                candidates: alive.len(),
                survivors,
                makespan: run.makespan,
            });
            alive = results.iter().take(survivors).map(|r| r.config).collect();

            if alive.len() <= 1 || budget.saturating_mul(self.eta as u64) > self.max_epochs {
                break results.swap_remove(0);
            }
            budget = budget.saturating_mul(self.eta as u64);
        };

        HpoOutcome { best, rungs, total_time }
    }
}

/// Hyperband: several successive-halving brackets trading off breadth
/// (many candidates, small budgets) against depth (few candidates, large
/// budgets). Returns the best trial across brackets.
///
/// `candidates` is consumed bracket by bracket in chunks; a production
/// system would sample fresh configurations per bracket — callers control
/// that by how they build the slice.
pub fn hyperband(
    system: &mut DltSystem,
    candidates: &[TrainingConfig],
    max_epochs: u64,
    eta: usize,
    policy: DltPolicy,
) -> HpoOutcome {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let mut brackets = Vec::new();
    let mut budget = 2u64.max(max_epochs / (eta as u64).pow(2));
    while budget <= max_epochs {
        brackets.push(SuccessiveHalving { eta, initial_epochs: budget, max_epochs });
        budget = budget.saturating_mul(eta as u64);
    }
    let chunk = candidates.len().div_ceil(brackets.len().max(1)).max(1);
    let mut best: Option<TrialResult> = None;
    let mut rungs = Vec::new();
    let mut total_time = SimTime::ZERO;
    for (bracket, configs) in brackets.iter().zip(candidates.chunks(chunk)) {
        let outcome = bracket.run(system, configs, policy);
        total_time += outcome.total_time;
        rungs.extend(outcome.rungs);
        if best.as_ref().map(|b| outcome.best.accuracy > b.accuracy).unwrap_or(true) {
            best = Some(outcome.best);
        }
    }
    HpoOutcome { best: best.expect("at least one bracket ran"), rungs, total_time }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{Architecture, Optimizer};
    use crate::system::DltSystemConfig;
    use rotary_core::progress::Objective;

    fn lr_grid() -> Vec<TrainingConfig> {
        [0.1, 0.03, 0.01, 0.003, 0.001, 0.0003, 0.0001, 0.00001, 0.05, 0.005]
            .iter()
            .map(|&lr| TrainingConfig {
                arch: Architecture::MobileNet,
                batch_size: 32,
                optimizer: Optimizer::Sgd,
                learning_rate: lr,
                pretrained: false,
            })
            .collect()
    }

    fn system() -> DltSystem {
        DltSystem::new(DltSystemConfig { seed: 5, ..Default::default() })
    }

    #[test]
    fn sha_finds_the_sweet_spot() {
        let mut sys = system();
        let outcome = SuccessiveHalving::default().run(
            &mut sys,
            &lr_grid(),
            DltPolicy::Rotary(Objective::Efficiency),
        );
        // SGD's sweet spot is 0.01; the winner should be within a factor ~3.
        let lr = outcome.best.config.learning_rate;
        assert!((0.003..=0.05).contains(&lr), "winner lr {lr} far from the sweet spot");
        assert!(outcome.best.accuracy > 0.5);
        // Rungs shrink and budgets grow.
        for pair in outcome.rungs.windows(2) {
            assert!(pair[1].candidates <= pair[0].candidates);
            assert!(pair[1].budget_epochs >= pair[0].budget_epochs);
        }
        assert_eq!(outcome.rungs[0].candidates, 10);
        assert!(outcome.total_time > SimTime::ZERO);
    }

    #[test]
    fn sha_spends_far_less_than_exhaustive_search() {
        let grid = lr_grid();
        let mut sys = system();
        let sha = SuccessiveHalving { eta: 3, initial_epochs: 2, max_epochs: 18 }.run(
            &mut sys,
            &grid,
            DltPolicy::Rotary(Objective::Efficiency),
        );
        // Exhaustive: everyone trains to the full budget.
        let mut sys2 = system();
        let specs: Vec<DltJobSpec> = grid
            .iter()
            .map(|&config| DltJobSpec {
                config,
                criterion: CompletionCriterion::Runtime { runtime: Deadline::Epochs(18) },
            })
            .collect();
        let exhaustive = sys2.run(&specs, DltPolicy::Rotary(Objective::Efficiency));
        assert!(
            sha.total_time < exhaustive.makespan,
            "early stopping must save pool time: {} vs {}",
            sha.total_time,
            exhaustive.makespan
        );
    }

    #[test]
    fn single_candidate_short_circuits() {
        let mut sys = system();
        let grid = lr_grid();
        let outcome = SuccessiveHalving::default().run(&mut sys, &grid[..1], DltPolicy::Srf);
        assert_eq!(outcome.rungs.len(), 1);
        assert_eq!(outcome.best.config, grid[0]);
    }

    #[test]
    fn hyperband_runs_multiple_brackets() {
        let mut sys = system();
        let outcome =
            hyperband(&mut sys, &lr_grid(), 18, 3, DltPolicy::Rotary(Objective::Efficiency));
        assert!(outcome.rungs.len() >= 2, "several rungs across brackets");
        assert!(outcome.best.accuracy > 0.4);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panic() {
        let mut sys = system();
        let _ = SuccessiveHalving::default().run(&mut sys, &[], DltPolicy::Srf);
    }
}
