//! The deep-learning-training simulator — the TensorFlow stand-in.
//!
//! Rotary-DLT never inspects the training loop: it observes `(epoch,
//! accuracy)` pairs, per-step wall times, and GPU memory footprints. This
//! module emits all three with the qualitative behaviour of real training
//! (and of the paper's Fig. 1b): saturating accuracy curves with fast early
//! gains and a plateau, hyperparameter-dependent peaks and rates, per-step
//! times that grow with model and batch size, a CUDA warm-up spike on the
//! first step, and memory that is affine in the batch size.
//!
//! The curve model is `acc(e) = peak − (peak − start) · exp(−rate · e)`
//! with evaluation noise. `peak` and `rate` degrade as the learning rate
//! moves away from the optimizer's sweet spot (a log-normal effectiveness
//! kernel), so the randomized hyperparameters of Table II produce the full
//! range from well-tuned runs to barely-learning ones. Pre-trained models
//! (fine-tuning jobs) start high and converge in a handful of epochs.

use rotary_core::SimTime;
use rotary_sim::rng::{sample_normal, Rng};

use crate::models::{Architecture, Optimizer};

/// Standard deviation of the per-epoch evaluation noise.
const EVAL_NOISE_STD: f64 = 0.003;
/// Accuracy of an untrained 10-class classifier / fresh tagger.
const COLD_START_ACCURACY: f64 = 0.1;
/// CUDA warm-up cost of the very first training step of a job (the paper's
/// TTR discards this step).
pub const CUDA_WARMUP: SimTime = SimTime::from_millis(2000);

/// Hyperparameters of one training job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// The architecture.
    pub arch: Architecture,
    /// Mini-batch size.
    pub batch_size: u32,
    /// The optimizer.
    pub optimizer: Optimizer,
    /// The learning rate.
    pub learning_rate: f64,
    /// Fine-tuning from a pre-trained checkpoint.
    pub pretrained: bool,
}

impl TrainingConfig {
    /// How effective this hyperparameter combination is, in `(0, 1]`:
    /// a log-normal kernel around the optimizer's sweet-spot learning rate.
    pub fn effectiveness(&self) -> f64 {
        let sweet = self.optimizer.sweet_spot_lr();
        let distance = (self.learning_rate / sweet).ln();
        // One order of magnitude off ≈ 0.66, two ≈ 0.19.
        let sigma = std::f64::consts::LN_10 * 1.1;
        (-(distance * distance) / (2.0 * sigma * sigma)).exp()
    }

    /// The accuracy this configuration converges to (noise-free).
    pub fn effective_peak(&self) -> f64 {
        let p = self.arch.profile();
        // Badly tuned jobs plateau well below the architecture's potential.
        p.peak_accuracy * (0.45 + 0.55 * self.effectiveness())
    }

    /// Per-epoch convergence rate (noise-free).
    pub fn effective_rate(&self) -> f64 {
        let p = self.arch.profile();
        let pretrain_boost = if self.pretrained { 4.0 } else { 1.0 };
        (p.base_rate * (0.3 + 0.7 * self.effectiveness()) * pretrain_boost).max(1e-3)
    }

    /// Starting accuracy (epoch 0).
    pub fn start_accuracy(&self) -> f64 {
        if self.pretrained {
            // A pre-trained checkpoint is already most of the way there.
            0.8 * self.effective_peak()
        } else {
            COLD_START_ACCURACY
        }
    }

    /// The noise-free accuracy after `epoch` epochs.
    pub fn accuracy_curve(&self, epoch: u64) -> f64 {
        let peak = self.effective_peak();
        let start = self.start_accuracy();
        peak - (peak - start) * (-self.effective_rate() * epoch as f64).exp()
    }

    /// The (noise-free) number of epochs to reach `target` accuracy, or
    /// `None` if the configuration plateaus below it.
    pub fn epochs_to_accuracy(&self, target: f64) -> Option<u64> {
        let peak = self.effective_peak();
        let start = self.start_accuracy();
        if target <= start {
            return Some(0);
        }
        // Leave room for evaluation noise: a target within one noise band
        // of the asymptote is effectively unreachable.
        if target >= peak - 2.0 * EVAL_NOISE_STD {
            return None;
        }
        let e = -((peak - target) / (peak - start)).ln() / self.effective_rate();
        Some(e.ceil().max(0.0) as u64)
    }

    /// Peak GPU memory of this job, in MB: weights + gradients + optimizer
    /// state (4 bytes per parameter each) + activations (affine in batch
    /// size) + framework/CUDA overhead.
    pub fn memory_mb(&self) -> u64 {
        let p = self.arch.profile();
        let param_copies = 2.0 + self.optimizer.state_copies();
        let params_mb = p.params_m * 4.0 * param_copies;
        let activations_mb = p.activation_mb_per_sample * self.batch_size as f64;
        (params_mb + activations_mb + 600.0).ceil() as u64
    }

    /// Optimisation steps per epoch.
    pub fn steps_per_epoch(&self) -> u64 {
        let samples = self.arch.dataset().train_samples();
        samples.div_ceil(self.batch_size as u64)
    }

    /// Duration of a single optimisation step on a device with relative
    /// speed `device_speed` (1.0 = the reference RTX 2080).
    pub fn step_time(&self, device_speed: f64) -> SimTime {
        let p = self.arch.profile();
        // Larger batches amortise kernel launches: sub-linear in batch.
        let scale = (self.batch_size as f64 / 32.0).powf(0.7);
        SimTime::from_secs_f64(p.base_step_ms * scale / 1000.0 / device_speed.max(0.05))
    }

    /// Duration of a full training epoch (all steps plus a 10% evaluation
    /// pass); the CUDA warm-up applies to a job's very first step only and
    /// is added by the caller. Computed in floating point end-to-end so the
    /// millisecond quantisation of a single step does not accumulate.
    pub fn epoch_time(&self, device_speed: f64) -> SimTime {
        let p = self.arch.profile();
        let scale = (self.batch_size as f64 / 32.0).powf(0.7);
        let step_secs = p.base_step_ms * scale / 1000.0 / device_speed.max(0.05);
        SimTime::from_secs_f64(self.steps_per_epoch() as f64 * step_secs * 1.1)
    }
}

/// A running simulated training job: the state TensorFlow would hold.
#[derive(Debug, Clone)]
pub struct TrainingSim {
    config: TrainingConfig,
    epoch: u64,
    last_eval: f64,
    rng: Rng,
}

impl TrainingSim {
    /// Starts a training run; `seed` controls evaluation noise.
    pub fn new(config: TrainingConfig, seed: u64) -> TrainingSim {
        TrainingSim {
            config,
            epoch: 0,
            last_eval: config.start_accuracy(),
            rng: Rng::seed_from_u64(seed).fork("eval-noise"),
        }
    }

    /// The job's hyperparameters.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// Trains one epoch and evaluates; returns the observed (noisy)
    /// validation accuracy.
    pub fn train_epoch(&mut self) -> f64 {
        self.epoch += 1;
        let clean = self.config.accuracy_curve(self.epoch);
        let noisy = clean + sample_normal(&mut self.rng, 0.0, EVAL_NOISE_STD);
        self.last_eval = noisy.clamp(0.0, 1.0);
        self.last_eval
    }

    /// Epochs trained so far.
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// The evaluation-noise RNG position, for durable snapshots.
    pub fn rng_state(&self) -> ([u64; 4], u64) {
        self.rng.snapshot_state()
    }

    /// Rebuilds a mid-run simulation from snapshotted parts: the epoch
    /// counter, the last observed accuracy, and the RNG position captured
    /// by [`TrainingSim::rng_state`].
    pub fn from_parts(
        config: TrainingConfig,
        epoch: u64,
        last_eval: f64,
        state: [u64; 4],
        root: u64,
    ) -> TrainingSim {
        TrainingSim { config, epoch, last_eval, rng: Rng::from_snapshot(state, root) }
    }

    /// Most recent observed validation accuracy.
    pub fn accuracy(&self) -> f64 {
        self.last_eval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuned(arch: Architecture) -> TrainingConfig {
        TrainingConfig {
            arch,
            batch_size: 32,
            optimizer: Optimizer::Sgd,
            learning_rate: 0.01,
            pretrained: false,
        }
    }

    #[test]
    fn tuned_jobs_are_fully_effective() {
        let c = tuned(Architecture::ResNet18);
        assert!((c.effectiveness() - 1.0).abs() < 1e-12);
        assert!((c.effective_peak() - Architecture::ResNet18.profile().peak_accuracy).abs() < 1e-9);
    }

    #[test]
    fn bad_learning_rate_degrades_peak_and_rate() {
        let good = tuned(Architecture::ResNet18);
        let bad = TrainingConfig { learning_rate: 0.00001, ..good };
        assert!(bad.effectiveness() < 0.3);
        assert!(bad.effective_peak() < good.effective_peak());
        assert!(bad.effective_rate() < good.effective_rate());
    }

    #[test]
    fn curve_is_monotone_and_saturating() {
        let c = tuned(Architecture::MobileNet);
        let accs: Vec<f64> = (0..200).map(|e| c.accuracy_curve(e)).collect();
        assert!(accs.windows(2).all(|w| w[1] >= w[0]), "monotone");
        // Diminishing returns: the first 10 epochs gain more than the next 10.
        let early = accs[10] - accs[0];
        let late = accs[20] - accs[10];
        assert!(early > late, "diminishing returns: {early} vs {late}");
        assert!((accs[199] - c.effective_peak()).abs() < 1e-3, "saturates at peak");
    }

    #[test]
    fn epochs_to_accuracy_inverts_the_curve() {
        let c = tuned(Architecture::ResNet18);
        let e = c.epochs_to_accuracy(0.85).unwrap();
        assert!(c.accuracy_curve(e) >= 0.85);
        assert!(e == 0 || c.accuracy_curve(e - 1) < 0.85);
        // Unreachable target.
        assert_eq!(c.epochs_to_accuracy(0.99), None);
        // Already-satisfied target.
        assert_eq!(c.epochs_to_accuracy(0.05), Some(0));
    }

    #[test]
    fn pretrained_models_start_high_and_converge_fast() {
        let scratch = TrainingConfig {
            arch: Architecture::Bert,
            batch_size: 64,
            optimizer: Optimizer::Adam,
            learning_rate: 0.001,
            pretrained: false,
        };
        let tuned_bert = TrainingConfig { pretrained: true, ..scratch };
        assert!(tuned_bert.start_accuracy() > 0.5);
        assert!(tuned_bert.effective_rate() > scratch.effective_rate() * 3.0);
        // Fine-tuning reaches a mid target within a couple of epochs —
        // the Fig. 11 scenario ("the number of epochs for meeting the
        // completion criteria is 2").
        let e = tuned_bert.epochs_to_accuracy(0.85).unwrap();
        assert!(e <= 3, "BERT fine-tune needs {e} epochs");
    }

    #[test]
    fn memory_is_affine_in_batch_size() {
        let c = tuned(Architecture::Vgg16);
        let m8 = TrainingConfig { batch_size: 8, ..c }.memory_mb();
        let m16 = TrainingConfig { batch_size: 16, ..c }.memory_mb();
        let m32 = TrainingConfig { batch_size: 32, ..c }.memory_mb();
        // Equal increments per doubling of the increment.
        assert_eq!(m32 - m16, 2 * (m16 - m8));
        // VGG-16 with Adam would not fit 8 GB at batch 32.
        let adam = TrainingConfig { optimizer: Optimizer::Adam, ..c };
        assert!(adam.memory_mb() > tuned(Architecture::LeNet).memory_mb());
    }

    #[test]
    fn step_and_epoch_times_scale_sanely() {
        let c = tuned(Architecture::ResNet18);
        let small = TrainingConfig { batch_size: 8, ..c };
        // Bigger batches: slower steps but fewer of them → faster epochs.
        assert!(c.step_time(1.0) > small.step_time(1.0));
        assert!(c.epoch_time(1.0) < small.epoch_time(1.0));
        // Faster device → faster epoch.
        assert!(c.epoch_time(2.0) < c.epoch_time(1.0));
        // Steps per epoch covers the dataset.
        assert_eq!(c.steps_per_epoch(), 50_000_u64.div_ceil(32));
    }

    #[test]
    fn training_sim_follows_the_curve_with_noise() {
        let config = tuned(Architecture::MobileNet);
        let mut sim = TrainingSim::new(config, 7);
        let mut max_err: f64 = 0.0;
        for e in 1..=50 {
            let observed = sim.train_epoch();
            let clean = config.accuracy_curve(e);
            max_err = max_err.max((observed - clean).abs());
        }
        assert_eq!(sim.epochs(), 50);
        assert!(max_err > 0.0, "noise present");
        assert!(max_err < 5.0 * EVAL_NOISE_STD, "noise bounded: {max_err}");
    }

    #[test]
    fn sim_is_deterministic_per_seed() {
        let config = tuned(Architecture::LeNet);
        let mut a = TrainingSim::new(config, 3);
        let mut b = TrainingSim::new(config, 3);
        for _ in 0..10 {
            assert_eq!(a.train_epoch(), b.train_epoch());
        }
        let mut c = TrainingSim::new(config, 4);
        c.train_epoch();
        assert_ne!(a.accuracy(), c.accuracy());
    }
}
