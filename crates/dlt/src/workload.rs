//! The survey-based DLT workload (paper Table II).
//!
//! The paper surveyed 30 deep-learning researchers and synthesised a
//! workload from their answers: the Table II architecture list, batch-size
//! / optimizer / learning-rate spaces, and a criteria mix of 60%
//! convergence-oriented, 20% accuracy-oriented, and 20% runtime-oriented
//! jobs. Hyperparameters and criterion parameters are sampled uniformly
//! from their spaces; pre-trained (fine-tuning) jobs draw from the shorter
//! runtime space.

use rotary_core::criteria::{CompletionCriterion, Deadline, Metric};
use rotary_sim::rng::Rng;

use crate::models::{Architecture, Optimizer, LEARNING_RATES};
use crate::simulator::TrainingConfig;

/// Table II convergence-criterion deltas (accuracy change per epoch).
pub const CONVERGENCE_DELTAS: [f64; 12] =
    [0.05, 0.03, 0.01, 0.005, 0.003, 0.001, 0.0005, 0.0003, 0.0001, 0.00005, 0.00003, 0.00001];

/// Table II accuracy-criterion targets.
pub const ACCURACY_TARGETS: [f64; 12] =
    [0.70, 0.72, 0.74, 0.76, 0.78, 0.80, 0.82, 0.84, 0.86, 0.88, 0.90, 0.92];

/// Table II runtime-criterion epoch budgets for from-scratch jobs.
pub const RUNTIME_EPOCHS_SCRATCH: [u64; 5] = [5, 10, 30, 50, 100];

/// Table II runtime-criterion epoch budgets for fine-tuning jobs.
pub const RUNTIME_EPOCHS_PRETRAINED: [u64; 5] = [1, 2, 3, 4, 5];

/// Table II maximum-epoch space for accuracy/convergence deadlines.
pub const MAX_EPOCHS: [u64; 7] = [1, 5, 10, 15, 20, 25, 30];

/// One DLT job: hyperparameters plus its completion criterion.
#[derive(Debug, Clone, PartialEq)]
pub struct DltJobSpec {
    /// The training configuration (architecture, batch, optimizer, lr,
    /// pre-trained flag).
    pub config: TrainingConfig,
    /// The user-defined completion criterion.
    pub criterion: CompletionCriterion,
}

impl DltJobSpec {
    /// The epoch budget after which the job is cut off: the criterion
    /// deadline for accuracy/convergence jobs, the runtime itself for
    /// runtime jobs.
    pub fn max_epochs(&self) -> u64 {
        self.criterion.deadline().epochs().unwrap_or(u64::MAX)
    }
}

/// Mix of criterion kinds (fractions summing to 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriteriaMix {
    /// Fraction with convergence-oriented criteria.
    pub convergence: f64,
    /// Fraction with accuracy-oriented criteria.
    pub accuracy: f64,
    /// Fraction with runtime-oriented criteria.
    pub runtime: f64,
}

impl CriteriaMix {
    /// Table II's survey mix: 60 / 20 / 20.
    pub const PAPER: CriteriaMix = CriteriaMix { convergence: 0.6, accuracy: 0.2, runtime: 0.2 };
}

/// Generates Table II workloads.
#[derive(Debug, Clone)]
pub struct DltWorkloadBuilder {
    jobs: usize,
    mix: CriteriaMix,
    pretrained_fraction: f64,
    seed: u64,
}

impl Default for DltWorkloadBuilder {
    fn default() -> Self {
        Self::paper()
    }
}

impl DltWorkloadBuilder {
    /// The paper's configuration (32 jobs — four per GPU times the paper's
    /// survey scale — with the 60/20/20 mix; a third of the jobs on
    /// pre-trainable architectures fine-tune).
    pub fn paper() -> DltWorkloadBuilder {
        DltWorkloadBuilder { jobs: 32, mix: CriteriaMix::PAPER, pretrained_fraction: 0.33, seed: 0 }
    }

    /// Sets the job count.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the criteria mix.
    pub fn mix(mut self, mix: CriteriaMix) -> Self {
        let sum = mix.convergence + mix.accuracy + mix.runtime;
        assert!((sum - 1.0).abs() < 1e-9, "criteria mix must sum to 1");
        self.mix = mix;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the workload. All jobs are submitted at time zero (the
    /// paper's DLT evaluation has no arrival process).
    pub fn build(&self) -> Vec<DltJobSpec> {
        let mut rng = Rng::seed_from_u64(self.seed ^ 0xd17).fork("dlt-workload");
        (0..self.jobs).map(|_| self.sample_job(&mut rng)).collect()
    }

    fn sample_job(&self, rng: &mut Rng) -> DltJobSpec {
        let arch = Architecture::ALL[rng.gen_range(0..Architecture::ALL.len())];
        let batches = arch.batch_sizes();
        let batch_size = batches[rng.gen_range(0..batches.len())];
        let optimizer = Optimizer::ALL[rng.gen_range(0..Optimizer::ALL.len())];
        let learning_rate = LEARNING_RATES[rng.gen_range(0..LEARNING_RATES.len())];
        let pretrained = arch.profile().pretrainable && rng.gen_bool(self.pretrained_fraction);
        let config = TrainingConfig { arch, batch_size, optimizer, learning_rate, pretrained };

        let x: f64 = rng.gen_range(0.0..1.0);
        let criterion = if x < self.mix.convergence {
            CompletionCriterion::Convergence {
                metric: Metric::Accuracy,
                delta: CONVERGENCE_DELTAS[rng.gen_range(0..CONVERGENCE_DELTAS.len())],
                deadline: Deadline::Epochs(self.sample_max_epochs(rng)),
            }
        } else if x < self.mix.convergence + self.mix.accuracy {
            CompletionCriterion::Accuracy {
                metric: Metric::Accuracy,
                threshold: ACCURACY_TARGETS[rng.gen_range(0..ACCURACY_TARGETS.len())],
                deadline: Deadline::Epochs(self.sample_max_epochs(rng)),
            }
        } else {
            let space: &[u64] =
                if pretrained { &RUNTIME_EPOCHS_PRETRAINED } else { &RUNTIME_EPOCHS_SCRATCH };
            CompletionCriterion::Runtime {
                runtime: Deadline::Epochs(space[rng.gen_range(0..space.len())]),
            }
        };
        DltJobSpec { config, criterion }
    }

    /// Maximum epochs, excluding the degenerate 1-epoch deadline for
    /// from-scratch convergence jobs (a convergence check needs two
    /// observations).
    fn sample_max_epochs(&self, rng: &mut Rng) -> u64 {
        loop {
            let e = MAX_EPOCHS[rng.gen_range(0..MAX_EPOCHS.len())];
            if e >= 2 {
                return e;
            }
        }
    }
}

/// The Fig. 11 micro-benchmark: eight jobs where jobs 4, 5, 6 are the BERT,
/// Bi-LSTM, and LSTM jobs whose epoch estimates the experiment corrupts.
pub fn fig11_microbenchmark() -> Vec<DltJobSpec> {
    use Architecture::*;
    let job = |arch: Architecture, batch: u32, pretrained: bool, criterion: CompletionCriterion| {
        DltJobSpec {
            config: TrainingConfig {
                arch,
                batch_size: batch,
                optimizer: Optimizer::Adam,
                learning_rate: 0.001,
                pretrained,
            },
            criterion,
        }
    };
    let acc = |t: f64, max: u64| CompletionCriterion::Accuracy {
        metric: Metric::Accuracy,
        threshold: t,
        deadline: Deadline::Epochs(max),
    };
    let runtime = |e: u64| CompletionCriterion::Runtime { runtime: Deadline::Epochs(e) };
    vec![
        // jobs 0-3: CV training jobs.
        job(ResNet18, 32, false, acc(0.86, 30)),
        job(MobileNetV2, 16, false, acc(0.84, 30)),
        job(DenseNet121, 16, false, runtime(20)),
        job(ShuffleNetV2, 32, false, acc(0.82, 25)),
        // jobs 4-6: the NLP jobs ("job4 is for BERT, job 5 is for Bi-LSTM,
        // and job 6 is for LSTM") — quick fine-tune / fast converging.
        job(Bert, 64, true, acc(0.85, 30)),
        job(BiLstm, 128, false, acc(0.90, 30)),
        job(Lstm, 128, false, acc(0.88, 30)),
        // job 7: another CV job.
        job(ResNet34, 16, false, runtime(15)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotary_core::criteria::CompletionCriterion as C;

    #[test]
    fn paper_workload_mix() {
        let jobs = DltWorkloadBuilder::paper().jobs(3000).seed(1).build();
        let frac = |f: fn(&C) -> bool| {
            jobs.iter().filter(|j| f(&j.criterion)).count() as f64 / jobs.len() as f64
        };
        assert!((frac(|c| matches!(c, C::Convergence { .. })) - 0.6).abs() < 0.05);
        assert!((frac(|c| matches!(c, C::Accuracy { .. })) - 0.2).abs() < 0.05);
        assert!((frac(|c| matches!(c, C::Runtime { .. })) - 0.2).abs() < 0.05);
    }

    #[test]
    fn parameters_come_from_table_two_spaces() {
        for j in DltWorkloadBuilder::paper().jobs(500).seed(2).build() {
            assert!(j.config.arch.batch_sizes().contains(&j.config.batch_size));
            assert!(LEARNING_RATES.contains(&j.config.learning_rate));
            match &j.criterion {
                C::Convergence { delta, deadline, .. } => {
                    assert!(CONVERGENCE_DELTAS.contains(delta));
                    assert!(MAX_EPOCHS.contains(&deadline.epochs().unwrap()));
                }
                C::Accuracy { threshold, deadline, .. } => {
                    assert!(ACCURACY_TARGETS.contains(threshold));
                    assert!(MAX_EPOCHS.contains(&deadline.epochs().unwrap()));
                }
                C::Runtime { runtime } => {
                    let e = runtime.epochs().unwrap();
                    if j.config.pretrained {
                        assert!(RUNTIME_EPOCHS_PRETRAINED.contains(&e));
                    } else {
                        assert!(RUNTIME_EPOCHS_SCRATCH.contains(&e));
                    }
                }
            }
        }
    }

    #[test]
    fn pretrained_only_on_pretrainable_architectures() {
        let jobs = DltWorkloadBuilder::paper().jobs(1000).seed(3).build();
        for j in &jobs {
            if j.config.pretrained {
                assert!(j.config.arch.profile().pretrainable, "{}", j.config.arch);
            }
        }
        assert!(jobs.iter().any(|j| j.config.pretrained), "some jobs fine-tune");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DltWorkloadBuilder::paper().seed(7).build();
        let b = DltWorkloadBuilder::paper().seed(7).build();
        assert_eq!(a, b);
        assert_ne!(a, DltWorkloadBuilder::paper().seed(8).build());
    }

    #[test]
    fn convergence_deadlines_allow_a_check() {
        // A convergence criterion needs ≥ 2 epochs to ever fire.
        for j in DltWorkloadBuilder::paper().jobs(2000).seed(4).build() {
            if matches!(j.criterion, C::Convergence { .. }) {
                assert!(j.max_epochs() >= 2);
            }
        }
    }

    #[test]
    fn fig11_jobs_match_the_paper() {
        let jobs = fig11_microbenchmark();
        assert_eq!(jobs.len(), 8);
        assert_eq!(jobs[4].config.arch, Architecture::Bert);
        assert_eq!(jobs[5].config.arch, Architecture::BiLstm);
        assert_eq!(jobs[6].config.arch, Architecture::Lstm);
        assert!(jobs[4].config.pretrained);
    }
}
