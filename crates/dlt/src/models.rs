//! The model zoo of Table II.
//!
//! All seventeen architectures from the survey workload, using the shrunk
//! variants the paper trains ("ResNet-18, ResNet-34, DenseNet-121" etc., so
//! each fits a single 8 GB GPU). Parameter counts are the published sizes
//! of the variants; per-step base costs are relative compute weights used
//! by the training simulator's time model. CV models train on CIFAR-10, the
//! NLP models on UD Treebank (LSTM/Bi-LSTM tagging) or the Large Movie
//! Review dataset (BERT sentiment), as in Table II.

/// Task family of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Computer vision (CIFAR-10).
    Vision,
    /// Natural language processing (UD Treebank / Large Movie Review).
    Language,
}

/// A dataset a job trains on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// 50 000 training images, 10 classes.
    Cifar10,
    /// Universal Dependencies treebank (~12 000 sentences).
    UdTreebank,
    /// Large Movie Review Dataset (25 000 training reviews).
    Imdb,
}

impl Dataset {
    /// Training-set size in samples.
    pub fn train_samples(self) -> u64 {
        match self {
            Dataset::Cifar10 => 50_000,
            Dataset::UdTreebank => 12_000,
            Dataset::Imdb => 25_000,
        }
    }

    /// Table name for display.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Cifar10 => "CIFAR-10",
            Dataset::UdTreebank => "UD Treebank",
            Dataset::Imdb => "IMDB",
        }
    }
}

/// A model architecture from Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Architecture {
    Inception,
    MobileNet,
    MobileNetV2,
    SqueezeNet,
    ShuffleNet,
    ShuffleNetV2,
    ResNet18,
    ResNet34,
    ResNeXt,
    EfficientNetB0,
    LeNet,
    Vgg16,
    AlexNet,
    ZfNet,
    DenseNet121,
    Lstm,
    BiLstm,
    Bert,
}

/// Static properties of an architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelProfile {
    /// Display name.
    pub name: &'static str,
    /// Task family.
    pub domain: Domain,
    /// Learnable parameters, in millions (published variant sizes).
    pub params_m: f64,
    /// Activation memory per sample, in MB (drives batch-size→memory).
    pub activation_mb_per_sample: f64,
    /// Milliseconds per optimisation step at batch 32 on the reference GPU
    /// (RTX 2080-class), before batch-size scaling.
    pub base_step_ms: f64,
    /// Best validation accuracy the architecture can reach on its dataset
    /// with well-chosen hyperparameters.
    pub peak_accuracy: f64,
    /// Convergence rate: roughly the reciprocal of the number of epochs to
    /// close half the remaining gap to the peak.
    pub base_rate: f64,
    /// Whether a pre-trained checkpoint is available (BERT, VGG, ResNet in
    /// the paper).
    pub pretrainable: bool,
}

impl Architecture {
    /// All Table II architectures.
    pub const ALL: [Architecture; 18] = [
        Architecture::Inception,
        Architecture::MobileNet,
        Architecture::MobileNetV2,
        Architecture::SqueezeNet,
        Architecture::ShuffleNet,
        Architecture::ShuffleNetV2,
        Architecture::ResNet18,
        Architecture::ResNet34,
        Architecture::ResNeXt,
        Architecture::EfficientNetB0,
        Architecture::LeNet,
        Architecture::Vgg16,
        Architecture::AlexNet,
        Architecture::ZfNet,
        Architecture::DenseNet121,
        Architecture::Lstm,
        Architecture::BiLstm,
        Architecture::Bert,
    ];

    /// The architecture's static profile.
    pub fn profile(self) -> ModelProfile {
        use Architecture::*;
        use Domain::*;
        match self {
            Inception => ModelProfile {
                name: "Inception-v1",
                domain: Vision,
                params_m: 6.6,
                activation_mb_per_sample: 9.0,
                base_step_ms: 95.0,
                peak_accuracy: 0.918,
                base_rate: 0.12,
                pretrainable: false,
            },
            MobileNet => ModelProfile {
                name: "MobileNet",
                domain: Vision,
                params_m: 4.2,
                activation_mb_per_sample: 5.0,
                base_step_ms: 48.0,
                peak_accuracy: 0.902,
                base_rate: 0.15,
                pretrainable: false,
            },
            MobileNetV2 => ModelProfile {
                name: "MobileNetV2",
                domain: Vision,
                params_m: 3.5,
                activation_mb_per_sample: 6.0,
                base_step_ms: 52.0,
                peak_accuracy: 0.915,
                base_rate: 0.14,
                pretrainable: false,
            },
            SqueezeNet => ModelProfile {
                name: "SqueezeNet",
                domain: Vision,
                params_m: 1.2,
                activation_mb_per_sample: 4.0,
                base_step_ms: 35.0,
                peak_accuracy: 0.885,
                base_rate: 0.16,
                pretrainable: false,
            },
            ShuffleNet => ModelProfile {
                name: "ShuffleNet",
                domain: Vision,
                params_m: 1.9,
                activation_mb_per_sample: 4.5,
                base_step_ms: 40.0,
                peak_accuracy: 0.898,
                base_rate: 0.15,
                pretrainable: false,
            },
            ShuffleNetV2 => ModelProfile {
                name: "ShuffleNetV2",
                domain: Vision,
                params_m: 2.3,
                activation_mb_per_sample: 4.5,
                base_step_ms: 38.0,
                peak_accuracy: 0.906,
                base_rate: 0.16,
                pretrainable: false,
            },
            ResNet18 => ModelProfile {
                name: "ResNet-18",
                domain: Vision,
                params_m: 11.7,
                activation_mb_per_sample: 7.0,
                base_step_ms: 60.0,
                peak_accuracy: 0.932,
                base_rate: 0.13,
                pretrainable: true,
            },
            ResNet34 => ModelProfile {
                name: "ResNet-34",
                domain: Vision,
                params_m: 21.8,
                activation_mb_per_sample: 9.5,
                base_step_ms: 92.0,
                peak_accuracy: 0.938,
                base_rate: 0.115,
                pretrainable: true,
            },
            ResNeXt => ModelProfile {
                name: "ResNeXt-29",
                domain: Vision,
                params_m: 25.0,
                activation_mb_per_sample: 11.0,
                base_step_ms: 140.0,
                peak_accuracy: 0.941,
                base_rate: 0.10,
                pretrainable: false,
            },
            EfficientNetB0 => ModelProfile {
                name: "EfficientNet-B0",
                domain: Vision,
                params_m: 5.3,
                activation_mb_per_sample: 8.0,
                base_step_ms: 85.0,
                peak_accuracy: 0.930,
                base_rate: 0.11,
                pretrainable: false,
            },
            LeNet => ModelProfile {
                name: "LeNet-5",
                domain: Vision,
                params_m: 0.06,
                activation_mb_per_sample: 0.5,
                base_step_ms: 6.0,
                peak_accuracy: 0.755,
                base_rate: 0.25,
                pretrainable: false,
            },
            Vgg16 => ModelProfile {
                name: "VGG-16",
                domain: Vision,
                params_m: 138.0,
                activation_mb_per_sample: 15.0,
                base_step_ms: 160.0,
                peak_accuracy: 0.925,
                base_rate: 0.10,
                pretrainable: true,
            },
            AlexNet => ModelProfile {
                name: "AlexNet",
                domain: Vision,
                params_m: 61.0,
                activation_mb_per_sample: 6.0,
                base_step_ms: 55.0,
                peak_accuracy: 0.865,
                base_rate: 0.14,
                pretrainable: false,
            },
            ZfNet => ModelProfile {
                name: "ZFNet",
                domain: Vision,
                params_m: 62.0,
                activation_mb_per_sample: 6.5,
                base_step_ms: 60.0,
                peak_accuracy: 0.872,
                base_rate: 0.13,
                pretrainable: false,
            },
            DenseNet121 => ModelProfile {
                name: "DenseNet-121",
                domain: Vision,
                params_m: 8.0,
                activation_mb_per_sample: 13.0,
                base_step_ms: 130.0,
                peak_accuracy: 0.940,
                base_rate: 0.105,
                pretrainable: false,
            },
            Lstm => ModelProfile {
                name: "LSTM",
                domain: Language,
                params_m: 8.5,
                activation_mb_per_sample: 2.0,
                // Recurrent steps serialise over the sequence dimension:
                // far slower per sample than CNN steps.
                base_step_ms: 140.0,
                peak_accuracy: 0.935,
                base_rate: 0.45,
                pretrainable: false,
            },
            BiLstm => ModelProfile {
                name: "Bi-LSTM",
                domain: Language,
                params_m: 15.0,
                activation_mb_per_sample: 3.5,
                base_step_ms: 240.0,
                peak_accuracy: 0.948,
                base_rate: 0.42,
                pretrainable: false,
            },
            Bert => ModelProfile {
                name: "BERT-small",
                domain: Language,
                params_m: 110.0,
                activation_mb_per_sample: 8.0,
                base_step_ms: 210.0,
                peak_accuracy: 0.912,
                base_rate: 0.55,
                pretrainable: true,
            },
        }
    }

    /// The dataset this architecture trains on in the Table II workload.
    pub fn dataset(self) -> Dataset {
        match self {
            Architecture::Bert => Dataset::Imdb,
            Architecture::Lstm | Architecture::BiLstm => Dataset::UdTreebank,
            _ => Dataset::Cifar10,
        }
    }

    /// Table II batch-size space: small for CV (per the cited empirical
    /// study), larger for NLP.
    pub fn batch_sizes(self) -> &'static [u32] {
        match self.profile().domain {
            Domain::Vision => &[2, 4, 8, 16, 32],
            Domain::Language => &[32, 64, 128, 256],
        }
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.profile().name)
    }
}

/// Optimizers of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Optimizer {
    Sgd,
    Adam,
    Adagrad,
    Momentum,
}

impl Optimizer {
    /// All Table II optimizers.
    pub const ALL: [Optimizer; 4] =
        [Optimizer::Sgd, Optimizer::Adam, Optimizer::Adagrad, Optimizer::Momentum];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Optimizer::Sgd => "SGD",
            Optimizer::Adam => "Adam",
            Optimizer::Adagrad => "Adagrad",
            Optimizer::Momentum => "Momentum",
        }
    }

    /// Extra parameter-state copies the optimizer keeps in GPU memory
    /// (momentum buffers, Adam moments, …), as a multiple of the weights.
    pub fn state_copies(self) -> f64 {
        match self {
            Optimizer::Sgd => 0.0,
            Optimizer::Momentum => 1.0,
            Optimizer::Adagrad => 1.0,
            Optimizer::Adam => 2.0,
        }
    }

    /// The learning rate at which this optimizer performs best in the
    /// simulator's effectiveness model.
    pub fn sweet_spot_lr(self) -> f64 {
        match self {
            Optimizer::Sgd | Optimizer::Momentum => 0.01,
            Optimizer::Adam => 0.001,
            Optimizer::Adagrad => 0.01,
        }
    }
}

/// Table II learning-rate space.
pub const LEARNING_RATES: [f64; 5] = [0.1, 0.01, 0.001, 0.0001, 0.00001];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_covers_table_two() {
        assert_eq!(Architecture::ALL.len(), 18);
        let nlp =
            Architecture::ALL.iter().filter(|a| a.profile().domain == Domain::Language).count();
        assert_eq!(nlp, 3, "LSTM, Bi-LSTM, BERT");
    }

    #[test]
    fn parameter_counts_are_published_sizes() {
        assert_eq!(Architecture::ResNet18.profile().params_m, 11.7);
        assert_eq!(Architecture::Vgg16.profile().params_m, 138.0);
        assert_eq!(Architecture::Bert.profile().params_m, 110.0);
        assert!(Architecture::LeNet.profile().params_m < 0.1);
    }

    #[test]
    fn datasets_match_domains() {
        for a in Architecture::ALL {
            match a.profile().domain {
                Domain::Vision => assert_eq!(a.dataset(), Dataset::Cifar10),
                Domain::Language => assert_ne!(a.dataset(), Dataset::Cifar10),
            }
        }
        assert_eq!(Architecture::Bert.dataset(), Dataset::Imdb);
        assert!(Dataset::Cifar10.train_samples() > Dataset::UdTreebank.train_samples());
    }

    #[test]
    fn batch_size_spaces_match_table_two() {
        assert_eq!(Architecture::ResNet18.batch_sizes(), &[2, 4, 8, 16, 32]);
        assert_eq!(Architecture::Bert.batch_sizes(), &[32, 64, 128, 256]);
    }

    #[test]
    fn pretrained_availability_matches_paper() {
        // "We also have pre-trained versions of BERT, VGG, and ResNet".
        for a in [
            Architecture::Bert,
            Architecture::Vgg16,
            Architecture::ResNet18,
            Architecture::ResNet34,
        ] {
            assert!(a.profile().pretrainable, "{a}");
        }
        assert!(!Architecture::LeNet.profile().pretrainable);
    }

    #[test]
    fn optimizer_state_and_sweet_spots() {
        assert_eq!(Optimizer::Sgd.state_copies(), 0.0);
        assert_eq!(Optimizer::Adam.state_copies(), 2.0);
        assert_eq!(Optimizer::Adam.sweet_spot_lr(), 0.001);
        assert_eq!(Optimizer::ALL.len(), 4);
    }

    #[test]
    fn profiles_are_sane() {
        for a in Architecture::ALL {
            let p = a.profile();
            assert!(p.params_m > 0.0, "{a}");
            assert!(p.base_step_ms > 0.0, "{a}");
            assert!((0.5..1.0).contains(&p.peak_accuracy), "{a}");
            assert!(p.base_rate > 0.0, "{a}");
            assert!(p.activation_mb_per_sample > 0.0, "{a}");
        }
    }
}
