//! Parser for `TRAIN` statements (the DLT half of the paper's Fig. 4).
//!
//! The criterion suffix uses the shared grammar of `rotary_core::parser`;
//! the command prefix is parsed here:
//!
//! ```text
//! TRAIN <model> [ON <dataset>] [BATCH <n>] [LR <x>] [<optimizer>] [PRETRAINED] <criterion>
//! ```
//!
//! ```
//! use rotary_dlt::parse::parse_train_statement;
//! let spec = parse_train_statement("TRAIN MobileNet ON CIFAR10 FOR 2 HOURS").unwrap();
//! assert_eq!(spec.config.arch.to_string(), "MobileNet");
//! ```

use rotary_core::error::{Result, RotaryError};
use rotary_core::parser::parse_statement;

use crate::models::{Architecture, Dataset, Optimizer};
use crate::simulator::TrainingConfig;
use crate::workload::DltJobSpec;

fn parse_err(input: &str, message: impl Into<String>) -> RotaryError {
    RotaryError::Parse { input: input.to_string(), message: message.into() }
}

/// Resolves a model name (case/punctuation-insensitive) to an architecture.
pub fn resolve_architecture(name: &str) -> Option<Architecture> {
    let canon = |s: &str| -> String {
        s.chars().filter(char::is_ascii_alphanumeric).collect::<String>().to_ascii_lowercase()
    };
    let wanted = canon(name);
    Architecture::ALL
        .iter()
        .copied()
        .find(|a| canon(a.profile().name) == wanted || canon(&format!("{a:?}")) == wanted)
}

fn resolve_dataset(name: &str) -> Option<Dataset> {
    match name.to_ascii_uppercase().replace(['-', '_'], "").as_str() {
        "CIFAR10" => Some(Dataset::Cifar10),
        "UDTREEBANK" | "UD" => Some(Dataset::UdTreebank),
        "IMDB" | "LARGEMOVIEREVIEW" => Some(Dataset::Imdb),
        _ => None,
    }
}

fn resolve_optimizer(name: &str) -> Option<Optimizer> {
    match name.to_ascii_uppercase().as_str() {
        "SGD" => Some(Optimizer::Sgd),
        "ADAM" => Some(Optimizer::Adam),
        "ADAGRAD" => Some(Optimizer::Adagrad),
        "MOMENTUM" => Some(Optimizer::Momentum),
        _ => None,
    }
}

/// Parses a full `TRAIN …` statement into a runnable job spec.
///
/// Defaults when a clause is omitted: the architecture's first Table II
/// batch size at the largest end (32 for CV, 64 for NLP), SGD at its
/// sweet-spot learning rate, training from scratch.
pub fn parse_train_statement(input: &str) -> Result<DltJobSpec> {
    let (command, criterion) = parse_statement(input)?;
    let tokens: Vec<&str> = command.split_whitespace().collect();
    if tokens.is_empty() || !tokens[0].eq_ignore_ascii_case("TRAIN") {
        return Err(parse_err(input, "a DLT statement starts with TRAIN"));
    }
    let Some(&model_token) = tokens.get(1) else {
        return Err(parse_err(input, "expected a model name after TRAIN"));
    };
    let arch = resolve_architecture(model_token).ok_or_else(|| {
        let known: Vec<&str> = Architecture::ALL.iter().map(|a| a.profile().name).collect();
        parse_err(
            input,
            format!("unknown model {model_token:?}; known models: {}", known.join(", ")),
        )
    })?;

    let mut batch_size = match arch.profile().domain {
        crate::models::Domain::Vision => 32,
        crate::models::Domain::Language => 64,
    };
    let mut optimizer = Optimizer::Sgd;
    let mut learning_rate = None;
    let mut pretrained = false;

    let mut i = 2;
    while i < tokens.len() {
        let t = tokens[i].to_ascii_uppercase();
        match t.as_str() {
            "ON" => {
                let Some(&ds) = tokens.get(i + 1) else {
                    return Err(parse_err(input, "expected a dataset after ON"));
                };
                let dataset = resolve_dataset(ds)
                    .ok_or_else(|| parse_err(input, format!("unknown dataset {ds:?}")))?;
                if dataset != arch.dataset() {
                    return Err(parse_err(
                        input,
                        format!(
                            "{} trains on {} in this workload, not {}",
                            arch,
                            arch.dataset().name(),
                            dataset.name()
                        ),
                    ));
                }
                i += 2;
            }
            "BATCH" => {
                let Some(n) = tokens.get(i + 1).and_then(|s| s.parse::<u32>().ok()) else {
                    return Err(parse_err(input, "expected a number after BATCH"));
                };
                if n == 0 {
                    return Err(parse_err(input, "batch size must be positive"));
                }
                batch_size = n;
                i += 2;
            }
            "LR" => {
                let Some(x) = tokens.get(i + 1).and_then(|s| s.parse::<f64>().ok()) else {
                    return Err(parse_err(input, "expected a number after LR"));
                };
                if !(x.is_finite() && x > 0.0) {
                    return Err(parse_err(input, "learning rate must be positive"));
                }
                learning_rate = Some(x);
                i += 2;
            }
            "PRETRAINED" | "FINETUNE" | "FINE-TUNE" => {
                if !arch.profile().pretrainable {
                    return Err(parse_err(
                        input,
                        format!("no pre-trained checkpoint exists for {arch}"),
                    ));
                }
                pretrained = true;
                i += 1;
            }
            other => match resolve_optimizer(other) {
                Some(opt) => {
                    optimizer = opt;
                    i += 1;
                }
                None => {
                    return Err(parse_err(input, format!("unexpected token {other:?}")));
                }
            },
        }
    }

    let learning_rate = learning_rate.unwrap_or_else(|| optimizer.sweet_spot_lr());
    Ok(DltJobSpec {
        config: TrainingConfig { arch, batch_size, optimizer, learning_rate, pretrained },
        criterion,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotary_core::criteria::{CompletionCriterion, Deadline};
    use rotary_core::SimTime;

    #[test]
    fn parses_paper_fig4_examples() {
        // Middle example (ResNet-50 shrinks to our ResNet variants; use -34).
        let s =
            parse_train_statement("TRAIN ResNet-34 ON CIFAR10 ACC DELTA 0.001 WITHIN 30 EPOCHS")
                .unwrap();
        assert_eq!(s.config.arch, Architecture::ResNet34);
        assert!(matches!(s.criterion, CompletionCriterion::Convergence { .. }));

        // Right example.
        let s = parse_train_statement("TRAIN MobileNet ON CIFAR10 FOR 2 HOURS").unwrap();
        assert_eq!(s.config.arch, Architecture::MobileNet);
        assert_eq!(
            s.criterion,
            CompletionCriterion::Runtime { runtime: Deadline::Time(SimTime::from_hours(2)) }
        );
    }

    #[test]
    fn hyperparameter_clauses() {
        let s = parse_train_statement(
            "TRAIN BERT ON IMDB BATCH 128 LR 0.0001 ADAM PRETRAINED ACC MIN 88% WITHIN 5 EPOCHS",
        )
        .unwrap();
        assert_eq!(s.config.arch, Architecture::Bert);
        assert_eq!(s.config.batch_size, 128);
        assert_eq!(s.config.learning_rate, 0.0001);
        assert_eq!(s.config.optimizer, Optimizer::Adam);
        assert!(s.config.pretrained);
    }

    #[test]
    fn defaults_are_sensible() {
        let s = parse_train_statement("TRAIN LeNet FOR 10 EPOCHS").unwrap();
        assert_eq!(s.config.batch_size, 32);
        assert_eq!(s.config.optimizer, Optimizer::Sgd);
        assert_eq!(s.config.learning_rate, Optimizer::Sgd.sweet_spot_lr());
        assert!(!s.config.pretrained);
    }

    #[test]
    fn model_name_resolution_is_fuzzy() {
        assert_eq!(resolve_architecture("resnet-18"), Some(Architecture::ResNet18));
        assert_eq!(resolve_architecture("RESNET18"), Some(Architecture::ResNet18));
        assert_eq!(resolve_architecture("Bi-LSTM"), Some(Architecture::BiLstm));
        assert_eq!(resolve_architecture("bert-small"), Some(Architecture::Bert));
        assert_eq!(resolve_architecture("gpt4"), None);
    }

    #[test]
    fn helpful_errors() {
        let e = parse_train_statement("TRAIN Transformer FOR 1 HOURS").unwrap_err();
        assert!(e.to_string().contains("known models"));

        let e = parse_train_statement("TRAIN BERT ON CIFAR10 FOR 1 HOURS").unwrap_err();
        assert!(e.to_string().contains("trains on IMDB"));

        let e = parse_train_statement("TRAIN LeNet PRETRAINED FOR 1 HOURS").unwrap_err();
        assert!(e.to_string().contains("no pre-trained checkpoint"));

        assert!(parse_train_statement("EVAL LeNet FOR 1 HOURS").is_err());
        assert!(parse_train_statement("TRAIN LeNet BATCH zero FOR 1 HOURS").is_err());
        assert!(parse_train_statement("TRAIN LeNet WIBBLE FOR 1 HOURS").is_err());
    }

    #[test]
    fn time_budget_statement_runs_end_to_end() {
        use crate::system::{DltPolicy, DltSystem, DltSystemConfig};
        use rotary_core::progress::Objective;
        let spec = parse_train_statement("TRAIN LeNet FOR 600 SECONDS").unwrap();
        let mut sys = DltSystem::new(DltSystemConfig { seed: 1, ..Default::default() });
        let r = sys.run(&[spec], DltPolicy::Rotary(Objective::Efficiency));
        let (_, state) = &r.jobs[0];
        assert_eq!(state.status, rotary_core::job::JobStatus::Attained);
        // The job stops at the first epoch boundary at or past 600 s.
        let done = state.finished_at.unwrap();
        assert!(done >= SimTime::from_secs(600));
        assert!(done < SimTime::from_secs(900), "stopped promptly: {done}");
    }
}
