//! Durable snapshot serialization for the DLT arbitration loop.
//!
//! Mirrors the AQP layout: named records (see `rotary-store`) holding JSON
//! documents for the per-job state (core [`JobState`], training-sim epoch +
//! RNG position, TEE points, fault counters), the pending event queue, GPU
//! occupancy, the TTR table, the overhead meter, the loop cursors, and the
//! metrics/history codecs verbatim. Derivable state (true memory
//! footprints, epoch costs) is rebuilt from the config; the `meta`
//! fingerprint rejects restores into a different run. All parsing is
//! panic-free — malformed input becomes [`RotaryError::SnapshotCorrupt`].

use std::time::Duration;

use rotary_core::error::{Result, RotaryError};
use rotary_core::estimate::{CurveBasis, JointCurveEstimator};
use rotary_core::history::HistoryRepository;
use rotary_core::job::{JobId, JobState};
use rotary_core::json::{self, u64_json, Json};
use rotary_core::SimTime;
use rotary_sim::{EventQueue, GpuPool, WorkloadMetrics};
use rotary_store::fnv1a;

use super::{DltPolicy, DltRunState, DltSystem, Event, OverheadMeter, RunJob, Ttr};
use crate::simulator::TrainingSim;
use crate::workload::DltJobSpec;

/// Format tag stored in the `meta` record; bump when the layout changes.
const FORMAT: &str = "rotary-dlt-run/v1";

fn corrupt(detail: &str) -> RotaryError {
    RotaryError::SnapshotCorrupt { detail: format!("DLT snapshot: {detail}") }
}

/// Identity of a run: policy, seed, pool shape, and every hyperparameter /
/// criterion that influences the trace.
fn fingerprint(sys: &DltSystem, specs: &[DltJobSpec], policy: DltPolicy) -> u64 {
    use std::fmt::Write as _;
    let mut text = String::new();
    let _ = write!(text, "{}|seed={}", policy.name(), sys.config.seed);
    for (i, device) in sys.config.pool.devices.iter().enumerate() {
        let _ = write!(text, "|d{i}:{}mb@{:016x}", device.memory_mb, device.speed.to_bits());
    }
    for spec in specs {
        let _ = write!(text, "|{:?}|{:?}", spec.config, spec.criterion);
    }
    fnv1a(text.as_bytes())
}

/// Serializes the full mid-run state as the store's named records.
pub(super) fn snapshot_records(
    sys: &DltSystem,
    st: &DltRunState,
    specs: &[DltJobSpec],
    policy: DltPolicy,
    generation: u64,
) -> Result<Vec<(String, Vec<u8>)>> {
    let meta = Json::obj(vec![
        ("format", Json::Str(FORMAT.to_string())),
        ("policy", Json::Str(policy.name())),
        ("fingerprint", u64_json(fingerprint(sys, specs, policy))),
        ("generation", u64_json(generation)),
        ("epochs_done", u64_json(st.epochs_done)),
    ]);
    let jobs = Json::Arr(st.jobs.iter().map(job_json).collect());
    let events = events_json(&st.events);
    let pool = Json::obj(vec![(
        "occupants",
        Json::Arr(
            st.pool
                .occupants()
                .iter()
                .enumerate()
                .filter_map(|(device, occupant)| {
                    occupant.map(|job| {
                        Json::obj(vec![
                            ("job", u64_json(job.0)),
                            ("device", u64_json(device as u64)),
                        ])
                    })
                })
                .collect(),
        ),
    )]);
    let ttr = Json::obj(vec![(
        "entries",
        Json::Arr(
            st.ttr
                .entries()
                .map(|(job, device, t)| {
                    Json::obj(vec![
                        ("job", u64_json(job.0)),
                        ("device", u64_json(device as u64)),
                        ("ms", u64_json(t.as_millis())),
                    ])
                })
                .collect(),
        ),
    )]);
    let meter = Json::obj(vec![
        ("ttr_ns", u64_json(duration_nanos(st.meter.ttr))),
        ("tee_ns", u64_json(duration_nanos(st.meter.tee))),
        ("tme_ns", u64_json(duration_nanos(st.meter.tme))),
    ]);
    let loop_state = Json::obj(vec![
        ("rr_cursor", u64_json(st.rr_cursor as u64)),
        ("makespan", u64_json(st.makespan.as_millis())),
    ]);
    Ok(vec![
        ("meta".to_string(), meta.to_pretty().into_bytes()),
        ("jobs".to_string(), jobs.to_pretty().into_bytes()),
        ("events".to_string(), events.to_pretty().into_bytes()),
        ("pool".to_string(), pool.to_pretty().into_bytes()),
        ("ttr".to_string(), ttr.to_pretty().into_bytes()),
        ("meter".to_string(), meter.to_pretty().into_bytes()),
        ("loop".to_string(), loop_state.to_pretty().into_bytes()),
        ("metrics".to_string(), st.metrics.to_json()?.into_bytes()),
        ("history".to_string(), sys.history.to_json()?.into_bytes()),
    ])
}

/// Rebuilds the mid-run state from a decoded snapshot.
pub(super) fn restore_run(
    sys: &mut DltSystem,
    specs: &[DltJobSpec],
    policy: DltPolicy,
    records: &[(String, Vec<u8>)],
) -> Result<DltRunState> {
    let meta = record_json(records, "meta")?;
    if meta.get("format").and_then(Json::as_str) != Some(FORMAT) {
        return Err(corrupt("unknown meta.format"));
    }
    let fp = meta
        .get("fingerprint")
        .and_then(Json::as_u64_str)
        .ok_or_else(|| corrupt("missing meta.fingerprint"))?;
    if fp != fingerprint(sys, specs, policy) {
        return Err(RotaryError::InvalidConfig(
            "snapshot fingerprint does not match this workload/policy/config; \
             refusing to resume a different run"
                .into(),
        ));
    }
    let epochs_done = meta
        .get("epochs_done")
        .and_then(Json::as_u64_str)
        .ok_or_else(|| corrupt("missing meta.epochs_done"))?;

    sys.history = HistoryRepository::from_json(record_text(records, "history")?)?;
    let metrics = WorkloadMetrics::from_json(record_text(records, "metrics")?)?;

    let mut meter = match sys.config.overhead_probe {
        Some(probe) => OverheadMeter::with_clock(probe),
        None => OverheadMeter::default(),
    };
    let mut jobs = sys.build_jobs(specs, &mut meter);
    let meter_doc = record_json(records, "meter")?;
    restore_meter(&mut meter, &meter_doc).ok_or_else(|| corrupt("malformed meter record"))?;

    let jobs_doc = record_json(records, "jobs")?;
    let jobs_arr = jobs_doc.as_arr().ok_or_else(|| corrupt("jobs record is not an array"))?;
    if jobs_arr.len() != jobs.len() {
        return Err(corrupt("job count does not match the workload"));
    }
    for (job, entry) in jobs.iter_mut().zip(jobs_arr) {
        restore_job(job, entry).ok_or_else(|| corrupt("malformed job entry"))?;
    }

    let events = restore_events(&record_json(records, "events")?, jobs.len())
        .ok_or_else(|| corrupt("malformed events record"))?;
    let pool = restore_pool(sys, &record_json(records, "pool")?)
        .ok_or_else(|| corrupt("malformed pool record"))?;
    let ttr = restore_ttr(&record_json(records, "ttr")?)
        .ok_or_else(|| corrupt("malformed ttr record"))?;

    let loop_doc = record_json(records, "loop")?;
    let rr_cursor = loop_doc
        .get("rr_cursor")
        .and_then(Json::as_u64_str)
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| corrupt("malformed loop.rr_cursor"))?;
    let makespan = loop_doc
        .get("makespan")
        .and_then(Json::as_u64_str)
        .map(SimTime::from_millis)
        .ok_or_else(|| corrupt("malformed loop.makespan"))?;

    // Control-plane caches are derived state: rebuilt lazily from the
    // restored jobs on the first arbitration after resume.
    Ok(DltRunState {
        jobs,
        events,
        pool,
        metrics,
        meter,
        ttr,
        rr_cursor,
        makespan,
        epochs_done,
        arb: super::DltArbCaches::default(),
    })
}

fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn job_json(job: &RunJob) -> Json {
    let (rng_state, rng_root) = job.sim.rng_state();
    Json::obj(vec![
        ("core", job.core.to_json()),
        (
            "sim",
            Json::obj(vec![
                ("epoch", u64_json(job.sim.epochs())),
                ("last_eval", Json::Num(job.sim.accuracy())),
                ("rng", rng_json(rng_state, rng_root)),
            ]),
        ),
        (
            "tee",
            Json::obj(vec![
                ("basis", Json::Str(basis_name(job.tee.basis()).to_string())),
                ("historical", points_json(job.tee.historical_points())),
                ("realtime", points_json(job.tee.realtime_points())),
            ]),
        ),
        ("memory_estimate_mb", u64_json(job.memory_estimate_mb)),
        ("converged_flag", Json::Bool(job.converged_flag)),
        ("in_memory", Json::Bool(job.in_memory)),
        (
            "last_device",
            match job.last_device {
                Some(d) => u64_json(d as u64),
                None => Json::Null,
            },
        ),
        ("epoch_start", u64_json(job.epoch_start.as_millis())),
        ("fault_attempts", Json::Num(job.fault_attempts as f64)),
        ("restores", u64_json(job.restores)),
        ("ckpt_writes", u64_json(job.ckpt_writes)),
    ])
}

fn restore_job(job: &mut RunJob, entry: &Json) -> Option<()> {
    job.core = JobState::from_json(entry.get("core")?, job.spec.criterion.clone())?;
    let sim = entry.get("sim")?;
    let epoch = sim.get("epoch")?.as_u64_str()?;
    let last_eval = sim.get("last_eval")?.as_f64()?;
    let (rng_state, rng_root) = rng_from_json(sim.get("rng")?)?;
    job.sim = TrainingSim::from_parts(job.spec.config, epoch, last_eval, rng_state, rng_root);
    let tee = entry.get("tee")?;
    let basis = basis_from_name(tee.get("basis")?.as_str()?)?;
    let mut estimator = JointCurveEstimator::new(basis, points_from(tee.get("historical")?)?);
    for (x, y) in points_from(tee.get("realtime")?)? {
        estimator.observe(x, y);
    }
    job.tee = estimator;
    job.memory_estimate_mb = entry.get("memory_estimate_mb")?.as_u64_str()?;
    job.converged_flag = entry.get("converged_flag")?.as_bool()?;
    job.in_memory = entry.get("in_memory")?.as_bool()?;
    job.last_device = match entry.get("last_device")? {
        Json::Null => None,
        value => Some(usize::try_from(value.as_u64_str()?).ok()?),
    };
    job.epoch_start = SimTime::from_millis(entry.get("epoch_start")?.as_u64_str()?);
    job.fault_attempts = u32::try_from(entry.get("fault_attempts")?.as_u64()?).ok()?;
    job.restores = entry.get("restores")?.as_u64_str()?;
    job.ckpt_writes = entry.get("ckpt_writes")?.as_u64_str()?;
    Some(())
}

fn events_json(events: &EventQueue<Event>) -> Json {
    Json::obj(vec![
        ("now", u64_json(events.now().as_millis())),
        ("next_seq", u64_json(events.next_seq())),
        (
            "entries",
            Json::Arr(
                events.pending().into_iter().map(|(at, seq, e)| event_json(at, seq, e)).collect(),
            ),
        ),
    ])
}

fn event_json(at: SimTime, seq: u64, event: &Event) -> Json {
    let mut fields = vec![("at", u64_json(at.as_millis())), ("seq", u64_json(seq))];
    let kind = match event {
        Event::EpochDone(i) => {
            fields.push(("job", u64_json(*i as u64)));
            "epoch-done"
        }
        Event::EpochFailed(i) => {
            fields.push(("job", u64_json(*i as u64)));
            "epoch-failed"
        }
        Event::RetryReady(i) => {
            fields.push(("job", u64_json(*i as u64)));
            "retry-ready"
        }
        Event::Wake => "wake",
    };
    fields.push(("kind", Json::Str(kind.to_string())));
    Json::obj(fields)
}

fn restore_events(doc: &Json, job_count: usize) -> Option<EventQueue<Event>> {
    let now = SimTime::from_millis(doc.get("now")?.as_u64_str()?);
    let next_seq = doc.get("next_seq")?.as_u64_str()?;
    let mut entries = Vec::new();
    for e in doc.get("entries")?.as_arr()? {
        let at = SimTime::from_millis(e.get("at")?.as_u64_str()?);
        let seq = e.get("seq")?.as_u64_str()?;
        let kind = e.get("kind")?.as_str()?;
        let payload = if kind == "wake" {
            Event::Wake
        } else {
            let i = usize::try_from(e.get("job")?.as_u64_str()?).ok()?;
            if i >= job_count {
                return None;
            }
            match kind {
                "epoch-done" => Event::EpochDone(i),
                "epoch-failed" => Event::EpochFailed(i),
                "retry-ready" => Event::RetryReady(i),
                _ => return None,
            }
        };
        entries.push((at, seq, payload));
    }
    Some(EventQueue::restore(now, next_seq, entries))
}

fn restore_pool(sys: &DltSystem, doc: &Json) -> Option<GpuPool> {
    let mut pool = GpuPool::new(sys.config.pool.clone());
    for o in doc.get("occupants")?.as_arr()? {
        let job = JobId(o.get("job")?.as_u64_str()?);
        let device = usize::try_from(o.get("device")?.as_u64_str()?).ok()?;
        // Pre-check what `place` would assert on, so damaged input is a
        // typed error, never a panic.
        if pool.occupants().get(device)?.is_some() || pool.device_of(job).is_some() {
            return None;
        }
        pool.place(job, device);
    }
    Some(pool)
}

fn restore_ttr(doc: &Json) -> Option<Ttr> {
    let mut ttr = Ttr::new();
    for e in doc.get("entries")?.as_arr()? {
        let job = JobId(e.get("job")?.as_u64_str()?);
        let device = usize::try_from(e.get("device")?.as_u64_str()?).ok()?;
        let t = SimTime::from_millis(e.get("ms")?.as_u64_str()?);
        ttr.record(job, device, t);
    }
    Some(ttr)
}

fn restore_meter(meter: &mut OverheadMeter, doc: &Json) -> Option<()> {
    meter.ttr = Duration::from_nanos(doc.get("ttr_ns")?.as_u64_str()?);
    meter.tee = Duration::from_nanos(doc.get("tee_ns")?.as_u64_str()?);
    meter.tme = Duration::from_nanos(doc.get("tme_ns")?.as_u64_str()?);
    Some(())
}

fn basis_name(basis: CurveBasis) -> &'static str {
    match basis {
        CurveBasis::Linear => "linear",
        CurveBasis::LogShifted => "log-shifted",
    }
}

fn basis_from_name(name: &str) -> Option<CurveBasis> {
    match name {
        "linear" => Some(CurveBasis::Linear),
        "log-shifted" => Some(CurveBasis::LogShifted),
        _ => None,
    }
}

fn points_json(points: &[(f64, f64)]) -> Json {
    Json::Arr(points.iter().map(|&(x, y)| Json::Arr(vec![Json::Num(x), Json::Num(y)])).collect())
}

fn points_from(doc: &Json) -> Option<Vec<(f64, f64)>> {
    let mut out = Vec::new();
    for p in doc.as_arr()? {
        let pair = p.as_arr()?;
        if pair.len() != 2 {
            return None;
        }
        out.push((pair.first()?.as_f64()?, pair.get(1)?.as_f64()?));
    }
    Some(out)
}

fn rng_json(state: [u64; 4], root: u64) -> Json {
    Json::obj(vec![
        ("s0", u64_json(state[0])),
        ("s1", u64_json(state[1])),
        ("s2", u64_json(state[2])),
        ("s3", u64_json(state[3])),
        ("root", u64_json(root)),
    ])
}

fn rng_from_json(doc: &Json) -> Option<([u64; 4], u64)> {
    Some((
        [
            doc.get("s0")?.as_u64_str()?,
            doc.get("s1")?.as_u64_str()?,
            doc.get("s2")?.as_u64_str()?,
            doc.get("s3")?.as_u64_str()?,
        ],
        doc.get("root")?.as_u64_str()?,
    ))
}

fn record_bytes<'r>(records: &'r [(String, Vec<u8>)], name: &str) -> Result<&'r [u8]> {
    records
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, payload)| payload.as_slice())
        .ok_or_else(|| corrupt(&format!("missing '{name}' record")))
}

fn record_text<'r>(records: &'r [(String, Vec<u8>)], name: &str) -> Result<&'r str> {
    std::str::from_utf8(record_bytes(records, name)?)
        .map_err(|_| corrupt(&format!("record '{name}' is not UTF-8")))
}

fn record_json(records: &[(String, Vec<u8>)], name: &str) -> Result<Json> {
    json::parse(record_text(records, name)?).map_err(|e| corrupt(&format!("record '{name}': {e}")))
}
