//! Property-based tests of the training simulator and DLT estimators:
//! curve shape, memory model, and workload sampling must hold for every
//! hyperparameter combination Table II can produce.

use rotary_check::{check, Source};
use rotary_dlt::models::LEARNING_RATES;
use rotary_dlt::{Architecture, Optimizer, TrainingConfig, TrainingSim};

fn arb_config(src: &mut Source) -> TrainingConfig {
    let arch = *src.pick(&Architecture::ALL);
    let batches = arch.batch_sizes();
    TrainingConfig {
        arch,
        batch_size: *src.pick(batches),
        optimizer: *src.pick(&Optimizer::ALL),
        learning_rate: *src.pick(&LEARNING_RATES),
        pretrained: src.bool(0.5) && arch.profile().pretrainable,
    }
}

/// The noise-free curve is monotone non-decreasing, bounded by the
/// effective peak, and starts at the configured start accuracy.
#[test]
fn curve_monotone_and_bounded() {
    check("curve_monotone_and_bounded", |src| {
        let config = arb_config(src);
        let peak = config.effective_peak();
        assert!((0.0..1.0).contains(&peak));
        assert!((config.start_accuracy() - config.accuracy_curve(0)).abs() < 1e-12);
        let mut prev = 0.0;
        for e in 0..200u64 {
            let a = config.accuracy_curve(e);
            assert!(a + 1e-12 >= prev, "curve decreased at epoch {e}");
            assert!(a <= peak + 1e-12);
            prev = a;
        }
    });
}

/// epochs_to_accuracy is a true inverse: the curve clears the target at
/// the returned epoch and not one epoch earlier.
#[test]
fn epochs_to_accuracy_is_tight() {
    check("epochs_to_accuracy_is_tight", |src| {
        let config = arb_config(src);
        let target = src.f64_in(0.05, 0.95);
        if let Some(e) = config.epochs_to_accuracy(target) {
            assert!(config.accuracy_curve(e) >= target - 1e-9);
            if e > 0 {
                assert!(config.accuracy_curve(e - 1) < target + 1e-9);
            }
        } else {
            // Unreachable: even 10 000 epochs stay below the target.
            assert!(config.accuracy_curve(10_000) < target + 0.01);
        }
    });
}

/// Memory fits the affine model and never underflows the parameter
/// footprint; effectiveness is in (0, 1].
#[test]
fn memory_and_effectiveness_bounds() {
    check("memory_and_effectiveness_bounds", |src| {
        let config = arb_config(src);
        let mem = config.memory_mb();
        let p = config.arch.profile();
        let weights_mb = (p.params_m * 4.0 * 2.0) as u64;
        assert!(mem > weights_mb, "memory {mem} below weights+grads {weights_mb}");
        let eff = config.effectiveness();
        assert!(eff > 0.0 && eff <= 1.0);
        // Sweet-spot learning rate maximises effectiveness over the grid.
        let best = LEARNING_RATES
            .iter()
            .map(|&lr| TrainingConfig { learning_rate: lr, ..config }.effectiveness())
            .fold(0.0f64, f64::max);
        assert!(best <= 1.0 + 1e-12);
    });
}

/// Observed (noisy) accuracy stays within a tight band of the clean
/// curve and inside [0, 1].
#[test]
fn observed_accuracy_tracks_curve() {
    check("observed_accuracy_tracks_curve", |src| {
        let config = arb_config(src);
        let seed = src.raw();
        let mut sim = TrainingSim::new(config, seed);
        for e in 1..=30u64 {
            let observed = sim.train_epoch();
            assert!((0.0..=1.0).contains(&observed));
            let clean = config.accuracy_curve(e);
            assert!((observed - clean).abs() < 0.02, "noise too large at epoch {e}");
        }
        assert_eq!(sim.epochs(), 30);
    });
}

/// Epoch time is positive, decreasing in device speed, and the
/// per-epoch sample count exactly covers the dataset.
#[test]
fn time_model_sane() {
    check("time_model_sane", |src| {
        let config = arb_config(src);
        let speed = src.f64_in(0.25, 4.0);
        time_model_holds_for(config, speed);
    });
}

fn time_model_holds_for(config: TrainingConfig, speed: f64) {
    let t = config.epoch_time(speed);
    assert!(t > rotary_core::SimTime::ZERO);
    assert!(config.epoch_time(speed * 2.0) < t);
    let covered = config.steps_per_epoch() * config.batch_size as u64;
    let samples = config.arch.dataset().train_samples();
    assert!(covered >= samples);
    assert!(covered - samples < config.batch_size as u64);
}

/// Former proptest regression seed (`props.proptest-regressions`): the
/// shrunken counterexample proptest once found for `time_model_sane`,
/// preserved as a named deterministic case.
#[test]
fn regression_time_model_lenet_smallest_batch() {
    let config = TrainingConfig {
        arch: Architecture::LeNet,
        batch_size: 4,
        optimizer: Optimizer::Sgd,
        learning_rate: 0.1,
        pretrained: false,
    };
    time_model_holds_for(config, 1.0472809695593754);
}
