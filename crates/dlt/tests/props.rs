//! Property-based tests of the training simulator and DLT estimators:
//! curve shape, memory model, and workload sampling must hold for every
//! hyperparameter combination Table II can produce.

use proptest::prelude::*;
use rotary_dlt::models::LEARNING_RATES;
use rotary_dlt::{Architecture, Optimizer, TrainingConfig, TrainingSim};

fn arb_config() -> impl Strategy<Value = TrainingConfig> {
    (
        0..Architecture::ALL.len(),
        0..Optimizer::ALL.len(),
        0..LEARNING_RATES.len(),
        any::<bool>(),
        0usize..5,
    )
        .prop_map(|(a, o, l, pre, b)| {
            let arch = Architecture::ALL[a];
            let batches = arch.batch_sizes();
            TrainingConfig {
                arch,
                batch_size: batches[b % batches.len()],
                optimizer: Optimizer::ALL[o],
                learning_rate: LEARNING_RATES[l],
                pretrained: pre && arch.profile().pretrainable,
            }
        })
}

proptest! {
    /// The noise-free curve is monotone non-decreasing, bounded by the
    /// effective peak, and starts at the configured start accuracy.
    #[test]
    fn curve_monotone_and_bounded(config in arb_config()) {
        let peak = config.effective_peak();
        prop_assert!((0.0..1.0).contains(&peak));
        prop_assert!((config.start_accuracy() - config.accuracy_curve(0)).abs() < 1e-12);
        let mut prev = 0.0;
        for e in 0..200u64 {
            let a = config.accuracy_curve(e);
            prop_assert!(a + 1e-12 >= prev, "curve decreased at epoch {e}");
            prop_assert!(a <= peak + 1e-12);
            prev = a;
        }
    }

    /// epochs_to_accuracy is a true inverse: the curve clears the target at
    /// the returned epoch and not one epoch earlier.
    #[test]
    fn epochs_to_accuracy_is_tight(config in arb_config(), target in 0.05f64..0.95) {
        if let Some(e) = config.epochs_to_accuracy(target) {
            prop_assert!(config.accuracy_curve(e) >= target - 1e-9);
            if e > 0 {
                prop_assert!(config.accuracy_curve(e - 1) < target + 1e-9);
            }
        } else {
            // Unreachable: even 10 000 epochs stay below the target.
            prop_assert!(config.accuracy_curve(10_000) < target + 0.01);
        }
    }

    /// Memory fits the affine model and never underflows the parameter
    /// footprint; effectiveness is in (0, 1].
    #[test]
    fn memory_and_effectiveness_bounds(config in arb_config()) {
        let mem = config.memory_mb();
        let p = config.arch.profile();
        let weights_mb = (p.params_m * 4.0 * 2.0) as u64;
        prop_assert!(mem > weights_mb, "memory {mem} below weights+grads {weights_mb}");
        let eff = config.effectiveness();
        prop_assert!(eff > 0.0 && eff <= 1.0);
        // Sweet-spot learning rate maximises effectiveness over the grid.
        let best = LEARNING_RATES
            .iter()
            .map(|&lr| TrainingConfig { learning_rate: lr, ..config }.effectiveness())
            .fold(0.0f64, f64::max);
        prop_assert!(best <= 1.0 + 1e-12);
    }

    /// Observed (noisy) accuracy stays within a tight band of the clean
    /// curve and inside [0, 1].
    #[test]
    fn observed_accuracy_tracks_curve(config in arb_config(), seed in any::<u64>()) {
        let mut sim = TrainingSim::new(config, seed);
        for e in 1..=30u64 {
            let observed = sim.train_epoch();
            prop_assert!((0.0..=1.0).contains(&observed));
            let clean = config.accuracy_curve(e);
            prop_assert!((observed - clean).abs() < 0.02, "noise too large at epoch {e}");
        }
        prop_assert_eq!(sim.epochs(), 30);
    }

    /// Epoch time is positive, decreasing in device speed, and the
    /// per-epoch sample count exactly covers the dataset.
    #[test]
    fn time_model_sane(config in arb_config(), speed in 0.25f64..4.0) {
        let t = config.epoch_time(speed);
        prop_assert!(t > rotary_core::SimTime::ZERO);
        prop_assert!(config.epoch_time(speed * 2.0) < t);
        let covered = config.steps_per_epoch() * config.batch_size as u64;
        let samples = config.arch.dataset().train_samples();
        prop_assert!(covered >= samples);
        prop_assert!(covered - samples < config.batch_size as u64);
    }
}
