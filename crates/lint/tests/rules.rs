//! Per-rule fixtures: each rule fires on its violating fixture, stays
//! silent on the clean twin, and respects both allow annotations and
//! `#[cfg(test)]` scoping — plus a workspace-level test asserting the tree
//! this crate ships in is lint-clean under the checked-in baseline.

use rotary_lint::rules::{scan_file, Violation};
use rotary_lint::{analyze_workspace, gate, Baseline, BASELINE_FILE};

/// Scans a fixture and returns the rule ids that fired (hard violations
/// only; P001 sites are returned separately by `scan_file`).
fn fired(path: &str, src: &str) -> Vec<&'static str> {
    scan_file(path, src).violations.iter().map(|v| v.rule).collect()
}

fn p001_count(path: &str, src: &str) -> usize {
    scan_file(path, src).p001_sites.len()
}

// ---------------------------------------------------------------- D001 --

const ENGINE_PATH: &str = "crates/engine/src/fixture.rs";

#[test]
fn d001_fires_on_hash_collections_in_deterministic_crates() {
    let src = "use std::collections::HashMap;\nfn f() -> HashSet<u32> { todo!() }\n";
    let rules = fired(ENGINE_PATH, src);
    assert_eq!(rules, vec!["D001", "D001"], "one per token occurrence");
    let v: Vec<Violation> = scan_file(ENGINE_PATH, src).violations;
    assert_eq!((v[0].line, v[1].line), (1, 2));
}

#[test]
fn d001_is_silent_on_btree_twin_and_outside_scope() {
    let clean = "use std::collections::BTreeMap;\nfn f() -> BTreeSet<u32> { todo!() }\n";
    assert!(fired(ENGINE_PATH, clean).is_empty());
    let hash = "use std::collections::HashMap;\n";
    assert!(fired("crates/bench/src/fixture.rs", hash).is_empty(), "bench is out of scope");
    assert!(fired("crates/tpch/src/fixture.rs", hash).is_empty(), "tpch is out of scope");
}

#[test]
fn d001_respects_allow_and_cfg_test() {
    let allowed = "use std::collections::HashMap; // rotary-lint: allow(D001) point lookups only\n";
    assert!(fired(ENGINE_PATH, allowed).is_empty());
    let above = "// rotary-lint: allow(D001) point lookups only\nuse std::collections::HashMap;\n";
    assert!(fired(ENGINE_PATH, above).is_empty(), "stand-alone comment allows the next line");
    let in_test = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
    assert!(fired(ENGINE_PATH, in_test).is_empty());
}

#[test]
fn d001_and_d003_cover_the_columnar_data_plane_modules() {
    // The columnar rewrite's modules live under crates/engine/src/ and must
    // sit inside the determinism scope: a hash map in a kernel or an
    // ambient RNG in chunk evaluation would break the bit-identity
    // contract, so the lint has to catch both.
    for path in ["crates/engine/src/columnar.rs", "crates/engine/src/kernels.rs"] {
        let hash = "use std::collections::HashMap;\n";
        assert_eq!(fired(path, hash), vec!["D001"], "{path} must be in D001 scope");
        let rng = "let r = thread_rng();\n";
        assert_eq!(fired(path, rng), vec!["D003"], "{path} must be in D003 scope");
        let random_state = "let s = RandomState::new();\n";
        assert_eq!(fired(path, random_state), vec!["D003"], "{path}: RandomState is ambient");
    }
}

#[test]
fn d001_ignores_strings_and_comments() {
    let src = "// HashMap would break replay\nconst DOC: &str = \"uses HashMap\";\n";
    assert!(fired(ENGINE_PATH, src).is_empty());
}

// ---------------------------------------------------------------- D002 --

#[test]
fn d002_fires_on_wall_clock_outside_bench() {
    let src = "use std::time::Instant;\nlet t = std::time::SystemTime::now();\n";
    assert_eq!(fired("crates/dlt/src/fixture.rs", src), vec!["D002", "D002"]);
    assert_eq!(fired("src/fixture.rs", src), vec!["D002", "D002"], "root package is in scope");
}

#[test]
fn d002_is_silent_in_bench_and_tests() {
    let src = "use std::time::Instant;\n";
    assert!(fired("crates/bench/src/timing.rs", src).is_empty());
    assert!(fired("crates/dlt/tests/fixture.rs", src).is_empty(), "tests dir is exempt");
    let in_test = "#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n}\n";
    assert!(fired("crates/dlt/src/fixture.rs", in_test).is_empty());
}

// ---------------------------------------------------------------- D003 --

#[test]
fn d003_fires_everywhere_including_tests() {
    let src = "let mut rng = thread_rng();\n";
    assert_eq!(fired("crates/engine/src/fixture.rs", src), vec!["D003"]);
    assert_eq!(fired("crates/engine/tests/fixture.rs", src), vec!["D003"]);
    let in_test = "#[cfg(test)]\nmod tests {\n    use rand::rngs::OsRng;\n}\n";
    assert_eq!(fired("crates/engine/src/fixture.rs", in_test), vec!["D003"]);
}

#[test]
fn d003_exempts_the_rng_implementation_itself() {
    let src =
        "// mirrors SmallRng's layout\nconst REF: &str = \"thread_rng\";\nfn from_entropy() {}\n";
    assert!(fired("crates/sim/src/rng.rs", src).is_empty());
    assert_eq!(fired("crates/sim/src/pool.rs", src), vec!["D003"], "only rng.rs is exempt");
}

// ---------------------------------------------------------------- P001 --

#[test]
fn p001_counts_panic_capable_calls() {
    let src = "let a = x.unwrap();\nlet b = y.expect(\"msg\");\npanic!(\"boom\");\n";
    assert_eq!(p001_count(ENGINE_PATH, src), 3);
    assert!(fired(ENGINE_PATH, src).is_empty(), "P001 sites are ratcheted, not hard errors");
}

#[test]
fn p001_ignores_non_panicking_lookalikes() {
    let src = "let a = x.unwrap_or(0);\nlet b = y.unwrap_or_else(init);\nlet c = z.expect_err(\"e\");\nlet d = w.unwrap_or_default();\n";
    assert_eq!(p001_count(ENGINE_PATH, src), 0);
}

#[test]
fn p001_exempts_tests_and_respects_allow() {
    let in_test = "#[test]\nfn t() {\n    x.unwrap();\n}\n";
    assert_eq!(p001_count(ENGINE_PATH, in_test), 0);
    assert_eq!(p001_count("crates/engine/tests/fixture.rs", "x.unwrap();\n"), 0);
    let allowed = "x.unwrap(); // rotary-lint: allow(P001) invariant: checked above\n";
    assert_eq!(p001_count(ENGINE_PATH, allowed), 0);
}

// ---------------------------------------------------------------- U001 --

#[test]
fn u001_fires_on_undocumented_unsafe() {
    let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    assert_eq!(fired(ENGINE_PATH, src), vec!["U001"]);
}

#[test]
fn u001_accepts_safety_comment_on_or_above_the_line() {
    let same = "let v = unsafe { *p }; // SAFETY: p is checked non-null above\n";
    assert!(fired(ENGINE_PATH, same).is_empty());
    let above = "// SAFETY: p outlives the call — caller holds the arena\nlet v = unsafe { *p };\n";
    assert!(fired(ENGINE_PATH, above).is_empty());
    let two_up = "// SAFETY: index bounded by the loop condition\n// (the extra line still counts)\nlet v = unsafe { *p };\n";
    assert!(fired(ENGINE_PATH, two_up).is_empty());
}

#[test]
fn u001_blank_line_breaks_the_comment_run() {
    let src = "// SAFETY: stale justification\n\nlet v = unsafe { *p };\n";
    assert_eq!(fired(ENGINE_PATH, src), vec!["U001"]);
}

// ---------------------------------------------------------------- A001 --

#[test]
fn a001_rejects_unknown_rules_missing_reasons_and_malformed_markers() {
    let unknown = "x(); // rotary-lint: allow(D999) because\n";
    assert_eq!(fired(ENGINE_PATH, unknown), vec!["A001"]);
    let no_reason = "x(); // rotary-lint: allow(D001)\n";
    assert_eq!(fired(ENGINE_PATH, no_reason), vec!["A001"]);
    let malformed = "x(); // rotary-lint: disable everything\n";
    assert_eq!(fired(ENGINE_PATH, malformed), vec!["A001"]);
}

#[test]
fn a001_multi_rule_allow_with_reason_is_accepted() {
    let src = "use std::collections::HashMap; // rotary-lint: allow(D001, P001) scratch index, infallible here\n";
    let scan = scan_file(ENGINE_PATH, src);
    assert!(scan.violations.is_empty());
    assert!(scan.p001_sites.is_empty());
}

// ------------------------------------------------------------ workspace --

/// The tree this crate ships in must be lint-clean under the checked-in
/// baseline: no hard violations, no ratchet overshoot, no staleness.
#[test]
fn workspace_is_lint_clean_under_the_checked_in_baseline() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let analysis = analyze_workspace(&root).expect("workspace scan");
    let text = std::fs::read_to_string(root.join(BASELINE_FILE)).expect("baseline present");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    let report = gate(&analysis, &baseline);
    assert!(
        report.violations.is_empty(),
        "workspace has lint violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!("{}:{}: {} {}", v.path, v.line, v.rule, v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.stale.is_empty(), "stale baseline:\n{}", report.stale.join("\n"));
    assert!(analysis.files_scanned > 50, "walk found {} files", analysis.files_scanned);
}
