//! Per-rule fixtures: each rule fires on its violating fixture, stays
//! silent on the clean twin, and respects both allow annotations and
//! `#[cfg(test)]` scoping — plus a workspace-level test asserting the tree
//! this crate ships in is lint-clean under the checked-in baseline, and a
//! cross-check pinning the hardcoded `LAYERS` table to the Cargo.toml
//! manifests.

use rotary_lint::rules::{rule, scan_file, Violation, LAYERS, RULES};
use rotary_lint::{analyze_workspace, gate, lock_cycle_violations, Baseline, BASELINE_FILE};
use std::collections::BTreeSet;

/// Scans a fixture and returns the rule ids of the *hard* violations that
/// fired (ratcheted sites are returned separately by `scan_file`).
fn fired(path: &str, src: &str) -> Vec<&'static str> {
    scan_file(path, src).violations.iter().map(|v| v.rule).collect()
}

/// Number of ratcheted sites of `id` in the fixture.
fn sites(path: &str, src: &str, id: &str) -> usize {
    scan_file(path, src).ratchet_sites.iter().filter(|v| v.rule == id).count()
}

const ENGINE_PATH: &str = "crates/engine/src/fixture.rs";

// ------------------------------------------------------------- catalog --

#[test]
fn rule_catalog_is_well_formed() {
    let ids: BTreeSet<&str> = RULES.iter().map(|r| r.id).collect();
    assert_eq!(ids.len(), RULES.len(), "rule ids must be unique");
    for r in RULES {
        assert!(!r.summary.is_empty(), "{}: empty summary", r.id);
        assert!(!r.scope.is_empty(), "{}: every rule documents its walk scope", r.id);
        assert!(!r.explain.is_empty(), "{}: every rule has an --explain text", r.id);
    }
    let ratcheted: Vec<&str> = RULES.iter().filter(|r| r.ratcheted).map(|r| r.id).collect();
    assert_eq!(ratcheted, vec!["P001", "F001", "F002", "F003"]);
    assert!(rule("D001").is_some());
    assert!(rule("Z999").is_none());
}

// ---------------------------------------------------------------- D001 --

#[test]
fn d001_fires_on_hash_collections_in_deterministic_crates() {
    let src = "use std::collections::HashMap;\nfn f() -> HashSet<u32> { todo!() }\n";
    let rules = fired(ENGINE_PATH, src);
    assert_eq!(rules, vec!["D001", "D001"], "one per token occurrence");
    let v: Vec<Violation> = scan_file(ENGINE_PATH, src).violations;
    assert_eq!((v[0].line, v[1].line), (1, 2));
    assert!(v[0].col > 1, "span column points at the token, not the line start");
}

#[test]
fn d001_is_silent_on_btree_twin_and_outside_scope() {
    let clean = "use std::collections::BTreeMap;\nfn f() -> BTreeSet<u32> { todo!() }\n";
    assert!(fired(ENGINE_PATH, clean).is_empty());
    let hash = "use std::collections::HashMap;\n";
    assert!(fired("crates/bench/src/fixture.rs", hash).is_empty(), "bench is out of scope");
    assert!(fired("crates/tpch/src/fixture.rs", hash).is_empty(), "tpch is out of scope");
}

#[test]
fn d001_respects_allow_and_cfg_test() {
    let allowed = "use std::collections::HashMap; // rotary-lint: allow(D001) point lookups only\n";
    assert!(fired(ENGINE_PATH, allowed).is_empty());
    let above = "// rotary-lint: allow(D001) point lookups only\nuse std::collections::HashMap;\n";
    assert!(fired(ENGINE_PATH, above).is_empty(), "stand-alone comment allows the next line");
    let in_test = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
    assert!(fired(ENGINE_PATH, in_test).is_empty());
}

#[test]
fn d001_and_d003_cover_the_columnar_data_plane_modules() {
    // The columnar rewrite's modules live under crates/engine/src/ and must
    // sit inside the determinism scope: a hash map in a kernel or an
    // ambient RNG in chunk evaluation would break the bit-identity
    // contract, so the lint has to catch both.
    for path in ["crates/engine/src/columnar.rs", "crates/engine/src/kernels.rs"] {
        let hash = "use std::collections::HashMap;\n";
        assert_eq!(fired(path, hash), vec!["D001"], "{path} must be in D001 scope");
        let rng = "let r = thread_rng();\n";
        assert_eq!(fired(path, rng), vec!["D003"], "{path} must be in D003 scope");
        let random_state = "let s = RandomState::new();\n";
        assert_eq!(fired(path, random_state), vec!["D003"], "{path}: RandomState is ambient");
    }
}

#[test]
fn d001_ignores_strings_and_comments() {
    let src = "// HashMap would break replay\nconst DOC: &str = \"uses HashMap\";\n";
    assert!(fired(ENGINE_PATH, src).is_empty());
}

// ---------------------------------------------------------------- D002 --

#[test]
fn d002_fires_on_wall_clock_outside_bench() {
    let src = "use std::time::Instant;\nlet t = std::time::SystemTime::now();\n";
    assert_eq!(fired("crates/dlt/src/fixture.rs", src), vec!["D002", "D002"]);
    assert_eq!(fired("src/fixture.rs", src), vec!["D002", "D002"], "root package is in scope");
}

#[test]
fn d002_is_silent_in_bench_and_tests() {
    let src = "use std::time::Instant;\n";
    assert!(fired("crates/bench/src/timing.rs", src).is_empty());
    assert!(fired("crates/dlt/tests/fixture.rs", src).is_empty(), "tests dir is exempt");
    let in_test = "#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n}\n";
    assert!(fired("crates/dlt/src/fixture.rs", in_test).is_empty());
}

#[test]
fn d002_covers_the_network_transport() {
    // The TCP front-end is exactly the place a wall-clock read would creep
    // in (deadlines, idle timers); the transport must stay on the injected
    // Clock seam so the loopback and chaos suites replay bit-identically.
    let src = "let t0 = std::time::Instant::now();\nlet wall = SystemTime::now();\n";
    assert_eq!(fired("crates/serve/src/transport.rs", src), vec!["D002", "D002"]);
    // The CLI composition root is in scope too — its one blessed read
    // carries an allow annotation.
    let allowed = "// rotary-lint: allow(D002) composition root\nlet epoch = Instant::now();\n";
    assert!(fired("src/bin/rotary-cli.rs", allowed).is_empty());
}

#[test]
fn d002_matches_whole_tokens_not_substrings() {
    // The pre-token analyzer matched on substrings with hand-rolled word
    // boundaries; the lexer makes this structural. An identifier that merely
    // *contains* a banned name can never fire.
    let src = "struct InstantaneousRate;\nlet instant_like = InstantCache::new();\n\
               fn system_time_of(x: u64) -> u64 { x }\n";
    assert!(fired("crates/dlt/src/fixture.rs", src).is_empty());
    let s = "const NOTE: &str = \"Instant and SystemTime are banned here\";\n";
    assert!(fired("crates/dlt/src/fixture.rs", s).is_empty(), "string literals never fire");
}

// ---------------------------------------------------------------- D003 --

#[test]
fn d003_fires_everywhere_including_tests() {
    let src = "let mut rng = thread_rng();\n";
    assert_eq!(fired("crates/engine/src/fixture.rs", src), vec!["D003"]);
    assert_eq!(fired("crates/engine/tests/fixture.rs", src), vec!["D003"]);
    assert_eq!(fired("src/fixture.rs", src), vec!["D003"], "root src/ is in scope");
    assert_eq!(fired("tests/fixture.rs", src), vec!["D003"], "root tests/ are in scope");
    let in_test = "#[cfg(test)]\nmod tests {\n    use rand::rngs::OsRng;\n}\n";
    assert_eq!(fired("crates/engine/src/fixture.rs", in_test), vec!["D003"]);
}

#[test]
fn d003_exempts_the_rng_implementation_itself() {
    let src =
        "// mirrors SmallRng's layout\nconst REF: &str = \"thread_rng\";\nfn from_entropy() {}\n";
    assert!(fired("crates/sim/src/rng.rs", src).is_empty());
    assert_eq!(fired("crates/sim/src/pool.rs", src), vec!["D003"], "only rng.rs is exempt");
}

#[test]
fn d003_matches_whole_tokens_not_substrings() {
    let src = "let thread_rng_seed = 7;\nfn getrandom_shim() {}\nstruct OsRngLike;\n";
    assert!(fired("crates/engine/src/fixture.rs", src).is_empty());
}

// ---------------------------------------------------------------- P001 --

#[test]
fn p001_counts_panic_capable_calls() {
    let src = "let a = x.unwrap();\nlet b = y.expect(\"msg\");\npanic!(\"boom\");\n";
    assert_eq!(sites(ENGINE_PATH, src, "P001"), 3);
    assert!(fired(ENGINE_PATH, src).is_empty(), "P001 sites are ratcheted, not hard errors");
}

#[test]
fn p001_ignores_non_panicking_lookalikes() {
    let src = "let a = x.unwrap_or(0);\nlet b = y.unwrap_or_else(init);\nlet c = z.expect_err(\"e\");\nlet d = w.unwrap_or_default();\n";
    assert_eq!(sites(ENGINE_PATH, src, "P001"), 0);
}

#[test]
fn p001_exempts_tests_and_respects_allow() {
    let in_test = "#[test]\nfn t() {\n    x.unwrap();\n}\n";
    assert_eq!(sites(ENGINE_PATH, in_test, "P001"), 0);
    assert_eq!(sites("crates/engine/tests/fixture.rs", "x.unwrap();\n", "P001"), 0);
    let allowed = "x.unwrap(); // rotary-lint: allow(P001) invariant: checked above\n";
    assert_eq!(sites(ENGINE_PATH, allowed, "P001"), 0);
}

#[test]
fn p001_exempts_parser_style_expect_with_literal_argument() {
    // The token-level fix that retires the PR 4 `expect_byte` rename:
    // `.expect(b'{')` takes a byte literal, so it cannot be Result::expect
    // (whose argument is a message). Only string-message expects count.
    assert_eq!(sites(ENGINE_PATH, "self.expect(b'{')?;\n", "P001"), 0);
    assert_eq!(sites(ENGINE_PATH, "self.expect('x')?;\n", "P001"), 0);
    assert_eq!(sites(ENGINE_PATH, "self.expect(42)?;\n", "P001"), 0);
    assert_eq!(sites(ENGINE_PATH, "r.expect(\"queue non-empty\");\n", "P001"), 1);
    // And the old workaround spelling stays silent too, as a plain method
    // name: `expect_byte` is a different token than `expect`.
    assert_eq!(sites(ENGINE_PATH, "self.expect_byte(b'{')?;\n", "P001"), 0);
    assert!(fired(ENGINE_PATH, "self.expect_byte(b'{')?;\n").is_empty());
}

#[test]
fn p001_requires_a_method_call_shape() {
    // A free function named `unwrap` or a field access without a call never
    // fires: the rule needs `.` before and `(` after the identifier.
    let src = "fn unwrap() {}\nlet f = unwrap;\nlet g = s.unwrap_count;\n";
    assert_eq!(sites(ENGINE_PATH, src, "P001"), 0);
}

// ---------------------------------------------------------------- U001 --

#[test]
fn u001_fires_on_undocumented_unsafe() {
    let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    assert_eq!(fired(ENGINE_PATH, src), vec!["U001"]);
}

#[test]
fn u001_accepts_safety_comment_on_or_above_the_line() {
    let same = "let v = unsafe { *p }; // SAFETY: p is checked non-null above\n";
    assert!(fired(ENGINE_PATH, same).is_empty());
    let above = "// SAFETY: p outlives the call — caller holds the arena\nlet v = unsafe { *p };\n";
    assert!(fired(ENGINE_PATH, above).is_empty());
    let two_up = "// SAFETY: index bounded by the loop condition\n// (the extra line still counts)\nlet v = unsafe { *p };\n";
    assert!(fired(ENGINE_PATH, two_up).is_empty());
}

#[test]
fn u001_blank_line_breaks_the_comment_run() {
    let src = "// SAFETY: stale justification\n\nlet v = unsafe { *p };\n";
    assert_eq!(fired(ENGINE_PATH, src), vec!["U001"]);
}

// ---------------------------------------------------------------- A001 --

#[test]
fn a001_rejects_unknown_rules_missing_reasons_and_malformed_markers() {
    let unknown = "x(); // rotary-lint: allow(D999) because\n";
    assert_eq!(fired(ENGINE_PATH, unknown), vec!["A001"]);
    let no_reason = "x(); // rotary-lint: allow(D001)\n";
    assert_eq!(fired(ENGINE_PATH, no_reason), vec!["A001"]);
    let malformed = "x(); // rotary-lint: disable everything\n";
    assert_eq!(fired(ENGINE_PATH, malformed), vec!["A001"]);
}

#[test]
fn a001_multi_rule_allow_with_reason_is_accepted() {
    let src = "use std::collections::HashMap; // rotary-lint: allow(D001, P001) scratch index, infallible here\n";
    let scan = scan_file(ENGINE_PATH, src);
    assert!(scan.violations.is_empty());
    assert!(scan.ratchet_sites.is_empty());
}

#[test]
fn a001_knows_the_new_rule_families() {
    for id in ["R001", "R002", "R003", "F001", "F002", "F003", "L001"] {
        let src = format!("x(); // rotary-lint: allow({id}) fixture reason\n");
        assert!(fired(ENGINE_PATH, &src).is_empty(), "{id} must be a known rule");
    }
}

// ---------------------------------------------------------------- R001 --

#[test]
fn r001_fires_on_unsafe_impl_send_without_any_comment() {
    let src = "struct P(*mut u8);\nunsafe impl Send for P {}\n";
    // No comment at all: both the generic unsafe-hygiene rule and the
    // Send/Sync-specific one fire, anchored at the same token.
    assert_eq!(fired(ENGINE_PATH, src), vec!["R001", "U001"]);
}

#[test]
fn r001_fires_when_safety_comment_names_no_synchronization() {
    let src = "// SAFETY: this is obviously fine\nunsafe impl Send for P {}\n";
    assert_eq!(fired(ENGINE_PATH, src), vec!["R001"], "U001 is satisfied, R001 is not");
    let sync = "// SAFETY: all access goes through the pool mutex\nunsafe impl Send for P {}\n";
    assert!(fired(ENGINE_PATH, sync).is_empty());
}

#[test]
fn r001_resolves_the_trait_through_generic_bounds() {
    // `unsafe impl<T: Send> Send for Ptr<T>` must resolve to the *outer*
    // Send (the implemented trait), not the bound inside the angle
    // brackets.
    let src = "// SAFETY: the atomic cursor claim hands each worker disjoint indices\n\
               unsafe impl<T: Send> Sync for Ptr<T> {}\n";
    assert!(fired(ENGINE_PATH, src).is_empty());
    let bad = "// SAFETY: callers promise to be careful\nunsafe impl<T: Send> Sync for Ptr<T> {}\n";
    assert_eq!(fired(ENGINE_PATH, bad), vec!["R001"]);
}

#[test]
fn r001_only_applies_to_send_and_sync() {
    let src = "// SAFETY: the raw deref is bounds-checked by the caller\n\
               unsafe impl Widget for P {}\n";
    assert!(fired(ENGINE_PATH, src).is_empty(), "other unsafe trait impls are U001's job");
}

#[test]
fn r001_is_test_exempt_and_respects_allow() {
    let in_test =
        "#[cfg(test)]\nmod t {\n    // SAFETY: test-only shim\n    unsafe impl Send for P {}\n}\n";
    assert!(fired(ENGINE_PATH, in_test).is_empty());
    let allowed = "// rotary-lint: allow(R001) validated by the exhaustive interleaving test\n\
                   // SAFETY: see the proof sketch in DESIGN.md\n\
                   unsafe impl Send for P {}\n";
    assert!(fired(ENGINE_PATH, allowed).is_empty());
}

// ---------------------------------------------------------------- R002 --

#[test]
fn r002_fires_on_raw_mut_deref_inside_pool_closures() {
    let src = "fn f(pool: &Pool, base: *mut u32, n: usize) {\n\
               \x20   pool.run_indexed(n, &|i| {\n\
               \x20       // SAFETY: caller guarantees disjoint slots\n\
               \x20       unsafe { *(&mut *base) = 0 };\n\
               \x20   });\n\
               }\n";
    assert_eq!(fired(ENGINE_PATH, src), vec!["R002"]);
}

#[test]
fn r002_blesses_pointers_bound_through_sendptr() {
    let src = "fn f(pool: &Pool, items: &mut [u32], n: usize) {\n\
               \x20   let base = SendPtr(items.as_mut_ptr());\n\
               \x20   pool.run_indexed(n, &|i| {\n\
               \x20       // SAFETY: disjoint indices via the SendPtr idiom\n\
               \x20       unsafe { *(&mut *base.at(i)) = 0 };\n\
               \x20   });\n\
               }\n";
    // The deref target `base` was bound from `SendPtr(...)` in this file,
    // so it is blessed and the rule stays silent.
    assert!(fired(ENGINE_PATH, src).is_empty());
}

#[test]
fn r002_ignores_derefs_outside_pool_entry_points() {
    let src = "fn f(base: *mut u32) {\n\
               \x20   // SAFETY: exclusive access, single-threaded path\n\
               \x20   let r = unsafe { &mut *base };\n\
               \x20   *r = 1;\n\
               }\n";
    assert!(fired(ENGINE_PATH, src).is_empty(), "only pool closures race");
}

#[test]
fn r002_is_test_exempt_and_respects_allow() {
    let in_test = "#[cfg(test)]\nmod t {\n\
                   \x20   fn f(pool: &Pool, base: *mut u32) {\n\
                   \x20       // SAFETY: test fixture\n\
                   \x20       pool.run_indexed(1, &|_| unsafe { *(&mut *base) = 0 });\n\
                   \x20   }\n}\n";
    assert!(fired(ENGINE_PATH, in_test).is_empty());
    let allowed = "fn f(pool: &Pool, base: *mut u32) {\n\
                   \x20   // rotary-lint: allow(R002) reduction halves are provably disjoint\n\
                   \x20   // SAFETY: see above\n\
                   \x20   pool.run_indexed(1, &|_| unsafe { *(&mut *base) = 0 });\n\
                   }\n";
    assert!(fired(ENGINE_PATH, allowed).is_empty());
}

// ---------------------------------------------------------------- R003 --

#[test]
fn r003_records_edges_for_nested_lock_acquisitions() {
    let src = "fn first(&self) {\n\
               \x20   let g = self.a.lock().unwrap();\n\
               \x20   let h = self.b.lock().unwrap();\n\
               }\n";
    let scan = scan_file(ENGINE_PATH, src);
    assert_eq!(scan.lock_edges.len(), 1);
    let e = &scan.lock_edges[0];
    assert_eq!((e.held.as_str(), e.acquired.as_str(), e.func.as_str()), ("a", "b", "first"));
    assert!(lock_cycle_violations(&scan.lock_edges).is_empty(), "one direction is no cycle");
}

#[test]
fn r003_detects_an_order_inversion_across_functions() {
    let src = "fn first(&self) {\n\
               \x20   let g = self.a.lock().unwrap();\n\
               \x20   let h = self.b.lock().unwrap();\n\
               }\n\
               fn second(&self) {\n\
               \x20   let g = self.b.lock().unwrap();\n\
               \x20   let h = self.a.lock().unwrap();\n\
               }\n";
    let scan = scan_file(ENGINE_PATH, src);
    assert_eq!(scan.lock_edges.len(), 2);
    let cycles = lock_cycle_violations(&scan.lock_edges);
    assert_eq!(cycles.len(), 2, "every edge on the a<->b cycle fires");
    assert!(cycles.iter().all(|v| v.rule == "R003"));
}

#[test]
fn r003_detects_reacquiring_a_lock_already_held() {
    let src = "fn twice(&self) {\n\
               \x20   let g = self.a.lock().unwrap();\n\
               \x20   let h = self.a.lock().unwrap();\n\
               }\n";
    let scan = scan_file(ENGINE_PATH, src);
    let cycles = lock_cycle_violations(&scan.lock_edges);
    assert_eq!(cycles.len(), 1, "self-loop is an immediate deadlock");
}

#[test]
fn r003_chained_temporaries_release_at_the_semicolon() {
    let src = "fn seq(&self) {\n\
               \x20   self.a.lock().unwrap().x = 1;\n\
               \x20   self.b.lock().unwrap().y = 2;\n\
               }\n";
    assert!(scan_file(ENGINE_PATH, src).lock_edges.is_empty(), "sequential, never nested");
}

#[test]
fn r003_drop_and_block_end_release_durable_guards() {
    let dropped = "fn f(&self) {\n\
                   \x20   let g = self.a.lock().unwrap();\n\
                   \x20   drop(g);\n\
                   \x20   let h = self.b.lock().unwrap();\n\
                   }\n";
    assert!(scan_file(ENGINE_PATH, dropped).lock_edges.is_empty());
    let scoped = "fn f(&self) {\n\
                  \x20   {\n\
                  \x20       let g = self.a.lock().unwrap();\n\
                  \x20   }\n\
                  \x20   let h = self.b.lock().unwrap();\n\
                  }\n";
    assert!(scan_file(ENGINE_PATH, scoped).lock_edges.is_empty());
}

#[test]
fn r003_keys_locks_by_receiver_through_index_expressions() {
    let src = "fn f(&self) {\n\
               \x20   let g = self.slots[i].lock().unwrap();\n\
               \x20   let h = self.queue.lock().unwrap();\n\
               }\n";
    let scan = scan_file(ENGINE_PATH, src);
    assert_eq!(scan.lock_edges.len(), 1);
    assert_eq!(scan.lock_edges[0].held, "slots");
    assert_eq!(scan.lock_edges[0].acquired, "queue");
}

#[test]
fn r003_is_test_exempt_and_respects_allow() {
    let in_test = "#[cfg(test)]\nmod t {\n\
                   \x20   fn f(s: &S) {\n\
                   \x20       let g = s.a.lock().unwrap();\n\
                   \x20       let h = s.b.lock().unwrap();\n\
                   \x20   }\n}\n";
    assert!(scan_file(ENGINE_PATH, in_test).lock_edges.is_empty());
    let allowed = "fn f(&self) {\n\
                   \x20   let g = self.a.lock().unwrap();\n\
                   \x20   let h = self.b.lock().unwrap(); // rotary-lint: allow(R003) doc-ordered\n\
                   }\n";
    assert!(scan_file(ENGINE_PATH, allowed).lock_edges.is_empty());
}

// ---------------------------------------------------------------- F001 --

#[test]
fn f001_counts_libm_transcendentals_in_det_scope() {
    let src = "let y = x.sin();\nlet z = f64::ln(x);\nlet w = x.powf(2.5);\n";
    assert_eq!(sites(ENGINE_PATH, src, "F001"), 3);
    assert!(fired(ENGINE_PATH, src).is_empty(), "F001 is ratcheted, not a hard error");
}

#[test]
fn f001_exempts_sqrt_and_non_call_uses() {
    assert_eq!(sites(ENGINE_PATH, "let y = x.sqrt();\n", "F001"), 0, "sqrt is correctly rounded");
    let non_call = "let sin = 3;\nlet t = table.exp;\nfn cos_table() {}\n";
    assert_eq!(sites(ENGINE_PATH, non_call, "F001"), 0);
}

#[test]
fn f001_scope_is_det_crates_non_test_only() {
    let src = "let y = x.sin();\n";
    assert_eq!(sites("crates/tpch/src/fixture.rs", src, "F001"), 0, "tpch is out of det scope");
    assert_eq!(sites("crates/engine/tests/fixture.rs", src, "F001"), 0);
    let in_test = "#[cfg(test)]\nmod t {\n    let y = x.sin();\n}\n";
    assert_eq!(sites(ENGINE_PATH, in_test, "F001"), 0);
    let allowed = "let y = x.sin(); // rotary-lint: allow(F001) host-pinned, no replay claim\n";
    assert_eq!(sites(ENGINE_PATH, allowed, "F001"), 0);
}

// ---------------------------------------------------------------- F002 --

#[test]
fn f002_counts_float_casts_in_det_scope() {
    let src = "let y = n as f64;\nlet z = m as f32;\n";
    assert_eq!(sites(ENGINE_PATH, src, "F002"), 2);
    assert!(fired(ENGINE_PATH, src).is_empty(), "F002 is ratcheted, not a hard error");
}

#[test]
fn f002_ignores_integer_casts_and_import_renames() {
    let src = "let y = n as u64;\nlet z = m as usize;\nuse std::f64 as flt;\n";
    assert_eq!(sites(ENGINE_PATH, src, "F002"), 0);
}

#[test]
fn f002_scope_is_det_crates_non_test_only() {
    let src = "let y = n as f64;\n";
    assert_eq!(sites("crates/bench/src/fixture.rs", src, "F002"), 0);
    let in_test = "#[test]\nfn t() {\n    let y = n as f64;\n}\n";
    assert_eq!(sites(ENGINE_PATH, in_test, "F002"), 0);
    let allowed = "let y = n as f64; // rotary-lint: allow(F002) n <= 2^32, exact in f64\n";
    assert_eq!(sites(ENGINE_PATH, allowed, "F002"), 0);
}

// ---------------------------------------------------------------- F003 --

#[test]
fn f003_counts_float_accumulation_outside_the_kernels() {
    let src = "let s = v.iter().sum::<f64>();\nlet p = v.iter().product::<f32>();\n";
    assert_eq!(sites(ENGINE_PATH, src, "F003"), 2);
    assert!(fired(ENGINE_PATH, src).is_empty(), "F003 is ratcheted, not a hard error");
}

#[test]
fn f003_exempts_the_fold_kernels_and_integer_sums() {
    let src = "let s = v.iter().sum::<f64>();\n";
    assert_eq!(sites("crates/engine/src/kernels.rs", src, "F003"), 0, "kernels.rs is blessed");
    let ints = "let s = v.iter().sum::<u64>();\nlet c = v.iter().sum::<usize>();\n";
    assert_eq!(sites(ENGINE_PATH, ints, "F003"), 0);
}

#[test]
fn f003_scope_is_det_crates_non_test_only() {
    let src = "let s = v.iter().sum::<f64>();\n";
    assert_eq!(sites("crates/check/src/fixture.rs", src, "F003"), 0);
    let in_test = "#[cfg(test)]\nmod t {\n    let s = v.iter().sum::<f64>();\n}\n";
    assert_eq!(sites(ENGINE_PATH, in_test, "F003"), 0);
    let allowed =
        "let s = v.iter().sum::<f64>(); // rotary-lint: allow(F003) validation-only sum\n";
    assert_eq!(sites(ENGINE_PATH, allowed, "F003"), 0);
}

// ---------------------------------------------------------------- L001 --

#[test]
fn l001_fires_on_dependency_flow_inversions() {
    let src = "use rotary_serve::ServeDaemon;\n";
    assert_eq!(fired(ENGINE_PATH, src), vec!["L001"], "engine must not name serve items");
    let core_up = "use rotary_engine::Engine;\n";
    assert_eq!(fired("crates/core/src/fixture.rs", core_up), vec!["L001"]);
}

#[test]
fn l001_accepts_declared_dependencies_and_self_references() {
    let src = "use rotary_core::json::Json;\nuse rotary_par::Pool;\nuse rotary_tpch::gen;\n";
    assert!(fired(ENGINE_PATH, src).is_empty(), "engine declares core, par, tpch");
    let own = "use rotary_engine::columnar::Column;\n";
    assert!(fired(ENGINE_PATH, own).is_empty(), "self-reference (doc examples) is fine");
}

#[test]
fn l001_covers_the_root_crate() {
    let ok = "use rotary_serve::ServeDaemon;\nuse rotary_aqp::Controller;\n";
    assert!(fired("src/fixture.rs", ok).is_empty(), "the root crate sits above everything");
    let bad = "use rotary_lint::rules::scan_file;\n";
    assert_eq!(fired("src/fixture.rs", bad), vec!["L001"], "lint is a dev tool, not a dep");
}

#[test]
fn l001_ignores_unknown_suffixes_tests_and_allows() {
    let unknown = "use rotary_widgets::Gadget;\n";
    assert!(fired(ENGINE_PATH, unknown).is_empty(), "not a workspace crate");
    let in_tests_dir = "use rotary_serve::ServeDaemon;\n";
    assert!(fired("crates/engine/tests/fixture.rs", in_tests_dir).is_empty());
    assert!(fired("tests/fixture.rs", in_tests_dir).is_empty(), "root tests/ are dev-only");
    let in_cfg_test = "#[cfg(test)]\nmod t {\n    use rotary_serve::ServeDaemon;\n}\n";
    assert!(fired(ENGINE_PATH, in_cfg_test).is_empty());
    let allowed = "use rotary_serve::ServeDaemon; // rotary-lint: allow(L001) doc example only\n";
    assert!(fired(ENGINE_PATH, allowed).is_empty());
}

/// Pins the hardcoded `LAYERS` table to the actual Cargo.toml manifests:
/// for every crate, the set of `rotary-*` entries in `[dependencies]` must
/// equal the table row. The promise in rules.rs ("cross-checked against
/// the Cargo.toml manifests so it cannot drift") lives here.
#[test]
fn l001_layer_table_matches_the_cargo_manifests() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    for (krate, deps) in LAYERS {
        let manifest = if *krate == "rotary" {
            root.join("Cargo.toml")
        } else {
            root.join("crates").join(krate).join("Cargo.toml")
        };
        let text = std::fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        let mut in_deps = false;
        let mut found: BTreeSet<String> = BTreeSet::new();
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_deps = line == "[dependencies]";
                continue;
            }
            if !in_deps {
                continue;
            }
            if let Some(rest) = line.strip_prefix("rotary-") {
                let name: String =
                    rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '-').collect();
                found.insert(name.replace('-', "_"));
            }
        }
        let expected: BTreeSet<String> = deps.iter().map(|d| d.to_string()).collect();
        assert_eq!(
            found,
            expected,
            "LAYERS row for '{krate}' disagrees with {}",
            manifest.display()
        );
    }
}

// ------------------------------------------------------------ workspace --

/// The tree this crate ships in must be lint-clean under the checked-in
/// baseline: no hard violations, no ratchet overshoot, no staleness.
#[test]
fn workspace_is_lint_clean_under_the_checked_in_baseline() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let analysis = analyze_workspace(&root).expect("workspace scan");
    let text = std::fs::read_to_string(root.join(BASELINE_FILE)).expect("baseline present");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    let report = gate(&analysis, &baseline);
    assert!(
        report.violations.is_empty(),
        "workspace has lint violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!("{}:{}:{}: {} {}", v.path, v.line, v.col, v.rule, v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.stale.is_empty(), "stale baseline:\n{}", report.stale.join("\n"));
    assert!(analysis.files_scanned > 50, "walk found {} files", analysis.files_scanned);
}
