//! Property tests for the lint lexer: 256 seeded token-soup cases assert
//! the round trip `lex → spans → source slice` is lossless — every
//! generated token comes back with its exact kind, text, and a correct
//! line/col — and a totality property feeds the lexer adversarial garbage
//! (unterminated strings, stray ticks, half comments) asserting it always
//! returns ordered, in-bounds, char-aligned spans.
//!
//! Replay a failure with `ROTARY_CHECK_SEED=<seed>`; scale case count with
//! `ROTARY_CHECK_CASES`.

// `*s.pick(&[...])` everywhere: the deref pins `T = &str` during
// inference (clippy's auto-deref suggestion would leave `T = str`, which
// does not compile).
#![allow(clippy::explicit_auto_deref)]

use rotary_check::{check, Source};
use rotary_lint::lexer::{lex, Lexed, TokenKind};

/// One generated token: its rendered text and the kind the lexer must
/// report for it.
struct Piece {
    text: String,
    kind: TokenKind,
}

fn piece(text: &str, kind: TokenKind) -> Piece {
    Piece { text: text.to_string(), kind }
}

/// Draws one token from the soup palette. Every variant is chosen to be
/// self-delimiting once whitespace-separated, so the expected token
/// sequence is exactly the generated one.
fn random_piece(s: &mut Source) -> Piece {
    match s.u64_in(0, 10) {
        0 => {
            // Random identifier — including the raw-string lookalikes `r`
            // and `b`, which stress the prefix disambiguation when the
            // next token happens to be a string.
            let first = *s.pick(&["a", "z", "_", "r", "b", "br", "déjà"]);
            let tail: String =
                s.vec_of(0, 6, |s| *s.pick(&["a", "b", "c", "_", "0", "9"])).concat();
            Piece { text: format!("{first}{tail}"), kind: TokenKind::Ident }
        }
        1 => piece(*s.pick(&["'a", "'static", "'_", "'de"]), TokenKind::Lifetime),
        2 => {
            let p = *s.pick(&[
                "+", "-", "*", "/", "%", "&", "|", "!", "<", ">", "=", ".", ",", ";", ":", "#",
                "?", "@", "(", ")", "{", "}", "[", "]",
            ]);
            piece(p, TokenKind::Punct)
        }
        3 => {
            let n = s.u64_in(0, u64::MAX);
            Piece { text: n.to_string(), kind: TokenKind::Int }
        }
        4 => {
            piece(*s.pick(&["0x1f", "0o77", "0b1010", "1_000", "7u32", "0xFF_FF"]), TokenKind::Int)
        }
        5 => piece(
            *s.pick(&["1.5", "2e10", "3.14f64", "1.", "2.5e-3", "6.02e+23", "9f32", "1_0.5"]),
            TokenKind::Float,
        ),
        6 => piece(
            *s.pick(&[
                "\"hello\"",
                "\"a\\\"b\"",
                "\"line1\nline2\"",
                "r\"raw\"",
                "r#\"ra\"w\"#",
                "r##\"deep \"# still\"##",
                "b\"bytes\"",
                "br#\"x\"#",
                "\"\"",
            ]),
            TokenKind::Str,
        ),
        7 => piece(
            *s.pick(&["'a'", "'\\n'", "'\\''", "'\\u{1F600}'", "b'x'", "b'\\0'", "'\"'", "'é'"]),
            TokenKind::Char,
        ),
        8 => piece(
            *s.pick(&["// hello world", "//", "//! inner doc", "/// outer doc"]),
            TokenKind::LineComment,
        ),
        9 => piece(
            *s.pick(&[
                "/* simple */",
                "/* nested /* inner */ outer */",
                "/* multi\n   line */",
                "/** doc block */",
            ]),
            TokenKind::BlockComment,
        ),
        _ => piece(*s.pick(&["fn", "unsafe", "impl", "let", "mut", "as", "for"]), TokenKind::Ident),
    }
}

/// Renders pieces into source text, whitespace-separated. Line comments
/// force a newline separator (anything else would swallow the next token).
fn render(s: &mut Source, pieces: &[Piece]) -> String {
    let mut src = String::new();
    if s.bool(0.3) {
        src.push_str(*s.pick(&[" ", "\n", "\t"]));
    }
    for p in pieces {
        src.push_str(&p.text);
        if p.kind == TokenKind::LineComment {
            src.push('\n');
        } else {
            src.push_str(*s.pick(&[" ", "\n", "  ", "\t", " \n "]));
        }
    }
    src
}

/// Line (1-based) and byte column (1-based) of `offset`, recomputed from
/// scratch as ground truth for the lexer's incremental accounting.
fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let before = &src.as_bytes()[..offset];
    let line = 1 + before.iter().filter(|&&b| b == b'\n').count();
    let col = offset - before.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1) + 1;
    (line, col)
}

#[test]
fn token_soup_round_trips_losslessly() {
    check("token_soup_round_trips_losslessly", |s| {
        let pieces = s.vec_of(0, 40, random_piece);
        let src = render(s, &pieces);
        let tokens = lex(&src);

        assert_eq!(tokens.len(), pieces.len(), "1:1 tokens for whitespace-separated soup");
        let mut prev_end = 0usize;
        for (tok, p) in tokens.iter().zip(&pieces) {
            assert_eq!(tok.kind, p.kind, "kind for {:?}", p.text);
            assert_eq!(&src[tok.span.start..tok.span.end], p.text, "span slices the exact text");
            assert!(tok.span.start >= prev_end, "spans are ordered and disjoint");
            assert!(
                src[prev_end..tok.span.start].bytes().all(|b| b.is_ascii_whitespace()),
                "gaps between tokens are pure whitespace"
            );
            let (line, col) = line_col(&src, tok.span.start);
            assert_eq!((tok.span.line, tok.span.col), (line, col), "line/col for {:?}", p.text);
            prev_end = tok.span.end;
        }
        assert!(
            src[prev_end..].bytes().all(|b| b.is_ascii_whitespace()),
            "the tail after the last token is pure whitespace"
        );

        // The code view skips exactly the comments, in order.
        let lx = Lexed::new(&src);
        let non_comments: Vec<usize> =
            (0..tokens.len()).filter(|&i| !tokens[i].kind.is_comment()).collect();
        assert_eq!(lx.code, non_comments, "Lexed::code is the comment-free index");
    });
}

#[test]
fn lexer_is_total_on_adversarial_garbage() {
    check("lexer_is_total_on_adversarial_garbage", |s| {
        // Fragments engineered to be malformed: unterminated strings and
        // block comments, stray ticks and hashes, half raw-string
        // prefixes, bare backslashes, exotic unicode.
        let fragments: Vec<&str> = s.vec_of(0, 30, |s| {
            *s.pick(&[
                "\"unterminated",
                "/* never closed",
                "/* nested /* deeper",
                "'",
                "''",
                "'\\",
                "r#\"no close",
                "r###",
                "b'",
                "\\",
                "\u{1F600}",
                "0x",
                "1.e",
                "e+",
                "🦀🦀",
                "\"\\\"",
                "ident",
                "#!",
                "'a",
                "*/",
                "\n",
                " ",
            ])
        });
        let src: String = fragments.concat();
        let tokens = lex(&src); // must not panic
        let mut prev_end = 0usize;
        for tok in &tokens {
            assert!(tok.span.start >= prev_end, "spans stay ordered on garbage");
            assert!(tok.span.end >= tok.span.start && tok.span.end <= src.len());
            assert!(
                src.get(tok.span.start..tok.span.end).is_some(),
                "spans always cut on char boundaries"
            );
            let (line, col) = line_col(&src, tok.span.start);
            assert_eq!((tok.span.line, tok.span.col), (line, col));
            prev_end = tok.span.end;
        }
        // Totality also means coverage: everything that is not whitespace
        // belongs to some token, even when malformed.
        let mut covered = vec![false; src.len()];
        for tok in &tokens {
            covered[tok.span.start..tok.span.end].iter_mut().for_each(|c| *c = true);
        }
        for (i, b) in src.bytes().enumerate() {
            assert!(
                covered[i] || b.is_ascii_whitespace(),
                "byte {i} ({:?}) is neither covered nor whitespace",
                b as char
            );
        }
    });
}
