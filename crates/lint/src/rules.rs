//! The rule engine: per-file checks over the [`crate::lexer`] token stream.
//!
//! Every rule is a statement about *token sequences in non-test code* (a
//! few, noted below, include test code on purpose). Working on tokens
//! rather than line text retires the substring false-positive class
//! wholesale: `expect_byte` is one `Ident` token that can never match the
//! `expect` rule, string and comment contents are separate token kinds the
//! identifier rules never see, and `'a` is a `Lifetime`, not half a char
//! literal.
//!
//! Rule families:
//!
//! - **D** — determinism: no arbitrary-order collections, wall-clock
//!   reads, or ambient randomness.
//! - **P** — panic-freedom (ratcheted via `LINT_baseline.json`).
//! - **U/A** — unsafe hygiene and the allow-annotation grammar itself.
//! - **R** — race patterns: `&mut` aliasing in `rotary-par` closures,
//!   undocumented `unsafe impl Send/Sync`, and cross-function lock-order
//!   cycles (the per-file halves live here; the workspace-wide graph is
//!   assembled in `lib.rs`).
//! - **F** — float determinism: libm transcendentals, truncating casts,
//!   and unpinned float accumulation (all ratcheted — the existing sites
//!   are baselined and may only go down).
//! - **L** — layering: `use`/path tokens must respect the DESIGN.md §3
//!   dependency flow (`engine` must never name `serve` items, etc.).
//!
//! Suppressions: a comment of the form `allow(RULE[, RULE]) <reason>`,
//! prefixed by the marker in [`ALLOW_MARKER`], disables the named rules on
//! its own line (when sharing a line with code) or on the next code line
//! (standalone comment lines stack). The
//! reason is mandatory; malformed or unknown annotations are violations
//! (A001) so a typo cannot silently disable enforcement.

use crate::lexer::{Lexed, TokenKind};

/// The annotation marker looked up inside comments.
pub const ALLOW_MARKER: &str = "rotary-lint:";

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number of the triggering token.
    pub line: usize,
    /// 1-based byte column of the triggering token.
    pub col: usize,
    /// Rule identifier (`D001` … `L001`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// Static description of one rule, consumed by `--help`, `--explain`, and
/// the scope tests.
pub struct RuleInfo {
    /// Identifier, e.g. `R003`.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// True when violations are gated by the `LINT_baseline.json` ratchet
    /// (per-file counts may only go down) instead of failing outright.
    pub ratcheted: bool,
    /// Human statement of exactly which files/tokens the rule walks.
    pub scope: &'static str,
    /// The long-form rationale printed by `--explain`.
    pub explain: &'static str,
}

/// The rule catalog. Order is the presentation order of `--help`.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        summary: "no HashMap/HashSet in deterministic crates (iteration order)",
        ratcheted: false,
        scope: "non-test code in deterministic crate sources (crates/{core,engine,sim,aqp,dlt,faults,store,serve}/src)",
        explain: "HashMap and HashSet iterate in a randomized order, so any loop over them \
                  can produce run-to-run different results — PR 3 fixed a real aggregation \
                  bug of exactly this shape. Deterministic crates must use the BTree \
                  equivalents (or index-ordered vectors). The identifiers are matched as \
                  whole tokens, so a string mentioning HashMap or a name like \
                  MyHashMapLike never fires.",
    },
    RuleInfo {
        id: "D002",
        summary: "no wall-clock reads outside rotary-bench",
        ratcheted: false,
        scope: "non-test code everywhere except crates/bench",
        explain: "Instant and SystemTime make control flow depend on the host's clock, \
                  which breaks bit-identical replay. rotary-bench owns the only blessed \
                  wall-clock probe; everything else runs on sim time or an injected \
                  ProbeClock.",
    },
    RuleInfo {
        id: "D003",
        summary: "no ambient randomness; fork named streams from rotary_sim::rng",
        ratcheted: false,
        scope: "ALL code — tests, root src/ and tests/ included — except crates/sim/src/rng.rs itself",
        explain: "thread_rng, OsRng, RandomState and friends smuggle in entropy that no \
                  seed can replay. Tests are in scope too: a test that draws ambient \
                  randomness cannot reproduce its own failures. All entropy must flow \
                  from named fork streams of the in-tree xoshiro generator.",
    },
    RuleInfo {
        id: "P001",
        summary: "no unwrap()/expect()/panic! in control-plane code (ratcheted)",
        ratcheted: true,
        scope: "non-test code everywhere",
        explain: "Panics in the control plane take down arbitration for every tenant. \
                  Existing sites are counted per file in LINT_baseline.json and may only \
                  decrease. Matching is token-exact: `.unwrap()` needs a preceding dot \
                  (a fn named unwrap does not fire), `.expect(...)` is exempt when its \
                  first argument is a char/byte/number literal (that is a parser-style \
                  `expect(b'{')` method, not Result::expect), and unwrap_or_else-style \
                  adapters never fire.",
    },
    RuleInfo {
        id: "U001",
        summary: "every unsafe needs a SAFETY: comment",
        ratcheted: false,
        scope: "all code, tests included",
        explain: "Every `unsafe` token must carry a SAFETY: comment on its line or on the \
                  contiguous comment block directly above it, stating the invariant that \
                  makes the operation sound. A blank line breaks the comment run.",
    },
    RuleInfo {
        id: "A001",
        summary: "allow annotations must parse and name real rules",
        ratcheted: false,
        scope: "all comments",
        explain: "A `rotary-lint: allow(...)` annotation that is malformed, names an \
                  unknown rule, or omits its reason is itself a violation — otherwise a \
                  typo would silently disable enforcement.",
    },
    RuleInfo {
        id: "R001",
        summary: "unsafe impl Send/Sync must document its synchronization",
        ratcheted: false,
        scope: "non-test code everywhere",
        explain: "An `unsafe impl Send`/`Sync` asserts a cross-thread invariant the \
                  compiler cannot check — typically because the type smuggles a raw \
                  pointer. The SAFETY: comment above it must *name the synchronization* \
                  that makes the claim true (a mutex, an atomic cursor claim, a join \
                  barrier, exclusive/disjoint access, …). A SAFETY: comment with no \
                  recognizable synchronization vocabulary fails the rule.",
    },
    RuleInfo {
        id: "R002",
        summary: "no raw &mut* aliasing in rotary-par closures outside SendPtr",
        ratcheted: false,
        scope: "non-test code everywhere, inside arguments of .run_indexed/.map/.map_mut/.submit/.scope calls",
        explain: "A closure handed to the thread pool runs concurrently with its \
                  siblings; materializing `&mut *p` from a captured pointer is a data \
                  race unless every index's access is provably disjoint. The blessed \
                  idiom is the SendPtr wrapper (crates/par): bind the base pointer with \
                  `let base = SendPtr(...)` and derive per-index pointers through it. \
                  `&mut *x` where x was not bound from SendPtr(…) in the same file \
                  fires.",
    },
    RuleInfo {
        id: "R003",
        summary: "Mutex lock order must be globally consistent (cycle detection)",
        ratcheted: false,
        scope: "non-test code everywhere; edges are merged into one workspace-wide lock-order graph",
        explain: "Each function is walked for held lock guards (`let g = x.lock()...;` \
                  holds until drop(g), end of block, or end of statement for chained \
                  temporaries). Acquiring lock B while holding lock A contributes edge \
                  A→B to a workspace-wide graph; any cycle — including re-acquiring a \
                  lock already held — is a potential deadlock and fires on every edge in \
                  the cycle. Locks are keyed by receiver field name, which is \
                  deliberately conservative: rename the field or add an allow if two \
                  unrelated locks collide.",
    },
    RuleInfo {
        id: "F001",
        summary: "no libm transcendentals in deterministic crates (ratcheted)",
        ratcheted: true,
        scope: "non-test code in deterministic crate sources",
        explain: "sin/cos/exp/ln/powf and friends are *not* correctly rounded — their \
                  bit patterns legally differ across libm versions, platforms, and \
                  optimization levels, so any value derived from them can break \
                  bit-identical replay on a different host. sqrt is exempt (IEEE \
                  requires correct rounding). Existing sites are ratcheted; new code \
                  should use pinned tables or integer/fixed-point math.",
    },
    RuleInfo {
        id: "F002",
        summary: "no as f32/f64 casts in deterministic crates (ratcheted)",
        ratcheted: true,
        scope: "non-test code in deterministic crate sources",
        explain: "`as f32`/`as f64` casts silently round, and the rounding site is \
                  invisible at the use site — the class of bug where a u64 row count \
                  above 2^53 quietly loses precision. Existing sites are ratcheted; new \
                  code should go through named conversion helpers that document the \
                  precision contract.",
    },
    RuleInfo {
        id: "F003",
        summary: "no unpinned float accumulation outside the fold kernels (ratcheted)",
        ratcheted: true,
        scope: "non-test code in deterministic crate sources, except crates/engine/src/kernels.rs",
        explain: "Float addition is not associative, so `.sum::<f64>()` produces \
                  different bits under different iteration orders or chunkings. The \
                  columnar kernels (crates/engine/src/kernels.rs) pin summation order \
                  explicitly and are the one blessed home for float accumulation; \
                  `.sum::<f32/f64>()` / `.product::<…>()` anywhere else is ratcheted.",
    },
    RuleInfo {
        id: "L001",
        summary: "crate references must follow the DESIGN.md dependency flow",
        ratcheted: false,
        scope: "non-test code in crate sources and root src/ (dev-only tree like tests/ is exempt)",
        explain: "The layering in DESIGN.md §3 is what keeps the deterministic core \
                  auditable: core/engine must never name serve/bench items, sim sits \
                  above core only, and so on. Any `rotary_<crate>` path token in a file \
                  whose crate does not declare that dependency fires. The map is \
                  hardcoded here and cross-checked against the Cargo.toml manifests by a \
                  test, so it cannot drift silently.",
    },
];

/// Looks a rule up by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

fn rule_id(name: &str) -> Option<&'static str> {
    rule(name).map(|r| r.id)
}

/// Ids of the ratcheted rules, in catalog order (the `LINT_baseline.json`
/// schema: one top-level object per id).
pub fn ratcheted_rules() -> impl Iterator<Item = &'static str> {
    RULES.iter().filter(|r| r.ratcheted).map(|r| r.id)
}

/// One observed "lock B acquired while lock A is held" event. Per-file
/// halves of R003; `lib.rs` merges them into the workspace lock-order
/// graph and runs cycle detection.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Workspace-relative path of the acquisition site.
    pub path: String,
    /// 1-based line of the inner (`acquired`) lock call.
    pub line: usize,
    /// 1-based column of the inner lock call.
    pub col: usize,
    /// Enclosing function name ("?" at module scope).
    pub func: String,
    /// Receiver name of the lock already held.
    pub held: String,
    /// Receiver name of the lock being acquired.
    pub acquired: String,
}

/// Result of scanning one file. Ratcheted sites are kept separate from
/// hard violations because they are gated per file by the baseline;
/// lock edges are inputs to the workspace-wide R003 graph.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Hard violations (everything except the ratcheted rules).
    pub violations: Vec<Violation>,
    /// Individual sites of ratcheted rules (P001/F001/F002/F003).
    pub ratchet_sites: Vec<Violation>,
    /// Lock-order observations for the R003 graph.
    pub lock_edges: Vec<LockEdge>,
}

/// Crates whose `src/` trees carry the bit-identical replay guarantee.
/// `rotary-par` schedules OS threads (ordered by the join barrier), and
/// `rotary-bench`/`rotary-check`/`rotary-tpch`/`rotary-lint` sit outside
/// the deterministic replay boundary.
const DET_SCOPES: &[&str] = &[
    "crates/core/src/",
    "crates/engine/src/",
    "crates/sim/src/",
    "crates/aqp/src/",
    "crates/dlt/src/",
    "crates/faults/src/",
    "crates/store/src/",
    "crates/serve/src/",
];

/// Identifiers whose presence means the code reads the wall clock.
const D002_TOKENS: &[&str] = &["Instant", "SystemTime"];

/// Identifiers that smuggle ambient (non-replayable) randomness in.
const D003_TOKENS: &[&str] =
    &["thread_rng", "OsRng", "StdRng", "SmallRng", "from_entropy", "getrandom", "RandomState"];

/// Method names that are libm transcendentals (not correctly rounded —
/// platform-divergent bits). `sqrt` is exempt: IEEE 754 requires correct
/// rounding for it, so it is as deterministic as addition.
const F001_FNS: &[&str] = &[
    "sin", "cos", "tan", "asin", "acos", "atan", "atan2", "sinh", "cosh", "tanh", "exp", "exp2",
    "exp_m1", "ln", "ln_1p", "log", "log2", "log10", "powf", "cbrt", "hypot",
];

/// Entry points whose closure arguments execute on pool threads.
const PAR_ENTRY_POINTS: &[&str] = &["run_indexed", "map", "map_mut", "submit", "scope"];

/// The one blessed home for float accumulation (fixed-order folds).
const F003_EXEMPT_FILE: &str = "crates/engine/src/kernels.rs";

/// Result/guard adapters that may trail a `.lock()` call without ending
/// the guard's life at that expression.
const LOCK_ADAPTERS: &[&str] =
    &["unwrap", "expect", "unwrap_or_else", "unwrap_or_default", "map_err", "ok"];

/// The DESIGN.md §3 dependency flow, as (crate, allowed dependencies).
/// "rotary" is the root crate (src/ at the workspace root). A test in
/// `tests/rules.rs` cross-checks this table against the Cargo.toml
/// manifests so it cannot drift.
pub const LAYERS: &[(&str, &[&str])] = &[
    ("core", &[]),
    ("par", &[]),
    ("check", &[]),
    ("sim", &["core"]),
    ("store", &["core"]),
    ("tpch", &["sim"]),
    ("engine", &["core", "par", "tpch"]),
    ("faults", &["core", "sim", "store"]),
    ("serve", &["core", "sim", "faults", "store"]),
    ("dlt", &["core", "par", "sim", "faults", "store"]),
    ("aqp", &["core", "par", "sim", "tpch", "engine", "faults", "store"]),
    ("lint", &["core"]),
    ("bench", &["core", "par", "sim", "tpch", "engine", "aqp", "dlt", "faults", "serve", "store"]),
    ("rotary", &["core", "par", "sim", "tpch", "engine", "aqp", "dlt", "faults", "store", "serve"]),
];

/// Dev-only trees: crate `tests/`, `benches/`, `examples/` directories
/// and the root `tests/`. Code there is still linted, but the rules that
/// exempt test code treat the whole file as test code.
fn is_test_path(path: &str) -> bool {
    path.split('/').any(|c| c == "tests" || c == "benches" || c == "examples")
}

fn det_applies(path: &str) -> bool {
    DET_SCOPES.iter().any(|scope| path.starts_with(scope))
}

fn d002_applies(path: &str) -> bool {
    // rotary-bench owns the only blessed wall-clock probe.
    !path.starts_with("crates/bench/")
}

fn d003_applies(path: &str) -> bool {
    // The deterministic RNG implementation itself may name these symbols.
    path != "crates/sim/src/rng.rs"
}

/// The crate a path belongs to, for L001: `Some(crate)` for crate `src/`
/// trees and the root `src/`, `None` for dev-only or out-of-tree files.
fn l001_crate_of(path: &str) -> Option<&str> {
    if let Some(rest) = path.strip_prefix("crates/") {
        let (name, tail) = rest.split_once('/')?;
        return if tail.starts_with("src/") { Some(name) } else { None };
    }
    if path.starts_with("src/") {
        return Some("rotary");
    }
    None
}

/// Scans one file. `path` must be workspace-relative with `/` separators —
/// rule scoping keys off it.
pub fn scan_file(path: &str, src: &str) -> FileScan {
    let lx = Lexed::new(src);
    let (allows, annotation_violations) = collect_allows(path, &lx);
    let mut scan = FileScan { violations: annotation_violations, ..FileScan::default() };
    let ctx = Ctx { path, lx: &lx, allows: &allows, test_path: is_test_path(path) };

    scan_token_rules(&ctx, &mut scan);
    scan_par_closures(&ctx, &mut scan);
    scan_lock_order(&ctx, &mut scan);

    scan.violations.sort();
    scan.ratchet_sites.sort();
    scan
}

/// Shared per-file context for the rule passes.
struct Ctx<'a> {
    path: &'a str,
    lx: &'a Lexed<'a>,
    allows: &'a [Vec<&'static str>],
    test_path: bool,
}

impl Ctx<'_> {
    fn allowed(&self, line: usize, rule: &str) -> bool {
        self.allows.get(line).is_some_and(|v| v.contains(&rule))
    }

    fn in_test(&self, k: usize) -> bool {
        self.test_path || self.lx.cin_test(k)
    }

    fn violation(&self, k: usize, rule: &'static str, message: String) -> Violation {
        let span = self.lx.cspan(k);
        Violation { path: self.path.to_string(), line: span.line, col: span.col, rule, message }
    }
}

/// The single-token and short-window rules: D001–D003, P001, U001, R001,
/// F001–F003, L001. One pass over the code tokens.
fn scan_token_rules(ctx: &Ctx, scan: &mut FileScan) {
    let lx = ctx.lx;
    let det = det_applies(ctx.path);
    let l001_crate = l001_crate_of(ctx.path).filter(|_| !ctx.test_path);

    for k in 0..lx.code.len() {
        if lx.ckind(k) != Some(TokenKind::Ident) {
            continue;
        }
        let text = lx.ctext(k);
        let line = lx.cspan(k).line;
        let in_test = ctx.in_test(k);
        let prev_dot = k >= 1 && lx.cpunct(k - 1, ".");
        let next_paren = lx.cpunct(k + 1, "(");

        // D001 — arbitrary-order collections in deterministic crates.
        if det && !in_test && (text == "HashMap" || text == "HashSet") && !ctx.allowed(line, "D001")
        {
            scan.violations.push(ctx.violation(
                k,
                "D001",
                format!(
                    "{text} iterates in arbitrary order and breaks bit-identical \
                     replay; use the BTree equivalent or add a justified allow"
                ),
            ));
        }

        // D002 — wall-clock reads.
        if d002_applies(ctx.path)
            && !in_test
            && D002_TOKENS.contains(&text)
            && !ctx.allowed(line, "D002")
        {
            scan.violations.push(ctx.violation(
                k,
                "D002",
                format!(
                    "{text} reads the wall clock outside rotary-bench; use sim \
                     time or accept an injected ProbeClock"
                ),
            ));
        }

        // D003 — ambient randomness. Applies to test code too: a test that
        // draws unseeded entropy cannot replay its own failures.
        if d003_applies(ctx.path) && D003_TOKENS.contains(&text) && !ctx.allowed(line, "D003") {
            scan.violations.push(ctx.violation(
                k,
                "D003",
                format!(
                    "{text} is ambient randomness; draw from a named fork \
                     stream of rotary_sim::rng instead"
                ),
            ));
        }

        // P001 — panic-capable calls (ratcheted).
        if !in_test && !ctx.allowed(line, "P001") {
            let hit = match text {
                "unwrap" if prev_dot && next_paren => Some("unwrap()"),
                "expect" if prev_dot && next_paren => {
                    // `expect(b'{')` / `expect(42)` is a parser-style byte
                    // method, not Result::expect (whose argument is a &str
                    // message) — the token-level fix that retires the old
                    // `expect_byte` rename workaround.
                    let arg_literal = matches!(
                        lx.ckind(k + 2),
                        Some(TokenKind::Char | TokenKind::Int | TokenKind::Float)
                    );
                    (!arg_literal).then_some("expect()")
                }
                "panic" if lx.cpunct(k + 1, "!") => Some("panic!"),
                _ => None,
            };
            if let Some(what) = hit {
                scan.ratchet_sites.push(ctx.violation(
                    k,
                    "P001",
                    format!("{what} may panic in control-plane code"),
                ));
            }
        }

        // U001 / R001 — unsafe hygiene.
        if text == "unsafe" {
            let run = lx.comment_run(line);
            if !ctx.allowed(line, "U001") && !run.contains("SAFETY:") {
                scan.violations.push(ctx.violation(
                    k,
                    "U001",
                    "unsafe without a SAFETY: comment on or directly above the line".to_string(),
                ));
            }
            if !in_test && lx.ctext(k + 1) == "impl" && !ctx.allowed(line, "R001") {
                if let Some(trait_name) = unsafe_impl_trait(lx, k + 1) {
                    if (trait_name == "Send" || trait_name == "Sync")
                        && !(run.contains("SAFETY:") && names_synchronization(&run))
                    {
                        scan.violations.push(ctx.violation(
                            k,
                            "R001",
                            format!(
                                "unsafe impl {trait_name} needs a SAFETY: comment naming the \
                                 synchronization that makes it sound (mutex/atomic/cursor \
                                 claim/disjoint access/...)"
                            ),
                        ));
                    }
                }
            }
        }

        // F001 — libm transcendentals (ratcheted).
        if det
            && !in_test
            && next_paren
            && F001_FNS.contains(&text)
            && k >= 1
            && (lx.cpunct(k - 1, ".") || lx.cpunct(k - 1, ":"))
            && !ctx.allowed(line, "F001")
        {
            scan.ratchet_sites.push(ctx.violation(
                k,
                "F001",
                format!(
                    "{text}() is a libm transcendental — not correctly rounded, so its \
                     bits may differ across platforms; pin a table or use integer math"
                ),
            ));
        }

        // F002 — truncating float casts (ratcheted).
        if det && !in_test && text == "as" && !ctx.allowed(line, "F002") {
            let target = lx.ctext(k + 1);
            if target == "f32" || target == "f64" {
                scan.ratchet_sites.push(ctx.violation(
                    k,
                    "F002",
                    format!(
                        "`as {target}` silently rounds (u64 above 2^53 loses bits); go \
                         through a named conversion helper documenting the precision"
                    ),
                ));
            }
        }

        // F003 — unpinned float accumulation (ratcheted).
        if det
            && !in_test
            && ctx.path != F003_EXEMPT_FILE
            && (text == "sum" || text == "product")
            && prev_dot
            && lx.cpunct(k + 1, ":")
            && lx.cpunct(k + 2, ":")
            && lx.cpunct(k + 3, "<")
            && matches!(lx.ctext(k + 4), "f32" | "f64")
            && lx.cpunct(k + 5, ">")
            && !ctx.allowed(line, "F003")
        {
            scan.ratchet_sites.push(ctx.violation(
                k,
                "F003",
                format!(
                    ".{text}::<{}>() accumulates floats in iterator order; use the \
                     fixed-order folds in {F003_EXEMPT_FILE} so the order is pinned",
                    lx.ctext(k + 4)
                ),
            ));
        }

        // L001 — layering.
        if let Some(own) = l001_crate {
            if !in_test && !ctx.allowed(line, "L001") {
                if let Some(dep) = text.strip_prefix("rotary_") {
                    let known = LAYERS.iter().any(|(c, _)| *c == dep);
                    let allowed_dep = dep == own
                        || LAYERS
                            .iter()
                            .find(|(c, _)| *c == own)
                            .is_some_and(|(_, deps)| deps.contains(&dep));
                    if known && !allowed_dep {
                        scan.violations.push(ctx.violation(
                            k,
                            "L001",
                            format!(
                                "{text} names a rotary-{dep} item, but the DESIGN.md \
                                 dependency flow forbids crate '{own}' -> '{dep}'"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// The trait name of an `unsafe impl` whose `impl` token sits at code
/// position `k_impl`: the identifier directly before the `for` keyword at
/// angle-bracket depth 0 (so `unsafe impl<T: Send> Send for P<T>` resolves
/// to the outer `Send`, not the bound). Inherent impls return `None`.
fn unsafe_impl_trait<'a>(lx: &Lexed<'a>, k_impl: usize) -> Option<&'a str> {
    let mut angle = 0i64;
    for k in (k_impl + 1)..lx.code.len() {
        if lx.ckind(k) == Some(TokenKind::Punct) {
            match lx.ctext(k) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" | ";" => return None,
                _ => {}
            }
        } else if lx.ctext(k) == "for" && angle == 0 {
            return (lx.ckind(k - 1) == Some(TokenKind::Ident)).then(|| lx.ctext(k - 1));
        }
    }
    None
}

/// True when a SAFETY comment names a synchronization mechanism — the
/// vocabulary every sound Send/Sync argument in this codebase uses.
fn names_synchronization(comment: &str) -> bool {
    const WORDS: &[&str] = &[
        "sync",
        "mutex",
        "lock",
        "atomic",
        "cursor",
        "claim",
        "barrier",
        "join",
        "channel",
        "once",
        "fence",
        "protocol",
        "exclusive",
        "disjoint",
        "ordering",
        "immutable",
    ];
    let lower = comment.to_lowercase();
    WORDS.iter().any(|w| lower.contains(w))
}

/// R002 — raw `&mut *` dereferences inside closures handed to the thread
/// pool, outside the blessed SendPtr idiom.
fn scan_par_closures(ctx: &Ctx, scan: &mut FileScan) {
    let lx = ctx.lx;
    // Identifiers bound from `= SendPtr(…)` anywhere in the file.
    let mut blessed: Vec<&str> = Vec::new();
    for k in 0..lx.code.len() {
        if lx.ctext(k) == "SendPtr"
            && lx.cpunct(k + 1, "(")
            && k >= 2
            && lx.cpunct(k - 1, "=")
            && lx.ckind(k - 2) == Some(TokenKind::Ident)
        {
            blessed.push(lx.ctext(k - 2));
        }
    }

    for k in 0..lx.code.len() {
        if lx.ckind(k) != Some(TokenKind::Ident)
            || !PAR_ENTRY_POINTS.contains(&lx.ctext(k))
            || k == 0
            || !lx.cpunct(k - 1, ".")
            || !lx.cpunct(k + 1, "(")
        {
            continue;
        }
        let Some(close) = lx.cmatch(k + 1, "(", ")") else { continue };
        // `&` `mut` `*` <ident> inside the argument region.
        for j in (k + 2)..close {
            if lx.cpunct(j, "&")
                && lx.ctext(j + 1) == "mut"
                && lx.cpunct(j + 2, "*")
                && lx.ckind(j + 3) == Some(TokenKind::Ident)
            {
                let target = lx.ctext(j + 3);
                let line = lx.cspan(j).line;
                if !ctx.in_test(j) && !ctx.allowed(line, "R002") && !blessed.contains(&target) {
                    scan.violations.push(ctx.violation(
                        j,
                        "R002",
                        format!(
                            "`&mut *{target}` inside a pool closure aliases a captured \
                             pointer outside the SendPtr idiom; bind the base pointer \
                             with `let {target} = SendPtr(...)` and derive per-index \
                             pointers through it"
                        ),
                    ));
                }
            }
        }
    }
}

/// R003 extraction — walks functions tracking held Mutex guards and
/// records an edge whenever a lock is acquired while another is held.
///
/// A guard is *held* from its `.lock()` call until:
/// - `drop(var)` for `let var = <chain>.lock()<adapters>;` bindings,
/// - the closing `}` of the block the binding lives in, or
/// - the end of the statement (`;`) for chained temporaries like
///   `x.lock().unwrap().field.push(…)` (the guard lives to the semicolon).
///
/// Locks are keyed by receiver name: the identifier before `.lock(`
/// (`self.shared.state.lock()` → `state`, `slots[i].lock()` → `slots`).
fn scan_lock_order(ctx: &Ctx, scan: &mut FileScan) {
    let lx = ctx.lx;
    struct Guard {
        var: Option<String>,
        lock: String,
        depth: i64,
        temp: bool,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i64;
    let mut func = String::from("?");
    let mut pending_let: Option<String> = None;

    for k in 0..lx.code.len() {
        let kind = lx.ckind(k);
        let text = lx.ctext(k);
        if kind == Some(TokenKind::Punct) {
            match text {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                ";" => {
                    pending_let = None;
                    guards.retain(|g| !g.temp);
                }
                _ => {}
            }
            continue;
        }
        if kind != Some(TokenKind::Ident) {
            continue;
        }
        match text {
            "fn" if lx.ckind(k + 1) == Some(TokenKind::Ident) => {
                func = lx.ctext(k + 1).to_string();
            }
            "let" => {
                let j = if lx.ctext(k + 1) == "mut" { k + 2 } else { k + 1 };
                if lx.ckind(j) == Some(TokenKind::Ident) {
                    pending_let = Some(lx.ctext(j).to_string());
                }
            }
            "drop" if lx.cpunct(k + 1, "(") && lx.cpunct(k + 3, ")") => {
                let dropped = lx.ctext(k + 2);
                guards.retain(|g| g.var.as_deref() != Some(dropped));
            }
            "lock" if k >= 2 && lx.cpunct(k - 1, ".") && lx.cpunct(k + 1, "(") => {
                if ctx.in_test(k) {
                    continue;
                }
                let lock = receiver_name(lx, k - 1);
                let line = lx.cspan(k).line;
                if !ctx.allowed(line, "R003") {
                    for g in &guards {
                        let span = lx.cspan(k);
                        scan.lock_edges.push(LockEdge {
                            path: ctx.path.to_string(),
                            line: span.line,
                            col: span.col,
                            func: func.clone(),
                            held: g.lock.clone(),
                            acquired: lock.clone(),
                        });
                    }
                }
                // Held or momentary? Walk the adapter chain after `()`.
                let Some(close) = lx.cmatch(k + 1, "(", ")") else { continue };
                let after = adapter_chain_end(lx, close + 1);
                let durable = lx.cpunct(after, ";") && pending_let.is_some();
                guards.push(Guard {
                    var: if durable { pending_let.clone() } else { None },
                    lock,
                    depth,
                    temp: !durable,
                });
            }
            _ => {}
        }
    }
}

/// Code position just past a `.adapter(...)` chain starting at `k`.
fn adapter_chain_end(lx: &Lexed, mut k: usize) -> usize {
    while lx.cpunct(k, ".")
        && lx.ckind(k + 1) == Some(TokenKind::Ident)
        && LOCK_ADAPTERS.contains(&lx.ctext(k + 1))
        && lx.cpunct(k + 2, "(")
    {
        match lx.cmatch(k + 2, "(", ")") {
            Some(close) => k = close + 1,
            None => return k,
        }
    }
    k
}

/// Receiver name of a method call whose `.` sits at code position
/// `k_dot`: the identifier before the dot, looking through one `[...]` or
/// `(...)` group (`slots[i].lock()` → `slots`). Falls back to `"<expr>"`.
fn receiver_name(lx: &Lexed, k_dot: usize) -> String {
    if k_dot == 0 {
        return "<expr>".to_string();
    }
    let j = k_dot - 1;
    if lx.ckind(j) == Some(TokenKind::Ident) {
        return lx.ctext(j).to_string();
    }
    for (open, close) in [("[", "]"), ("(", ")")] {
        if lx.cpunct(j, close) {
            // Walk back to the matching opener.
            let mut depth = 0i64;
            let mut i = j;
            loop {
                if lx.cpunct(i, close) {
                    depth += 1;
                } else if lx.cpunct(i, open) {
                    depth -= 1;
                    if depth == 0 {
                        if i >= 1 && lx.ckind(i - 1) == Some(TokenKind::Ident) {
                            return lx.ctext(i - 1).to_string();
                        }
                        break;
                    }
                }
                if i == 0 {
                    break;
                }
                i -= 1;
            }
        }
    }
    "<expr>".to_string()
}

/// Collects allow annotations per line (1-indexed). A same-line annotation
/// applies to its own line; an annotation on a comment-only line applies
/// to the next line that has code (stacked annotation lines accumulate).
fn collect_allows(path: &str, lx: &Lexed) -> (Vec<Vec<&'static str>>, Vec<Violation>) {
    let mut allows: Vec<Vec<&'static str>> = vec![Vec::new(); lx.line_count + 2];
    let mut violations = Vec::new();
    let mut pending: Vec<&'static str> = Vec::new();
    for (line, slot) in allows.iter_mut().enumerate().take(lx.line_count + 1).skip(1) {
        let mut here = Vec::new();
        let comment = lx.comments_on(line);
        if !comment.is_empty() {
            parse_annotations(path, line, comment, &mut here, &mut violations);
        }
        if lx.line_has_code(line) {
            slot.append(&mut pending);
            slot.append(&mut here);
        } else {
            pending.append(&mut here);
        }
    }
    (allows, violations)
}

fn a001(path: &str, line: usize, message: String) -> Violation {
    Violation { path: path.to_string(), line, col: 1, rule: "A001", message }
}

fn parse_annotations(
    path: &str,
    lineno: usize,
    comment: &str,
    out: &mut Vec<&'static str>,
    violations: &mut Vec<Violation>,
) {
    let mut rest = comment;
    while let Some(pos) = rest.find(ALLOW_MARKER) {
        let after = &rest[pos + ALLOW_MARKER.len()..];
        let Some(body) = after.trim_start().strip_prefix("allow(") else {
            violations.push(a001(
                path,
                lineno,
                format!("expected 'allow(RULE[, RULE]) <reason>' after '{ALLOW_MARKER}'"),
            ));
            rest = after;
            continue;
        };
        let Some(close) = body.find(')') else {
            violations.push(a001(path, lineno, "unclosed rule list in allow annotation".into()));
            rest = after;
            continue;
        };
        for name in body[..close].split(',') {
            let name = name.trim();
            match rule_id(name) {
                Some(rule) => out.push(rule),
                None => violations.push(a001(
                    path,
                    lineno,
                    format!("allow names unknown rule '{name}'"),
                )),
            }
        }
        if body[close + 1..].trim().is_empty() {
            violations.push(a001(
                path,
                lineno,
                "allow annotation needs a reason after the rule list".into(),
            ));
        }
        rest = &body[close + 1..];
    }
}
