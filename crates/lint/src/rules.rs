//! The rule engine: per-file checks over [`crate::lexer`] output.
//!
//! Every rule is a statement about tokens in non-test code, so each check
//! walks the masked per-line code from the lexer and never sees string
//! contents or comments. Violations carry (path, 1-based line, rule id,
//! message) and are sorted by the caller for deterministic output.
//!
//! Suppressions: a comment of the form `allow(RULE[, RULE]) <reason>`
//! prefixed by the marker in [`ALLOW_MARKER`] disables the named rules on
//! the same line (when the comment shares a line with code) or on the next
//! code line (when the comment stands alone). The reason text after the
//! closing parenthesis is mandatory; malformed or unknown annotations are
//! themselves violations (rule A001) so a typo cannot silently disable
//! enforcement.

use crate::lexer::{self, Line};

/// The annotation marker looked up inside comments.
pub const ALLOW_MARKER: &str = "rotary-lint:";

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`D001` … `U001`, or `A001` for bad annotations).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// The suppressible rules, with one-line summaries (used by `--help`).
pub const RULES: &[(&str, &str)] = &[
    ("D001", "no HashMap/HashSet in deterministic crates (iteration order)"),
    ("D002", "no wall-clock reads outside rotary-bench"),
    ("D003", "no ambient randomness; fork named streams from rotary_sim::rng"),
    ("P001", "no unwrap()/expect()/panic! in control-plane code (ratcheted)"),
    ("U001", "every unsafe block needs a SAFETY: comment"),
];

fn rule_id(name: &str) -> Option<&'static str> {
    RULES.iter().map(|(id, _)| *id).find(|id| *id == name)
}

/// Result of scanning one file. `P001` occurrences are kept separate from
/// hard violations because they are gated by the ratchet baseline, not
/// reported site-by-site.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Hard violations (D001/D002/D003/U001/A001).
    pub violations: Vec<Violation>,
    /// Individual `P001` sites; the caller compares per-file counts against
    /// the checked-in baseline.
    pub p001_sites: Vec<Violation>,
}

/// Crates whose `src/` trees must stay free of arbitrary-order collections.
/// `rotary-par` schedules OS threads (inherently ordered by the join
/// barrier), and `rotary-bench`/`rotary-check`/`rotary-tpch` sit outside
/// the deterministic replay boundary.
const D001_SCOPES: &[&str] = &[
    "crates/core/src/",
    "crates/engine/src/",
    "crates/sim/src/",
    "crates/aqp/src/",
    "crates/dlt/src/",
    "crates/faults/src/",
    "crates/store/src/",
    "crates/serve/src/",
];

/// Identifiers whose presence means the line reads the wall clock.
const D002_TOKENS: &[&str] = &["Instant", "SystemTime"];

/// Identifiers that smuggle ambient (non-replayable) randomness in.
const D003_TOKENS: &[&str] =
    &["thread_rng", "OsRng", "StdRng", "SmallRng", "from_entropy", "getrandom", "RandomState"];

fn is_test_path(path: &str) -> bool {
    path.split('/').any(|component| component == "tests")
}

fn d001_applies(path: &str) -> bool {
    D001_SCOPES.iter().any(|scope| path.starts_with(scope))
}

fn d002_applies(path: &str) -> bool {
    // rotary-bench owns the only blessed wall-clock probe.
    !path.starts_with("crates/bench/")
}

fn d003_applies(path: &str) -> bool {
    // The deterministic RNG implementation itself may name these symbols.
    path != "crates/sim/src/rng.rs"
}

/// Scans one file. `path` must be workspace-relative with `/` separators —
/// rule scoping keys off it.
pub fn scan_file(path: &str, src: &str) -> FileScan {
    let lines = lexer::analyze(src);
    let (allows, annotation_violations) = collect_allows(path, &lines);
    let mut scan = FileScan { violations: annotation_violations, ..FileScan::default() };
    let test_path = is_test_path(path);

    for (idx, line) in lines.iter().enumerate() {
        if !line.has_code {
            continue;
        }
        let lineno = idx + 1;
        let allowed = |rule: &str| allows[idx].contains(&rule);
        let in_test = test_path || line.in_test;

        if d001_applies(path) && !in_test && !allowed("D001") {
            for token in ["HashMap", "HashSet"] {
                for _ in lexer::find_word(&line.code, token) {
                    scan.violations.push(Violation {
                        path: path.to_string(),
                        line: lineno,
                        rule: "D001",
                        message: format!(
                            "{token} iterates in arbitrary order and breaks bit-identical \
                             replay; use the BTree equivalent or add a justified allow"
                        ),
                    });
                }
            }
        }

        if d002_applies(path) && !in_test && !allowed("D002") {
            for token in D002_TOKENS {
                for _ in lexer::find_word(&line.code, token) {
                    scan.violations.push(Violation {
                        path: path.to_string(),
                        line: lineno,
                        rule: "D002",
                        message: format!(
                            "{token} reads the wall clock outside rotary-bench; use sim \
                             time or accept an injected ProbeClock"
                        ),
                    });
                }
            }
        }

        if d003_applies(path) && !allowed("D003") {
            for token in D003_TOKENS {
                for _ in lexer::find_word(&line.code, token) {
                    scan.violations.push(Violation {
                        path: path.to_string(),
                        line: lineno,
                        rule: "D003",
                        message: format!(
                            "{token} is ambient randomness; draw from a named fork \
                             stream of rotary_sim::rng instead"
                        ),
                    });
                }
            }
        }

        if !in_test && !allowed("P001") {
            for token in p001_hits(&line.code) {
                scan.p001_sites.push(Violation {
                    path: path.to_string(),
                    line: lineno,
                    rule: "P001",
                    message: format!("{token} may panic in control-plane code"),
                });
            }
        }

        if !allowed("U001")
            && !lexer::find_word(&line.code, "unsafe").is_empty()
            && !has_safety_comment(&lines, idx)
        {
            scan.violations.push(Violation {
                path: path.to_string(),
                line: lineno,
                rule: "U001",
                message: "unsafe without a SAFETY: comment on or directly above the line"
                    .to_string(),
            });
        }
    }
    scan
}

/// Finds panic-capable call tokens in one masked code line: the word
/// `unwrap` followed by `()`, `expect` followed by `(`, or `panic`
/// followed by `!`. Word boundaries exclude `unwrap_or`, `expect_err`,
/// and friends.
fn p001_hits(code: &str) -> Vec<&'static str> {
    let bytes = code.as_bytes();
    let next_non_ws = |from: usize| {
        bytes[from..].iter().position(|b| !b.is_ascii_whitespace()).map(|p| bytes[from + p])
    };
    let mut hits = Vec::new();
    for at in lexer::find_word(code, "unwrap") {
        if next_non_ws(at + "unwrap".len()) == Some(b'(') {
            hits.push("unwrap()");
        }
    }
    for at in lexer::find_word(code, "expect") {
        if next_non_ws(at + "expect".len()) == Some(b'(') {
            hits.push("expect()");
        }
    }
    for at in lexer::find_word(code, "panic") {
        if next_non_ws(at + "panic".len()) == Some(b'!') {
            hits.push("panic!");
        }
    }
    hits
}

/// True when the line at `idx`, or the contiguous run of comment-only
/// lines directly above it, carries a `SAFETY:` comment. A blank line
/// (no code, no comment) breaks the run.
fn has_safety_comment(lines: &[Line], idx: usize) -> bool {
    let mentions = |l: &Line| l.comments.iter().any(|c| c.contains("SAFETY:"));
    if mentions(&lines[idx]) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = &lines[i];
        if line.has_code || line.comments.is_empty() {
            return false;
        }
        if mentions(line) {
            return true;
        }
    }
    false
}

/// Collects allow annotations per line. A same-line annotation applies to
/// its own line; an annotation on a comment-only line applies to the next
/// line that has code (stacked annotation lines accumulate).
fn collect_allows(path: &str, lines: &[Line]) -> (Vec<Vec<&'static str>>, Vec<Violation>) {
    let mut allows: Vec<Vec<&'static str>> = vec![Vec::new(); lines.len()];
    let mut violations = Vec::new();
    let mut pending: Vec<&'static str> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let mut here = Vec::new();
        for comment in &line.comments {
            parse_annotations(path, idx + 1, comment, &mut here, &mut violations);
        }
        if line.has_code {
            allows[idx].append(&mut pending);
            allows[idx].append(&mut here);
        } else {
            pending.append(&mut here);
        }
    }
    (allows, violations)
}

fn a001(path: &str, line: usize, message: String) -> Violation {
    Violation { path: path.to_string(), line, rule: "A001", message }
}

fn parse_annotations(
    path: &str,
    lineno: usize,
    comment: &str,
    out: &mut Vec<&'static str>,
    violations: &mut Vec<Violation>,
) {
    let mut rest = comment;
    while let Some(pos) = rest.find(ALLOW_MARKER) {
        let after = &rest[pos + ALLOW_MARKER.len()..];
        let Some(body) = after.trim_start().strip_prefix("allow(") else {
            violations.push(a001(
                path,
                lineno,
                format!("expected 'allow(RULE[, RULE]) <reason>' after '{ALLOW_MARKER}'"),
            ));
            rest = after;
            continue;
        };
        let Some(close) = body.find(')') else {
            violations.push(a001(path, lineno, "unclosed rule list in allow annotation".into()));
            rest = after;
            continue;
        };
        for name in body[..close].split(',') {
            let name = name.trim();
            match rule_id(name) {
                Some(rule) => out.push(rule),
                None => violations.push(a001(
                    path,
                    lineno,
                    format!("allow names unknown rule '{name}'"),
                )),
            }
        }
        if body[close + 1..].trim().is_empty() {
            violations.push(a001(
                path,
                lineno,
                "allow annotation needs a reason after the rule list".into(),
            ));
        }
        rest = &body[close + 1..];
    }
}
