//! The `rotary-lint` binary: scans the workspace, applies the ratchet
//! baseline, prints violations sorted by (path, line, col, rule), and
//! exits nonzero so `ci.sh` can gate on it.
//!
//! Exit codes: `0` clean, `1` violations, `2` operational errors or a
//! stale baseline (counts fell — rerun with `--update-baseline`).

use rotary_lint::{analyze_workspace, find_root, gate, report_json, Baseline, BASELINE_FILE};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: rotary-lint [--root PATH] [--update-baseline] [--json PATH] [--explain RULE]

  --root PATH          lint the workspace rooted at PATH (default: walk up
                       from the current directory to the [workspace] manifest)
  --update-baseline    rewrite LINT_baseline.json with current ratcheted-rule
                       counts; hard violations still fail the run
  --json PATH          also write the machine-readable report (violations with
                       spans, ratchet counts, lock-order edges) to PATH
  --explain RULE       print a rule's rationale and exact scope, then exit

rules ('*' = ratcheted via LINT_baseline.json):";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("rotary-lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let mut update = false;
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--update-baseline" => update = true,
            "--root" => {
                root = Some(PathBuf::from(it.next().ok_or("--root needs a path")?));
            }
            "--json" => {
                json_out = Some(PathBuf::from(it.next().ok_or("--json needs a path")?));
            }
            "--explain" => {
                let name = it.next().ok_or("--explain needs a rule id (e.g. R003)")?;
                let Some(rule) = rotary_lint::rules::rule(&name) else {
                    return Err(format!("unknown rule '{name}' (try --help for the catalog)"));
                };
                println!("{} — {}", rule.id, rule.summary);
                println!(
                    "\nenforcement: {}",
                    if rule.ratcheted {
                        "ratcheted — existing per-file counts live in LINT_baseline.json \
                         and may only decrease"
                    } else {
                        "hard — any violation fails the run"
                    }
                );
                println!("scope: {}", rule.scope);
                println!("\n{}", rule.explain);
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                for rule in rotary_lint::rules::RULES {
                    let mark = if rule.ratcheted { "*" } else { " " };
                    println!("  {}{mark} {}", rule.id, rule.summary);
                }
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            find_root(&cwd)?
        }
    };

    let analysis = analyze_workspace(&root)?;
    let baseline_path = root.join(BASELINE_FILE);

    let baseline = if update {
        let fresh = Baseline::from_analysis(&analysis);
        std::fs::write(&baseline_path, fresh.to_json())
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "rotary-lint: baseline updated — {} ratcheted sites across {} rules",
            fresh.total(),
            fresh.counts.len(),
        );
        fresh
    } else {
        let text = std::fs::read_to_string(&baseline_path).map_err(|e| {
            format!(
                "cannot read {}: {e}; run `cargo run -p rotary-lint -- --update-baseline`",
                baseline_path.display()
            )
        })?;
        Baseline::parse(&text)?
    };

    let report = gate(&analysis, &baseline);
    if let Some(path) = &json_out {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        std::fs::write(path, report_json(&analysis, &report))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    for v in &report.violations {
        println!("{}:{}:{}: {} {}", v.path, v.line, v.col, v.rule, v.message);
    }
    for s in &report.stale {
        eprintln!("rotary-lint: stale baseline: {s}");
    }
    if !report.violations.is_empty() {
        eprintln!(
            "rotary-lint: {} violation(s) across {} file(s) scanned",
            report.violations.len(),
            analysis.files_scanned
        );
        Ok(ExitCode::from(1))
    } else if !report.stale.is_empty() {
        Ok(ExitCode::from(2))
    } else {
        println!("rotary-lint: {} files clean", analysis.files_scanned);
        Ok(ExitCode::SUCCESS)
    }
}
