//! The `rotary-lint` binary: scans the workspace, applies the ratchet
//! baseline, prints violations sorted by (path, line, rule), and exits
//! nonzero so `ci.sh` can gate on it.
//!
//! Exit codes: `0` clean, `1` violations, `2` operational errors or a
//! stale baseline (counts fell — rerun with `--update-baseline`).

use rotary_lint::{analyze_workspace, find_root, gate, Baseline, BASELINE_FILE};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: rotary-lint [--root PATH] [--update-baseline]

  --root PATH          lint the workspace rooted at PATH (default: walk up
                       from the current directory to the [workspace] manifest)
  --update-baseline    rewrite LINT_baseline.json with current P001 counts;
                       hard violations still fail the run

rules:";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("rotary-lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let mut update = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--update-baseline" => update = true,
            "--root" => {
                root = Some(PathBuf::from(it.next().ok_or("--root needs a path")?));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                for (id, summary) in rotary_lint::rules::RULES {
                    println!("  {id}  {summary}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            find_root(&cwd)?
        }
    };

    let analysis = analyze_workspace(&root)?;
    let baseline_path = root.join(BASELINE_FILE);

    let baseline = if update {
        let fresh = Baseline::from_analysis(&analysis);
        std::fs::write(&baseline_path, fresh.to_json())
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "rotary-lint: baseline updated — {} P001 sites across {} files",
            fresh.p001.values().sum::<u64>(),
            fresh.p001.len(),
        );
        fresh
    } else {
        let text = std::fs::read_to_string(&baseline_path).map_err(|e| {
            format!(
                "cannot read {}: {e}; run `cargo run -p rotary-lint -- --update-baseline`",
                baseline_path.display()
            )
        })?;
        Baseline::parse(&text)?
    };

    let report = gate(&analysis, &baseline);
    for v in &report.violations {
        println!("{}:{}: {} {}", v.path, v.line, v.rule, v.message);
    }
    for s in &report.stale {
        eprintln!("rotary-lint: stale baseline: {s}");
    }
    if !report.violations.is_empty() {
        eprintln!(
            "rotary-lint: {} violation(s) across {} file(s) scanned",
            report.violations.len(),
            analysis.files_scanned
        );
        Ok(ExitCode::from(1))
    } else if !report.stale.is_empty() {
        Ok(ExitCode::from(2))
    } else {
        println!("rotary-lint: {} files clean", analysis.files_scanned);
        Ok(ExitCode::SUCCESS)
    }
}
