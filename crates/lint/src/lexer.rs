//! A from-scratch Rust token lexer.
//!
//! The rule engine does not need a real parse tree — every invariant it
//! enforces is a statement about *token sequences in non-test code*. What
//! it does need, and what generic text search cannot give, is a faithful
//! token stream: identifiers (so `expect_byte` is never mistaken for
//! `expect`), punctuation (so `.unwrap()` is distinguishable from a
//! definition `fn unwrap`), literals (so string/char contents never leak
//! into matching), lifetimes (so `'a` is not half a char literal), and
//! comments (so `SAFETY:` runs and allow annotations stay inspectable). Every token carries a byte **span** that slices the
//! original source losslessly — the property the `lexer_props` suite pins
//! with 256 random token-soup round-trips — plus an **in-test flag**
//! computed by brace-tracking the item under `#[cfg(test)]` / `#[test]`
//! attributes. No `syn`, no proc-macro machinery — the workspace is
//! dependency-free by policy (DESIGN.md §3).
//!
//! Fidelity notes (deliberate, harmless for linting): numeric tokens fold
//! their suffix in (`1u64` is one `Int`), tuple-field chains like `x.0.1`
//! lex the `0.1` as one `Float`, and punctuation is emitted one byte at a
//! time (`::` is two `Punct` tokens). Spans still reconstruct the source
//! byte-for-byte in all three cases.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// A lifetime or loop label: `'a`, `'static`, `'_` (tick included).
    Lifetime,
    /// One byte of punctuation (`.`, `:`, `&`, `*`, `#`, …).
    Punct,
    /// Integer literal, suffix included (`42`, `0xff_u8`, `1_000`).
    Int,
    /// Float literal, suffix and exponent included (`1.`, `2.5e-3f32`).
    Float,
    /// String literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Char or byte literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// `// …` comment (doc comments included), newline excluded.
    LineComment,
    /// `/* … */` comment, possibly nested, possibly multi-line.
    BlockComment,
}

impl TokenKind {
    /// Comments are trivia to the rules (but carry SAFETY/allow text).
    pub fn is_comment(self) -> bool {
        matches!(self, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Where a token sits in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte (`&src[start..end]` is the lexeme).
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based byte column of the first byte on its line.
    pub col: usize,
}

/// One lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Source location; slicing the source by it yields the exact lexeme.
    pub span: Span,
    /// True when the token sits inside a `#[cfg(test)]` / `#[test]` item
    /// (or the file carries an inner `#![cfg(test)]` attribute).
    pub in_test: bool,
}

/// Byte-cursor over the source, tracking line starts for span columns.
struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
    line: usize,
    line_start: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    /// Advances one byte, keeping line accounting straight. Saturates at
    /// EOF so malformed literals (`'\` at end of input) can never produce
    /// a span that points past the source.
    fn bump(&mut self) {
        if self.b.get(self.i) == Some(&b'\n') {
            self.line += 1;
            self.line_start = self.i + 1;
        }
        self.i = (self.i + 1).min(self.b.len());
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn at_end(&self) -> bool {
        self.i >= self.b.len()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a complete token stream (comments included) with
/// test-region flags resolved. Total on any input: unterminated strings
/// and comments end at EOF rather than failing.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor { b: src.as_bytes(), i: 0, line: 1, line_start: 0 };
    let mut tokens = Vec::new();
    while !cur.at_end() {
        let c = cur.peek(0).unwrap_or(0);
        if c.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        let start = cur.i;
        let (line, col) = (cur.line, cur.i - cur.line_start + 1);
        let kind = scan_token(&mut cur, c);
        debug_assert!(cur.i > start, "lexer must always make progress");
        tokens.push(Token { kind, span: Span { start, end: cur.i, line, col }, in_test: false });
    }
    mark_test_regions(&mut tokens, src);
    tokens
}

/// Scans one token starting at `cur` (first byte `c`), leaving the cursor
/// one past its end.
fn scan_token(cur: &mut Cursor, c: u8) -> TokenKind {
    match c {
        b'/' if cur.peek(1) == Some(b'/') => {
            while !cur.at_end() && cur.peek(0) != Some(b'\n') {
                cur.bump();
            }
            TokenKind::LineComment
        }
        b'/' if cur.peek(1) == Some(b'*') => {
            cur.bump_n(2);
            let mut depth = 1u32;
            while !cur.at_end() && depth > 0 {
                if cur.peek(0) == Some(b'/') && cur.peek(1) == Some(b'*') {
                    depth += 1;
                    cur.bump_n(2);
                } else if cur.peek(0) == Some(b'*') && cur.peek(1) == Some(b'/') {
                    depth -= 1;
                    cur.bump_n(2);
                } else {
                    cur.bump();
                }
            }
            TokenKind::BlockComment
        }
        b'"' => {
            cur.bump();
            scan_escaped_string(cur);
            TokenKind::Str
        }
        b'r' | b'b' => {
            if let Some((prefix_len, n_hashes, raw)) = raw_string_prefix(cur) {
                cur.bump_n(prefix_len);
                if raw {
                    scan_raw_string(cur, n_hashes);
                } else {
                    scan_escaped_string(cur);
                }
                TokenKind::Str
            } else if c == b'b' && cur.peek(1) == Some(b'\'') {
                cur.bump_n(2);
                scan_char_tail(cur);
                TokenKind::Char
            } else if c == b'r'
                && cur.peek(1) == Some(b'#')
                && cur.peek(2).is_some_and(is_ident_start)
            {
                // Raw identifier `r#type`.
                cur.bump_n(2);
                scan_ident_tail(cur);
                TokenKind::Ident
            } else {
                scan_ident_tail(cur);
                TokenKind::Ident
            }
        }
        b'\'' => scan_char_or_lifetime(cur),
        b'0'..=b'9' => scan_number(cur),
        _ if is_ident_start(c) => {
            scan_ident_tail(cur);
            TokenKind::Ident
        }
        _ => {
            cur.bump();
            TokenKind::Punct
        }
    }
}

fn scan_ident_tail(cur: &mut Cursor) {
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
}

/// Body of a `"…"` / `b"…"` string, cursor just past the opening quote.
fn scan_escaped_string(cur: &mut Cursor) {
    while !cur.at_end() {
        match cur.peek(0) {
            Some(b'\\') => cur.bump_n(2),
            Some(b'"') => {
                cur.bump();
                return;
            }
            _ => cur.bump(),
        }
    }
}

/// Body of a raw string opened with `n_hashes` hashes, cursor just past
/// the opening quote.
fn scan_raw_string(cur: &mut Cursor, n_hashes: usize) {
    while !cur.at_end() {
        if cur.peek(0) == Some(b'"') && (1..=n_hashes).all(|k| cur.peek(k) == Some(b'#')) {
            cur.bump_n(1 + n_hashes);
            return;
        }
        cur.bump();
    }
}

/// Detects a raw/byte string-literal prefix at the cursor: `r"`, `r#…#"`,
/// `b"`, `br#…#"`. Returns (prefix length incl. quote, hash count, raw?).
fn raw_string_prefix(cur: &Cursor) -> Option<(usize, usize, bool)> {
    let mut j = 0usize;
    if cur.peek(j) == Some(b'b') {
        j += 1;
    }
    let raw = cur.peek(j) == Some(b'r');
    if raw {
        j += 1;
    }
    if j == 0 {
        return None;
    }
    let mut hashes = 0usize;
    while cur.peek(j) == Some(b'#') {
        if !raw {
            return None;
        }
        j += 1;
        hashes += 1;
    }
    if cur.peek(j) == Some(b'"') {
        Some((j + 1, hashes, raw))
    } else {
        None
    }
}

/// Tail of a char/byte literal, cursor just past the opening quote:
/// consumes the (possibly escaped, possibly multi-byte) content and the
/// closing quote. Malformed literals end at the next quote, newline, or
/// EOF so the lexer stays total.
fn scan_char_tail(cur: &mut Cursor) {
    if cur.peek(0) == Some(b'\\') {
        if cur.peek(1) == Some(b'u') && cur.peek(2) == Some(b'{') {
            cur.bump_n(3);
            while !cur.at_end() && cur.peek(0) != Some(b'}') {
                cur.bump();
            }
            cur.bump(); // the `}`
        } else {
            cur.bump_n(2);
        }
    } else if !cur.at_end() {
        let w = utf8_width(cur.peek(0).unwrap_or(0));
        cur.bump_n(w);
    }
    // Closing quote (tolerate malformed input).
    while !cur.at_end() && cur.peek(0) != Some(b'\'') && cur.peek(0) != Some(b'\n') {
        cur.bump();
    }
    if cur.peek(0) == Some(b'\'') {
        cur.bump();
    }
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) at the tick.
fn scan_char_or_lifetime(cur: &mut Cursor) -> TokenKind {
    let next = cur.peek(1);
    match next {
        Some(b'\\') => {
            cur.bump(); // the tick
            scan_char_tail(cur);
            TokenKind::Char
        }
        Some(b2) if !cur.at_end() => {
            let w = utf8_width(b2);
            if cur.peek(1 + w) == Some(b'\'') {
                // `'x'` — a one-char literal closes immediately.
                cur.bump();
                scan_char_tail(cur);
                TokenKind::Char
            } else if is_ident_start(b2) {
                cur.bump(); // the tick
                scan_ident_tail(cur);
                TokenKind::Lifetime
            } else {
                cur.bump();
                TokenKind::Punct
            }
        }
        _ => {
            cur.bump();
            TokenKind::Punct
        }
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Numeric literal: decimal/hex/octal/binary ints, floats with fraction
/// and/or exponent, type suffixes folded into the token. A `.` is taken
/// only when it cannot start a range (`1..2`) or a method/field access
/// (`1.max(2)`, `x.0.abs()`).
fn scan_number(cur: &mut Cursor) -> TokenKind {
    let mut float = false;
    if cur.peek(0) == Some(b'0') && matches!(cur.peek(1), Some(b'x' | b'o' | b'b')) {
        cur.bump_n(2);
        while cur.peek(0).is_some_and(|b| b.is_ascii_hexdigit() || b == b'_') {
            cur.bump();
        }
    } else {
        while cur.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            cur.bump();
        }
        if cur.peek(0) == Some(b'.') {
            match cur.peek(1) {
                Some(b) if b.is_ascii_digit() => {
                    float = true;
                    cur.bump();
                    while cur.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                        cur.bump();
                    }
                }
                Some(b'.') => {}                   // range `1..`
                Some(b) if is_ident_start(b) => {} // method `1.max(…)`
                _ => {
                    float = true;
                    cur.bump(); // trailing-dot float `1.`
                }
            }
        }
        if matches!(cur.peek(0), Some(b'e' | b'E')) {
            let (s1, s2) = (cur.peek(1), cur.peek(2));
            let signed = matches!(s1, Some(b'+' | b'-')) && s2.is_some_and(|b| b.is_ascii_digit());
            if s1.is_some_and(|b| b.is_ascii_digit()) || signed {
                float = true;
                cur.bump_n(if signed { 2 } else { 1 });
                while cur.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                    cur.bump();
                }
            }
        }
    }
    // Type suffix (`u64`, `f32`, …) folds into the literal.
    let suffix_start = cur.i;
    scan_ident_tail(cur);
    let suffix = &cur.b[suffix_start..cur.i];
    if float || suffix == b"f32" || suffix == b"f64" {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

// ------------------------------------------------------- test regions --

/// Marks tokens covered by `#[cfg(test)]` / `#[test]` items: from the
/// attribute to the matching close brace of the item body (or the
/// terminating semicolon for brace-less items). An inner `#![cfg(test)]`
/// marks the whole file. Works over code tokens, so braces inside strings
/// or comments can never derail the tracking.
fn mark_test_regions(tokens: &mut [Token], src: &str) {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    {
        let code: Vec<usize> =
            (0..tokens.len()).filter(|&i| !tokens[i].kind.is_comment()).collect();
        let text = |k: usize| -> &str {
            let t = &tokens[code[k]];
            &src[t.span.start..t.span.end]
        };
        let is_punct = |k: usize, ch: &str| -> bool {
            k < code.len() && tokens[code[k]].kind == TokenKind::Punct && text(k) == ch
        };

        let mut k = 0usize;
        while k < code.len() {
            if !is_punct(k, "#") {
                k += 1;
                continue;
            }
            let mut j = k + 1;
            let inner = is_punct(j, "!");
            if inner {
                j += 1;
            }
            if !is_punct(j, "[") {
                k += 1;
                continue;
            }
            let Some(close) = matching_bracket(tokens, &code, src, j, b'[', b']') else {
                k += 1;
                continue;
            };
            if !attr_marks_test(tokens, &code, src, j + 1, close) {
                k = close + 1;
                continue;
            }
            if inner {
                ranges.clear();
                ranges.push((0, src.len()));
                break;
            }
            let end_byte = item_end(tokens, &code, src, close + 1);
            ranges.push((tokens[code[k]].span.start, end_byte));
            k = close + 1;
        }
    }
    for (from, to) in ranges {
        for t in tokens.iter_mut() {
            if t.span.start >= from && t.span.start <= to {
                t.in_test = true;
            }
        }
    }
}

/// Index (in `code`) of the punct closing the group opened at `open_at`.
fn matching_bracket(
    tokens: &[Token],
    code: &[usize],
    src: &str,
    open_at: usize,
    open: u8,
    close: u8,
) -> Option<usize> {
    let mut depth = 0i64;
    for (k, &ti) in code.iter().enumerate().skip(open_at) {
        if tokens[ti].kind == TokenKind::Punct {
            let b = src.as_bytes()[tokens[ti].span.start];
            if b == open {
                depth += 1;
            } else if b == close {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

/// True when the attribute tokens in `code[from..to]` scope their item to
/// tests: exactly `test`, or `cfg(…)` naming `test` outside a `not(…)`
/// group (`cfg(all(test, unix))` counts, `cfg(not(test))` does not).
fn attr_marks_test(tokens: &[Token], code: &[usize], src: &str, from: usize, to: usize) -> bool {
    let text = |k: usize| -> &str {
        let t = &tokens[code[k]];
        &src[t.span.start..t.span.end]
    };
    if to == from + 1 && text(from) == "test" {
        return true;
    }
    if from >= to || text(from) != "cfg" {
        return false;
    }
    let mut groups: Vec<&str> = Vec::new();
    let mut k = from;
    while k < to {
        let t = &tokens[code[k]];
        let s = text(k);
        if t.kind == TokenKind::Ident {
            if s == "test" && !groups.contains(&"not") {
                return true;
            }
            if k + 1 < to && tokens[code[k + 1]].kind == TokenKind::Punct && text(k + 1) == "(" {
                groups.push(if s == "not" { "not" } else { "other" });
                k += 2;
                continue;
            }
        } else if t.kind == TokenKind::Punct && s == ")" {
            groups.pop();
        }
        k += 1;
    }
    false
}

/// Byte offset where the item following an attribute ends: at the close
/// of the first top-level `{…}` body, or at a `;` seen before any body
/// opens. Further attributes on the same item are skipped.
fn item_end(tokens: &[Token], code: &[usize], src: &str, mut k: usize) -> usize {
    let text = |k: usize| -> &str {
        let t = &tokens[code[k]];
        &src[t.span.start..t.span.end]
    };
    let mut depth = 0i64;
    while k < code.len() {
        let t = &tokens[code[k]];
        if t.kind == TokenKind::Punct {
            match text(k) {
                "#" if depth == 0 => {
                    let mut j = k + 1;
                    if j < code.len() && text(j) == "!" {
                        j += 1;
                    }
                    if j < code.len() && text(j) == "[" {
                        if let Some(close) = matching_bracket(tokens, code, src, j, b'[', b']') {
                            k = close + 1;
                            continue;
                        }
                    }
                }
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return t.span.end;
                    }
                }
                ";" if depth == 0 => return t.span.end,
                _ => {}
            }
        }
        k += 1;
    }
    src.len()
}

// ------------------------------------------------------------ Lexed --

/// A lexed file with the per-line indexes the rule engine consumes.
pub struct Lexed<'a> {
    /// The source text (tokens slice into it).
    pub src: &'a str,
    /// The complete token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices (into `tokens`) of the non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Number of lines in the file.
    pub line_count: usize,
    /// 1-indexed: true when a code token starts on the line.
    has_code: Vec<bool>,
    /// 1-indexed: concatenated comment text covering each line (comment
    /// markers stripped; multi-line block comments contribute per line).
    comment_text: Vec<String>,
}

impl<'a> Lexed<'a> {
    /// Lexes `src` and builds the line indexes.
    pub fn new(src: &'a str) -> Lexed<'a> {
        let tokens = lex(src);
        let code: Vec<usize> =
            (0..tokens.len()).filter(|&i| !tokens[i].kind.is_comment()).collect();
        let line_count = src.lines().count().max(1);
        let mut has_code = vec![false; line_count + 2];
        let mut comment_text = vec![String::new(); line_count + 2];
        for t in &tokens {
            if t.kind.is_comment() {
                let raw = &src[t.span.start..t.span.end];
                for (off, fragment) in raw.split('\n').enumerate() {
                    let line = t.span.line + off;
                    if line < comment_text.len() {
                        let stripped = strip_comment_markers(fragment);
                        if !comment_text[line].is_empty() {
                            comment_text[line].push(' ');
                        }
                        comment_text[line].push_str(stripped);
                    }
                }
            } else if t.span.line < has_code.len() {
                has_code[t.span.line] = true;
            }
        }
        Lexed { src, tokens, code, line_count, has_code, comment_text }
    }

    /// Lexeme of the code token at code-position `k` ("" out of range).
    pub fn ctext(&self, k: usize) -> &'a str {
        match self.code.get(k) {
            Some(&ti) => {
                let t = &self.tokens[ti];
                &self.src[t.span.start..t.span.end]
            }
            None => "",
        }
    }

    /// Kind of the code token at code-position `k`.
    pub fn ckind(&self, k: usize) -> Option<TokenKind> {
        self.code.get(k).map(|&ti| self.tokens[ti].kind)
    }

    /// True when code-position `k` is the given punctuation byte.
    pub fn cpunct(&self, k: usize, ch: &str) -> bool {
        self.ckind(k) == Some(TokenKind::Punct) && self.ctext(k) == ch
    }

    /// Span of the code token at code-position `k`.
    pub fn cspan(&self, k: usize) -> Span {
        self.code.get(k).map(|&ti| self.tokens[ti].span).unwrap_or(Span {
            start: 0,
            end: 0,
            line: 1,
            col: 1,
        })
    }

    /// Test flag of the code token at code-position `k`.
    pub fn cin_test(&self, k: usize) -> bool {
        self.code.get(k).map(|&ti| self.tokens[ti].in_test).unwrap_or(false)
    }

    /// Code-position of the punct matching the opener at code-position
    /// `open_at` (e.g. `(`/`)`), or `None` when unbalanced.
    pub fn cmatch(&self, open_at: usize, open: &str, close: &str) -> Option<usize> {
        let mut depth = 0i64;
        for k in open_at..self.code.len() {
            if self.ckind(k) == Some(TokenKind::Punct) {
                let s = self.ctext(k);
                if s == open {
                    depth += 1;
                } else if s == close {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
            }
        }
        None
    }

    /// True when any code token starts on `line` (1-based).
    pub fn line_has_code(&self, line: usize) -> bool {
        self.has_code.get(line).copied().unwrap_or(false)
    }

    /// Comment text covering `line` ("" when none).
    pub fn comments_on(&self, line: usize) -> &str {
        self.comment_text.get(line).map(String::as_str).unwrap_or("")
    }

    /// Concatenated comment text of `line` plus the contiguous run of
    /// comment-only lines directly above it (a blank line — no code, no
    /// comment — breaks the run). Space-joined, top to bottom.
    pub fn comment_run(&self, line: usize) -> String {
        let mut parts = vec![self.comments_on(line)];
        let mut l = line;
        while l > 1 {
            l -= 1;
            let comment = self.comments_on(l);
            if self.line_has_code(l) || comment.is_empty() {
                break;
            }
            parts.push(comment);
        }
        parts.retain(|p| !p.is_empty());
        parts.reverse();
        parts.join(" ")
    }

    /// True when `line`, or the contiguous run of comment-only lines
    /// directly above it, carries text matching `pred`. A blank line (no
    /// code, no comment) breaks the run.
    pub fn comment_run_matches(&self, line: usize, pred: impl Fn(&str) -> bool) -> bool {
        if pred(self.comments_on(line)) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let comment = self.comments_on(l);
            if self.line_has_code(l) || comment.is_empty() {
                return false;
            }
            if pred(comment) {
                return true;
            }
        }
        false
    }
}

/// Strips `//`-family and `/*`/`*/` markers from one comment fragment.
fn strip_comment_markers(fragment: &str) -> &str {
    let s = fragment.trim_start();
    let s = s.strip_prefix("//").unwrap_or(s);
    let s = s.strip_prefix("/*").unwrap_or(s);
    let s = s.strip_suffix("*/").unwrap_or(s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, &src[t.span.start..t.span.end])).collect()
    }

    #[test]
    fn identifiers_literals_and_puncts_tokenize() {
        let got = kinds("let x = foo.bar(42, \"s\");");
        let texts: Vec<&str> = got.iter().map(|(_, s)| *s).collect();
        assert_eq!(
            texts,
            vec!["let", "x", "=", "foo", ".", "bar", "(", "42", ",", "\"s\"", ")", ";"]
        );
        assert_eq!(got[7].0, TokenKind::Int);
        assert_eq!(got[9].0, TokenKind::Str);
    }

    #[test]
    fn expect_byte_is_one_identifier_not_expect() {
        let got = kinds("self.expect_byte(b'{')?;");
        assert!(got.iter().any(|(k, s)| *k == TokenKind::Ident && *s == "expect_byte"));
        assert!(!got.iter().any(|(_, s)| *s == "expect"));
        assert!(got.iter().any(|(k, s)| *k == TokenKind::Char && *s == "b'{'"));
    }

    #[test]
    fn strings_mask_their_contents() {
        let got = kinds("let s = \"HashMap unsafe panic!\"; use HashMap;");
        let idents: Vec<&str> =
            got.iter().filter(|(k, _)| *k == TokenKind::Ident).map(|(_, s)| *s).collect();
        assert_eq!(idents, vec!["let", "s", "use", "HashMap"]);
    }

    #[test]
    fn raw_strings_and_byte_strings_are_single_tokens() {
        let got =
            kinds("let a = r#\"panic! \" unsafe\"#; let b = br\"x\"; let c = b\"SystemTime\";");
        let strs: Vec<&str> =
            got.iter().filter(|(k, _)| *k == TokenKind::Str).map(|(_, s)| *s).collect();
        assert_eq!(strs, vec!["r#\"panic! \" unsafe\"#", "br\"x\"", "b\"SystemTime\""]);
    }

    #[test]
    fn char_vs_lifetime_ambiguity() {
        let got = kinds("let c = 'u'; let lt: &'static str = \"\"; fn f<'a>(x: &'a str) {} '\\n'");
        let chars: Vec<&str> =
            got.iter().filter(|(k, _)| *k == TokenKind::Char).map(|(_, s)| *s).collect();
        let lts: Vec<&str> =
            got.iter().filter(|(k, _)| *k == TokenKind::Lifetime).map(|(_, s)| *s).collect();
        assert_eq!(chars, vec!["'u'", "'\\n'"]);
        assert_eq!(lts, vec!["'static", "'a", "'a"]);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let got = kinds("/* outer /* inner */ still comment */ let live = 1;");
        assert_eq!(got[0].0, TokenKind::BlockComment);
        assert!(got.iter().any(|(k, s)| *k == TokenKind::Ident && *s == "live"));
        assert!(!got.iter().any(|(k, s)| !k.is_comment() && s.contains("inner")));
    }

    #[test]
    fn numeric_shapes() {
        for (src, kind) in [
            ("42", TokenKind::Int),
            ("0xff_u8", TokenKind::Int),
            ("1_000", TokenKind::Int),
            ("1.5", TokenKind::Float),
            ("1.", TokenKind::Float),
            ("1e-12", TokenKind::Float),
            ("2.5e3f32", TokenKind::Float),
            ("7f64", TokenKind::Float),
            ("0b1010", TokenKind::Int),
        ] {
            let got = kinds(src);
            assert_eq!(got.len(), 1, "{src} should be one token: {got:?}");
            assert_eq!(got[0].0, kind, "{src}");
            assert_eq!(got[0].1, src);
        }
        // Ranges and method calls keep their dots separate.
        let texts: Vec<&str> = kinds("0..10").iter().map(|(_, s)| *s).collect::<Vec<_>>();
        assert_eq!(texts, vec!["0", ".", ".", "10"]);
        let texts: Vec<&str> = kinds("1.max(2)").iter().map(|(_, s)| *s).collect::<Vec<_>>();
        assert_eq!(texts[..3], ["1", ".", "max"]);
    }

    #[test]
    fn spans_slice_source_losslessly() {
        let src = "fn f<'a>(x: &'a str) -> u64 { x.len() as u64 + 0xff } // tail\n/* b */";
        let tokens = lex(src);
        let mut prev_end = 0usize;
        for t in &tokens {
            assert!(t.span.start >= prev_end, "tokens must not overlap");
            assert!(src[prev_end..t.span.start].chars().all(char::is_whitespace));
            assert!(t.span.end > t.span.start);
            prev_end = t.span.end;
        }
        assert!(src[prev_end..].chars().all(char::is_whitespace));
    }

    #[test]
    fn cfg_test_region_is_brace_tracked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn also_live() {}\n";
        let lx = Lexed::new(src);
        let flag_of = |word: &str| {
            (0..lx.code.len()).find(|&k| lx.ctext(k) == word).map(|k| lx.cin_test(k)).unwrap()
        };
        assert!(!flag_of("live"));
        assert!(flag_of("helper"));
        assert!(!flag_of("also_live"));
    }

    #[test]
    fn cfg_not_test_does_not_mark_a_region() {
        let src = "#[cfg(not(test))]\nfn prod() { body(); }\n";
        let lx = Lexed::new(src);
        assert!((0..lx.code.len()).all(|k| !lx.cin_test(k)));
    }

    #[test]
    fn cfg_all_test_and_stacked_attributes_mark_the_item() {
        let src = "#[cfg(all(test, unix))]\nfn t() {}\n#[test]\n#[ignore]\nfn u() { b(); }\nfn live() {}\n";
        let lx = Lexed::new(src);
        let flag_of = |word: &str| {
            (0..lx.code.len()).find(|&k| lx.ctext(k) == word).map(|k| lx.cin_test(k)).unwrap()
        };
        assert!(flag_of("t"));
        assert!(flag_of("u"));
        assert!(flag_of("b"));
        assert!(!flag_of("live"));
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let src = "#![cfg(test)]\nfn anything() {}\n";
        let lx = Lexed::new(src);
        assert!((0..lx.code.len()).all(|k| lx.cin_test(k)));
    }

    #[test]
    fn cfg_test_on_braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let lx = Lexed::new(src);
        let flag_of = |word: &str| {
            (0..lx.code.len()).find(|&k| lx.ctext(k) == word).map(|k| lx.cin_test(k)).unwrap()
        };
        assert!(flag_of("HashMap"));
        assert!(!flag_of("live"));
    }

    #[test]
    fn comment_lines_and_runs() {
        let src = "// SAFETY: checked\nlet x = 1;\n\n// stale\n\nlet y = unsafe_op();\n";
        let lx = Lexed::new(src);
        assert!(lx.comments_on(1).contains("SAFETY:"));
        assert!(lx.line_has_code(2));
        assert!(lx.comment_run_matches(2, |c| c.contains("SAFETY:")));
        assert!(!lx.comment_run_matches(6, |c| c.contains("stale")), "blank line breaks the run");
    }
}
