//! A from-scratch Rust source scanner.
//!
//! The rule engine does not need a real parse tree — every invariant it
//! enforces is a statement about *tokens in non-test code*. What it does
//! need, and what generic text search cannot give, is to know which bytes
//! are code and which are string contents, comments, or `#[cfg(test)]`
//! regions. This module produces exactly that: per line, a **masked code
//! string** (string/char-literal contents and comments blanked to spaces,
//! delimiters kept), the **comment text** on the line, and an **in-test
//! flag** computed by brace-tracking the item under `#[cfg(test)]` /
//! `#[test]` attributes. No `syn`, no proc-macro machinery — the workspace
//! is dependency-free by policy (DESIGN.md §3).

/// One source line, classified.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line with comments and literal contents blanked to spaces.
    /// String/char delimiters survive so token boundaries stay intact;
    /// raw-string prefixes (`r#"`) are blanked along with the contents.
    pub code: String,
    /// Text of every comment (or comment fragment, for multi-line block
    /// comments) present on this line, comment markers stripped.
    pub comments: Vec<String>,
    /// True when the masked code contains any non-whitespace character.
    pub has_code: bool,
    /// True when the line sits inside a `#[cfg(test)]` / `#[test]` item
    /// (or the file carries an inner `#![cfg(test)]` attribute).
    pub in_test: bool,
}

/// Lexer state: what the current byte belongs to.
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scans `src` into classified lines. Lines are 0-indexed in the returned
/// vector; diagnostics add 1 when printing.
pub fn analyze(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut line = Line::default();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0usize;

    // Flushes the pending comment fragment into the current line.
    fn flush_comment(line: &mut Line, comment: &mut String) {
        if !comment.is_empty() {
            line.comments.push(std::mem::take(comment));
        }
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A newline ends the physical line in every state; block
            // comments and multi-line strings continue on the next one.
            flush_comment(&mut line, &mut comment);
            lines.push(std::mem::take(&mut line));
            i += 1;
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    line.code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    line.code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    line.code.push('"');
                    i += 1;
                } else if let Some(skip) = raw_string_prefix(&chars, i) {
                    // `r"`, `r#…#"`, `br#…#"`, or `b"`: blank the prefix,
                    // keep one opening quote. Raw variants (any `r`) take
                    // the no-escape state; plain `b"…"` escapes like `"…"`.
                    let n_hashes = chars[i..i + skip].iter().filter(|&&p| p == '#').count() as u32;
                    let is_raw = chars[i..i + skip].contains(&'r');
                    for _ in 0..skip.saturating_sub(1) {
                        line.code.push(' ');
                    }
                    line.code.push('"');
                    state = if is_raw { State::RawStr(n_hashes) } else { State::Str };
                    i += skip;
                } else if c == '\'' {
                    if is_char_literal(&chars, i) {
                        state = State::Char;
                        line.code.push('\'');
                    } else {
                        // A lifetime: keep the tick as code.
                        line.code.push('\'');
                    }
                    i += 1;
                } else if c == 'b' && next == Some('\'') {
                    line.code.push(' ');
                    line.code.push('\'');
                    state = State::Char;
                    i += 2;
                } else {
                    line.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                line.code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    comment.push_str("/*");
                    line.code.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    if depth == 1 {
                        flush_comment(&mut line, &mut comment);
                        state = State::Code;
                    } else {
                        comment.push_str("*/");
                        state = State::BlockComment(depth - 1);
                    }
                    line.code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c);
                    line.code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    line.code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    line.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(n_hashes) => {
                if c == '"' && closes_raw(&chars, i, n_hashes) {
                    line.code.push('"');
                    for _ in 0..n_hashes {
                        line.code.push(' ');
                    }
                    state = State::Code;
                    i += 1 + n_hashes as usize;
                } else {
                    line.code.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    line.code.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    line.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    line.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    flush_comment(&mut line, &mut comment);
    if !line.code.is_empty() || !line.comments.is_empty() {
        lines.push(line);
    }
    for l in &mut lines {
        l.has_code = l.code.chars().any(|c| !c.is_whitespace());
    }
    mark_test_regions(&mut lines);
    lines
}

/// Length of a raw/byte string-literal prefix starting at `i` (up to and
/// including the opening quote), or `None` when `chars[i]` does not start
/// one. Raw *identifiers* (`r#type`) and plain identifiers containing `r`
/// or `b` are rejected via the preceding-character check and the
/// must-end-in-quote requirement.
fn raw_string_prefix(chars: &[char], i: usize) -> Option<usize> {
    if i > 0 && is_ident_char(chars[i - 1]) {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    let has_r = chars.get(j) == Some(&'r');
    if has_r {
        j += 1;
    }
    if j == i {
        return None;
    }
    while chars.get(j) == Some(&'#') {
        if !has_r {
            return None;
        }
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(j + 1 - i)
    } else {
        None
    }
}

/// True when the `"` at `i` is followed by `n` hashes, closing a raw
/// string opened with `n` hashes.
fn closes_raw(chars: &[char], i: usize, n: u32) -> bool {
    (1..=n as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes a char literal from a lifetime at the `'` in `chars[i]`.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Marks lines covered by `#[cfg(test)]` / `#[test]` items: from the
/// attribute to the matching close brace of the item body (or the
/// terminating semicolon for brace-less items). An inner `#![cfg(test)]`
/// marks the whole file.
fn mark_test_regions(lines: &mut [Line]) {
    // Work over the masked code joined with newlines; offsets map back to
    // (line, column) through `line_of`.
    let joined: String = {
        let mut s = String::new();
        for l in lines.iter() {
            s.push_str(&l.code);
            s.push('\n');
        }
        s
    };
    let chars: Vec<char> = joined.chars().collect();
    let line_starts: Vec<usize> = {
        let mut starts = vec![0usize];
        for (idx, &c) in chars.iter().enumerate() {
            if c == '\n' {
                starts.push(idx + 1);
            }
        }
        starts
    };
    let line_of = |offset: usize| -> usize {
        match line_starts.binary_search(&offset) {
            Ok(l) => l,
            Err(l) => l - 1,
        }
    };

    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] != '#' {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = i + 1;
        let inner = chars.get(j) == Some(&'!');
        if inner {
            j += 1;
        }
        while matches!(chars.get(j), Some(c) if c.is_whitespace()) {
            j += 1;
        }
        if chars.get(j) != Some(&'[') {
            i += 1;
            continue;
        }
        let Some((attr_text, after_attr)) = read_balanced(&chars, j, '[', ']') else {
            i += 1;
            continue;
        };
        if !attr_marks_test(&attr_text) {
            i = after_attr;
            continue;
        }
        if inner {
            for l in lines.iter_mut() {
                l.in_test = true;
            }
            return;
        }
        let end = item_end(&chars, after_attr);
        let (from, to) = (line_of(attr_start), line_of(end.min(chars.len() - 1)));
        for l in lines.iter_mut().take(to + 1).skip(from) {
            l.in_test = true;
        }
        i = after_attr;
    }
}

/// Reads a balanced `open…close` group starting at `chars[at] == open`;
/// returns the interior text and the offset one past the closing char.
fn read_balanced(chars: &[char], at: usize, open: char, close: char) -> Option<(String, usize)> {
    let mut depth = 0usize;
    let mut text = String::new();
    let mut i = at;
    while i < chars.len() {
        let c = chars[i];
        if c == open {
            depth += 1;
            if depth > 1 {
                text.push(c);
            }
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return Some((text, i + 1));
            }
            text.push(c);
        } else if depth > 0 {
            text.push(c);
        }
        i += 1;
    }
    None
}

/// True when an attribute body (text between `[` and `]`) scopes its item
/// to tests: `test`, `cfg(test)`, or any `cfg(…)` mentioning `test` as a
/// standalone word (`cfg(all(test, …))`).
fn attr_marks_test(attr: &str) -> bool {
    let compact: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
    if compact == "test" {
        return true;
    }
    compact.starts_with("cfg(") && contains_word(&compact, "test")
}

/// Word-boundary containment check (boundaries are non-identifier chars).
pub fn contains_word(haystack: &str, word: &str) -> bool {
    !find_word(haystack, word).is_empty()
}

/// Byte offsets of every word-boundary occurrence of `word` in `haystack`.
pub fn find_word(haystack: &str, word: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let bytes = haystack.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = haystack[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            hits.push(at);
        }
        from = at + word.len().max(1);
    }
    hits
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds where the item following an attribute ends: at the close of the
/// first top-level `{…}` body, or at a `;` seen before any body opens.
/// Further attributes on the same item are skipped.
fn item_end(chars: &[char], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < chars.len() {
        match chars[i] {
            '#' => {
                // Another attribute on the same item — skip it wholesale so
                // its brackets don't confuse the brace tracking.
                let mut j = i + 1;
                while matches!(chars.get(j), Some(c) if c.is_whitespace()) {
                    j += 1;
                }
                if depth == 0 && chars.get(j) == Some(&'[') {
                    if let Some((_, after)) = read_balanced(chars, j, '[', ']') {
                        i = after;
                        continue;
                    }
                }
                i += 1;
            }
            '{' => {
                depth += 1;
                i += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
                i += 1;
            }
            ';' if depth == 0 => return i,
            _ => i += 1,
        }
    }
    chars.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_masked() {
        let src =
            "let x = \"HashMap inside\"; // HashMap in comment\nuse std::collections::HashMap;\n";
        let lines = analyze(src);
        assert!(!contains_word(&lines[0].code, "HashMap"));
        assert!(lines[0].comments[0].contains("HashMap"));
        assert!(contains_word(&lines[1].code, "HashMap"));
    }

    #[test]
    fn raw_strings_and_chars_are_masked() {
        let src = "let s = r#\"panic!() unsafe\"#;\nlet c = 'u'; let lt: &'static str = \"x\";\nlet b = b\"SystemTime\";\n";
        let lines = analyze(src);
        assert!(!contains_word(&lines[0].code, "panic"));
        assert!(!contains_word(&lines[0].code, "unsafe"));
        assert!(contains_word(&lines[1].code, "static"), "lifetimes stay code: {}", lines[1].code);
        assert!(!contains_word(&lines[2].code, "SystemTime"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still comment */ let live = 1;\n";
        let lines = analyze(src);
        assert!(contains_word(&lines[0].code, "live"));
        assert!(!contains_word(&lines[0].code, "inner"));
    }

    #[test]
    fn cfg_test_region_is_brace_tracked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn also_live() {}\n";
        let lines = analyze(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test && lines[2].in_test && lines[3].in_test && lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let lines = analyze(src);
        assert!(lines[0].in_test && lines[1].in_test);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn stacked_attributes_stay_in_the_region() {
        let src = "#[test]\n#[ignore]\nfn t() {\n    body();\n}\nfn live() {}\n";
        let lines = analyze(src);
        assert!(lines[0].in_test && lines[1].in_test && lines[3].in_test && lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn cfg_all_test_counts_as_test() {
        let src = "#[cfg(all(test, unix))]\nfn t() {}\nfn live() {}\n";
        let lines = analyze(src);
        assert!(lines[0].in_test && lines[1].in_test);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let src = "#![cfg(test)]\nfn anything() {}\n";
        let lines = analyze(src);
        assert!(lines.iter().all(|l| l.in_test));
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_word("let m: HashMap<u32, u32>;", "HashMap"));
        assert!(!contains_word("let m = MyHashMapLike::new();", "HashMap"));
        assert!(
            !contains_word("expect_err(", "expect")
                || find_word("expect_err(", "expect").is_empty()
        );
    }
}
