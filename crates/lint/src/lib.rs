//! `rotary-lint` — an in-tree static-analysis pass enforcing the
//! determinism and robustness invariants the reproduction rests on.
//!
//! The whole experimental claim of this repository is that arbitration is
//! a pure function of `(seed, job, epoch)` — every table regenerates
//! bit-identically. That property is one `HashMap` iteration or one
//! `Instant::now()` away from silently eroding (PR 3 fixed exactly such a
//! bug), so this crate machine-checks it on every CI run. The analyzer is
//! token-level: [`lexer`] produces a full Rust token stream (identifiers,
//! puncts, literals, lifetimes, comments) with byte spans and
//! `#[cfg(test)]` flags, and [`rules`] walks it with three rule families
//! beyond the original determinism set:
//!
//! - **D001–D003** — determinism: no arbitrary-order collections,
//!   wall-clock reads, or ambient randomness.
//! - **P001** — panic-freedom, ratcheted per file via
//!   `LINT_baseline.json`.
//! - **U001/A001** — unsafe hygiene and the allow-annotation grammar.
//! - **R001–R003** — race patterns: undocumented `unsafe impl Send/Sync`,
//!   raw `&mut *` aliasing in pool closures outside the SendPtr idiom,
//!   and cross-function Mutex lock-order cycles (a workspace-wide graph,
//!   assembled here from per-file edges).
//! - **F001–F003** — float determinism: libm transcendentals, truncating
//!   casts, unpinned accumulation (all ratcheted).
//! - **L001** — the DESIGN.md §3 dependency layering.
//!
//! `--explain RULE` prints the long-form rationale; `--json PATH` writes
//! the machine-readable report CI uploads next to the bench baselines.

pub mod lexer;
pub mod rules;

use rotary_core::json::{self, Json};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

pub use rules::{FileScan, LockEdge, Violation};

/// The ratchet baseline file, at the workspace root.
pub const BASELINE_FILE: &str = "LINT_baseline.json";

/// Per-rule, per-file site counts (only files with at least one site).
pub type RatchetCounts = BTreeMap<&'static str, BTreeMap<String, u64>>;

/// Everything learned from one pass over the workspace sources.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Hard violations (non-ratcheted rules, R003 cycles included),
    /// sorted by (path, line, col, rule).
    pub violations: Vec<Violation>,
    /// Every site of a ratcheted rule, sorted; gated by [`gate`].
    pub ratchet_sites: Vec<Violation>,
    /// Per-rule per-file ratchet counts.
    pub ratchet_counts: RatchetCounts,
    /// All lock-order edges observed (inputs of the R003 cycle check;
    /// kept for the JSON report).
    pub lock_edges: Vec<LockEdge>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// The checked-in ratchet state: per-rule per-file site counts that may
/// only decrease. Schema: one top-level object per ratcheted rule id
/// (`{"P001": {"path": n, …}, "F001": {…}, …}`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// rule id → path → allowed site count.
    pub counts: RatchetCounts,
}

impl Baseline {
    /// Parses the baseline file contents. Every top-level key must be a
    /// ratcheted rule id; missing rules default to empty (zero sites).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text).map_err(|e| format!("{BASELINE_FILE}: {e}"))?;
        let Json::Obj(rules_obj) = &doc else {
            return Err(format!("{BASELINE_FILE}: top level is not an object"));
        };
        let mut counts = RatchetCounts::new();
        for (rule_name, files) in rules_obj {
            let Some(rule) = rules::rule(rule_name).filter(|r| r.ratcheted) else {
                return Err(format!(
                    "{BASELINE_FILE}: '{rule_name}' is not a ratcheted rule (known: {})",
                    rules::ratcheted_rules().collect::<Vec<_>>().join(", ")
                ));
            };
            let Json::Obj(pairs) = files else {
                return Err(format!("{BASELINE_FILE}: \"{rule_name}\" is not an object"));
            };
            let mut per_file = BTreeMap::new();
            for (path, count) in pairs {
                let n = count.as_u64().ok_or_else(|| {
                    format!("{BASELINE_FILE}: {rule_name} count for '{path}' is not a count")
                })?;
                per_file.insert(path.clone(), n);
            }
            // Empty cells are omitted so parse(to_json(b)) == b.
            if !per_file.is_empty() {
                counts.insert(rule.id, per_file);
            }
        }
        Ok(Baseline { counts })
    }

    /// Serialises to pretty JSON with sorted keys (ends with a newline).
    /// Every ratcheted rule appears, empty or not, so the schema is
    /// self-documenting.
    pub fn to_json(&self) -> String {
        let rules_obj: Vec<(&str, Json)> = rules::ratcheted_rules()
            .map(|id| {
                let pairs = self
                    .counts
                    .get(id)
                    .map(|per_file| {
                        per_file
                            .iter()
                            .map(|(path, n)| (path.clone(), Json::Num(*n as f64)))
                            .collect()
                    })
                    .unwrap_or_default();
                (id, Json::Obj(pairs))
            })
            .collect();
        let mut text = Json::obj(rules_obj).to_pretty();
        text.push('\n');
        text
    }

    /// Builds a baseline that exactly matches an analysis (what
    /// `--update-baseline` writes).
    pub fn from_analysis(analysis: &Analysis) -> Baseline {
        Baseline { counts: analysis.ratchet_counts.clone() }
    }

    /// Total allowed sites across all rules and files.
    pub fn total(&self) -> u64 {
        self.counts.values().flat_map(|m| m.values()).sum()
    }
}

/// What the ratchet gate concluded.
#[derive(Debug, Default)]
pub struct GateReport {
    /// All reportable violations: the hard ones plus ratcheted sites in
    /// (rule, file) cells over their baseline count. Sorted.
    pub violations: Vec<Violation>,
    /// (rule, file) cells whose count fell below the baseline — the tool
    /// demands a `--update-baseline` run so the ratchet only tightens.
    pub stale: Vec<String>,
}

/// Scans every `.rs` file under `root` — crate sources, the root `src/`
/// and `tests/`, everything except `target/` and hidden directories (each
/// rule then applies its own documented scope; see `rules::RULES`).
pub fn analyze_workspace(root: &Path) -> Result<Analysis, String> {
    let mut files = Vec::new();
    walk(root, "", &mut files)?;
    files.sort();
    let mut analysis = Analysis { files_scanned: files.len(), ..Analysis::default() };
    for rel in &files {
        let src =
            fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))?;
        let scan = rules::scan_file(rel, &src);
        for site in &scan.ratchet_sites {
            *analysis
                .ratchet_counts
                .entry(site.rule)
                .or_default()
                .entry(site.path.clone())
                .or_insert(0) += 1;
        }
        analysis.violations.extend(scan.violations);
        analysis.ratchet_sites.extend(scan.ratchet_sites);
        analysis.lock_edges.extend(scan.lock_edges);
    }
    analysis.violations.extend(lock_cycle_violations(&analysis.lock_edges));
    analysis.violations.sort();
    analysis.ratchet_sites.sort();
    analysis.lock_edges.sort();
    Ok(analysis)
}

/// R003, the workspace half: merges per-file lock-order edges into one
/// graph and flags every edge that participates in a cycle (including
/// self-loops — re-acquiring a lock already held).
pub fn lock_cycle_violations(edges: &[LockEdge]) -> Vec<Violation> {
    let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        graph.entry(e.held.as_str()).or_default().insert(e.acquired.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(node) = stack.pop() {
            for &next in graph.get(node).into_iter().flatten() {
                if next == to {
                    return true;
                }
                if seen.insert(next) {
                    stack.push(next);
                }
            }
        }
        false
    };
    let mut out = Vec::new();
    for e in edges {
        let cyclic = e.held == e.acquired || reaches(&e.acquired, &e.held);
        if cyclic {
            let message = if e.held == e.acquired {
                format!(
                    "lock '{}' acquired in {}() while already held — self-deadlock on a \
                     non-reentrant Mutex",
                    e.acquired, e.func
                )
            } else {
                format!(
                    "lock '{}' acquired in {}() while '{}' is held, but another site \
                     orders them the other way (lock-order cycle); acquire locks in one \
                     global order or add a justified allow",
                    e.acquired, e.func, e.held
                )
            };
            out.push(Violation {
                path: e.path.clone(),
                line: e.line,
                col: e.col,
                rule: "R003",
                message,
            });
        }
    }
    out
}

/// Deterministic recursive walk: entries sorted by name, directories named
/// `target` or starting with `.` skipped.
fn walk(root: &Path, rel: &str, out: &mut Vec<String>) -> Result<(), String> {
    let dir = if rel.is_empty() { root.to_path_buf() } else { root.join(rel) };
    let entries = fs::read_dir(&dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    let mut names: Vec<(String, bool)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_dir = entry
            .file_type()
            .map_err(|e| format!("cannot stat {}/{name}: {e}", dir.display()))?
            .is_dir();
        names.push((name, is_dir));
    }
    names.sort();
    for (name, is_dir) in names {
        if name.starts_with('.') || (is_dir && name == "target") {
            continue;
        }
        let sub = if rel.is_empty() { name.clone() } else { format!("{rel}/{name}") };
        if is_dir {
            walk(root, &sub, out)?;
        } else if name.ends_with(".rs") {
            out.push(sub);
        }
    }
    Ok(())
}

/// Applies the ratchet: hard violations always report; ratcheted sites
/// report only for (rule, file) cells over their baseline count; cells
/// under their count are flagged stale so the improvement gets locked in.
pub fn gate(analysis: &Analysis, baseline: &Baseline) -> GateReport {
    let mut report = GateReport { violations: analysis.violations.clone(), ..Default::default() };
    for rule in rules::ratcheted_rules() {
        let empty = BTreeMap::new();
        let current_counts = analysis.ratchet_counts.get(rule).unwrap_or(&empty);
        let baseline_counts = baseline.counts.get(rule).unwrap_or(&empty);
        let files: BTreeSet<&String> =
            current_counts.keys().chain(baseline_counts.keys()).collect();
        for file in files {
            let current = current_counts.get(file).copied().unwrap_or(0);
            let allowed = baseline_counts.get(file).copied().unwrap_or(0);
            if current > allowed {
                for site in
                    analysis.ratchet_sites.iter().filter(|s| s.rule == rule && s.path == **file)
                {
                    let mut v = site.clone();
                    v.message =
                        format!("{} ({current} sites, baseline allows {allowed})", v.message);
                    report.violations.push(v);
                }
            } else if current < allowed {
                report.stale.push(format!(
                    "{file}: {current} {rule} sites, baseline says {allowed} — run \
                     `cargo run -p rotary-lint -- --update-baseline` to lock the improvement in"
                ));
            }
        }
    }
    report.violations.sort();
    report
}

/// The machine-readable report written by `--json` (schema documented in
/// DESIGN.md §11): file count, gated violations (spans included), stale
/// ratchet cells, current ratchet counts, and the lock-order edges.
pub fn report_json(analysis: &Analysis, report: &GateReport) -> String {
    let violations: Vec<Json> = report
        .violations
        .iter()
        .map(|v| {
            Json::obj(vec![
                ("path", Json::Str(v.path.clone())),
                ("line", Json::Num(v.line as f64)),
                ("col", Json::Num(v.col as f64)),
                ("rule", Json::Str(v.rule.to_string())),
                ("message", Json::Str(v.message.clone())),
            ])
        })
        .collect();
    let ratchet: Vec<(&str, Json)> = rules::ratcheted_rules()
        .map(|id| {
            let pairs = analysis
                .ratchet_counts
                .get(id)
                .map(|per_file| {
                    per_file.iter().map(|(p, n)| (p.clone(), Json::Num(*n as f64))).collect()
                })
                .unwrap_or_default();
            (id, Json::Obj(pairs))
        })
        .collect();
    let lock_edges: Vec<Json> = analysis
        .lock_edges
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("path", Json::Str(e.path.clone())),
                ("line", Json::Num(e.line as f64)),
                ("func", Json::Str(e.func.clone())),
                ("held", Json::Str(e.held.clone())),
                ("acquired", Json::Str(e.acquired.clone())),
            ])
        })
        .collect();
    let mut text = Json::obj(vec![
        ("files_scanned", Json::Num(analysis.files_scanned as f64)),
        ("violations", Json::Arr(violations)),
        ("stale", Json::Arr(report.stale.iter().map(|s| Json::Str(s.clone())).collect())),
        ("ratchet", Json::obj(ratchet)),
        ("lock_edges", Json::Arr(lock_edges)),
    ])
    .to_pretty();
    text.push('\n');
    text
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` — the lint root.
pub fn find_root(start: &Path) -> Result<std::path::PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)
                .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace Cargo.toml found above {}; pass --root",
                start.display()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips() {
        let mut p001 = BTreeMap::new();
        p001.insert("crates/a/src/lib.rs".to_string(), 3u64);
        p001.insert("src/main.rs".to_string(), 1u64);
        let mut f002 = BTreeMap::new();
        f002.insert("crates/a/src/lib.rs".to_string(), 7u64);
        let mut counts = RatchetCounts::new();
        counts.insert("P001", p001);
        counts.insert("F002", f002);
        let b = Baseline { counts };
        assert_eq!(Baseline::parse(&b.to_json()).unwrap(), b);
        assert_eq!(b.total(), 11);
    }

    #[test]
    fn baseline_rejects_malformed_documents() {
        assert!(Baseline::parse("{\"P001\": 3}").is_err());
        assert!(Baseline::parse("{\"P001\": {\"f.rs\": -1}}").is_err());
        assert!(Baseline::parse("not json").is_err());
        // Unknown and non-ratcheted top-level rules are schema errors.
        assert!(Baseline::parse("{\"Z999\": {}}").is_err());
        assert!(Baseline::parse("{\"D001\": {}}").is_err());
    }

    #[test]
    fn empty_baseline_parses_and_emits_every_ratcheted_rule() {
        let b = Baseline::parse("{}").unwrap();
        assert!(b.counts.is_empty());
        let emitted = b.to_json();
        for rule in rules::ratcheted_rules() {
            assert!(emitted.contains(&format!("\"{rule}\"")), "{rule} missing from {emitted}");
        }
    }

    fn analysis_with(rule: &'static str, path: &str, sites: usize) -> Analysis {
        let mut a = Analysis::default();
        if sites > 0 {
            a.ratchet_counts.entry(rule).or_default().insert(path.to_string(), sites as u64);
            for i in 0..sites {
                a.ratchet_sites.push(Violation {
                    path: path.to_string(),
                    line: i + 1,
                    col: 1,
                    rule,
                    message: "site".into(),
                });
            }
        }
        a
    }

    #[test]
    fn ratchet_reports_over_baseline_sites() {
        let analysis = analysis_with("P001", "src/x.rs", 2);
        let mut baseline = Baseline::default();
        baseline.counts.entry("P001").or_default().insert("src/x.rs".to_string(), 1);
        let report = gate(&analysis, &baseline);
        assert_eq!(report.violations.len(), 2);
        assert!(report.violations[0].message.contains("baseline allows 1"));
        assert!(report.stale.is_empty());
    }

    #[test]
    fn ratchet_is_silent_at_exactly_the_baseline() {
        let analysis = analysis_with("F001", "src/x.rs", 2);
        let mut baseline = Baseline::default();
        baseline.counts.entry("F001").or_default().insert("src/x.rs".to_string(), 2);
        let report = gate(&analysis, &baseline);
        assert!(report.violations.is_empty());
        assert!(report.stale.is_empty());
    }

    #[test]
    fn ratchet_flags_improvement_as_stale() {
        let analysis = analysis_with("P001", "src/x.rs", 1);
        let mut baseline = Baseline::default();
        baseline.counts.entry("P001").or_default().insert("src/x.rs".to_string(), 3);
        baseline.counts.entry("F002").or_default().insert("src/gone.rs".to_string(), 2);
        let report = gate(&analysis, &baseline);
        assert!(report.violations.is_empty());
        assert_eq!(report.stale.len(), 2);
    }

    #[test]
    fn ratchet_rules_gate_independently() {
        // 2 P001 sites allowed, but the same file's F002 cell is over.
        let mut analysis = analysis_with("P001", "src/x.rs", 2);
        let over = analysis_with("F002", "src/x.rs", 1);
        analysis.ratchet_counts.extend(over.ratchet_counts);
        analysis.ratchet_sites.extend(over.ratchet_sites);
        let mut baseline = Baseline::default();
        baseline.counts.entry("P001").or_default().insert("src/x.rs".to_string(), 2);
        let report = gate(&analysis, &baseline);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "F002");
    }

    fn edge(path: &str, func: &str, held: &str, acquired: &str) -> LockEdge {
        LockEdge {
            path: path.into(),
            line: 1,
            col: 1,
            func: func.into(),
            held: held.into(),
            acquired: acquired.into(),
        }
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        // a→b everywhere, plus unrelated b→c: a DAG, no cycle.
        let edges = vec![
            edge("x.rs", "f", "a", "b"),
            edge("y.rs", "g", "a", "b"),
            edge("y.rs", "g", "b", "c"),
        ];
        assert!(lock_cycle_violations(&edges).is_empty());
    }

    #[test]
    fn inverted_order_across_functions_is_a_cycle() {
        let edges = vec![edge("x.rs", "f", "a", "b"), edge("y.rs", "g", "b", "a")];
        let got = lock_cycle_violations(&edges);
        assert_eq!(got.len(), 2, "both edges of the cycle fire: {got:?}");
        assert!(got.iter().all(|v| v.rule == "R003"));
        assert!(got[0].message.contains("lock-order cycle"));
    }

    #[test]
    fn self_loop_is_a_self_deadlock() {
        let edges = vec![edge("x.rs", "f", "a", "a")];
        let got = lock_cycle_violations(&edges);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("self-deadlock"), "{}", got[0].message);
    }

    #[test]
    fn three_party_cycle_is_detected() {
        let edges = vec![
            edge("x.rs", "f", "a", "b"),
            edge("y.rs", "g", "b", "c"),
            edge("z.rs", "h", "c", "a"),
        ];
        assert_eq!(lock_cycle_violations(&edges).len(), 3);
    }

    #[test]
    fn report_json_carries_spans_and_ratchet_counts() {
        let analysis = analysis_with("P001", "src/x.rs", 1);
        let baseline = Baseline::from_analysis(&analysis);
        let report = gate(&analysis, &baseline);
        let text = report_json(&analysis, &report);
        let doc = json::parse(&text).expect("report must be valid JSON");
        assert_eq!(doc.get("files_scanned").and_then(|j| j.as_u64()), Some(0));
        let ratchet = doc.get("ratchet").expect("ratchet object");
        let p001 = ratchet.get("P001").expect("P001 counts");
        assert_eq!(p001.get("src/x.rs").and_then(|j| j.as_u64()), Some(1));
    }

    #[test]
    fn workspace_walk_reaches_root_src_and_tests() {
        // Satellite: the walk must cover the root src/ and tests/ trees,
        // not just crates/*/src — D003 (ambient randomness) depends on it.
        let dir = std::env::temp_dir().join(format!("rotary-lint-walk-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for sub in ["src", "tests", "crates/x/src", "target/debug"] {
            fs::create_dir_all(dir.join(sub)).unwrap();
        }
        fs::write(dir.join("src/main.rs"), "fn main() { let r = thread_rng(); }\n").unwrap();
        fs::write(dir.join("tests/t.rs"), "#[test]\nfn t() { let r = thread_rng(); }\n").unwrap();
        fs::write(dir.join("crates/x/src/lib.rs"), "pub fn f() {}\n").unwrap();
        fs::write(dir.join("target/debug/skip.rs"), "fn ignored() { thread_rng(); }\n").unwrap();
        let analysis = analyze_workspace(&dir).unwrap();
        assert_eq!(analysis.files_scanned, 3, "target/ must be skipped");
        let d003: Vec<&str> = analysis
            .violations
            .iter()
            .filter(|v| v.rule == "D003")
            .map(|v| v.path.as_str())
            .collect();
        assert_eq!(d003, vec!["src/main.rs", "tests/t.rs"], "D003 covers root src/ AND tests/");
        let _ = fs::remove_dir_all(&dir);
    }
}
