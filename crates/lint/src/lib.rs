//! `rotary-lint` — an in-tree static-analysis pass enforcing the
//! determinism and robustness invariants the reproduction rests on.
//!
//! The whole experimental claim of this repository is that arbitration is
//! a pure function of `(seed, job, epoch)` — every table regenerates
//! bit-identically. That property is one `HashMap` iteration or one
//! `Instant::now()` away from silently eroding (PR 3 fixed exactly such a
//! bug), so this crate machine-checks it on every CI run:
//!
//! - **D001** — no `HashMap`/`HashSet` in the deterministic crates
//!   (core, engine, sim, aqp, dlt, faults); iteration order varies run to
//!   run.
//! - **D002** — no wall-clock reads (`Instant`, `SystemTime`) outside
//!   `rotary-bench`; data-plane components accept an injected probe.
//! - **D003** — no ambient randomness; all entropy flows from
//!   `rotary_sim::rng` named fork streams.
//! - **P001** — no `unwrap()`/`expect()`/`panic!` in non-test
//!   control-plane code, ratcheted: per-file counts live in
//!   `LINT_baseline.json` and may only go down.
//! - **U001** — every `unsafe` needs a `SAFETY:` comment.
//!
//! The scanner ([`lexer`]) is written from scratch (no `syn`) because the
//! workspace is dependency-free by policy; it masks strings, comments, and
//! `#[cfg(test)]` regions so the rules ([`rules`]) only ever see live
//! non-test code.

pub mod lexer;
pub mod rules;

use rotary_core::json::{self, Json};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

pub use rules::{FileScan, Violation};

/// The ratchet baseline file, at the workspace root.
pub const BASELINE_FILE: &str = "LINT_baseline.json";

/// Everything learned from one pass over the workspace sources.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Hard violations, sorted by (path, line, rule).
    pub violations: Vec<Violation>,
    /// Every `P001` site, sorted; gated against the baseline by [`gate`].
    pub p001_sites: Vec<Violation>,
    /// Per-file `P001` counts (files with at least one site).
    pub p001_counts: BTreeMap<String, u64>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// The checked-in ratchet state: per-file `P001` counts that may only
/// decrease.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Path → allowed `P001` site count.
    pub p001: BTreeMap<String, u64>,
}

impl Baseline {
    /// Parses the baseline file contents.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text).map_err(|e| format!("{BASELINE_FILE}: {e}"))?;
        let obj = doc
            .get("P001")
            .ok_or_else(|| format!("{BASELINE_FILE}: missing top-level \"P001\" object"))?;
        let Json::Obj(pairs) = obj else {
            return Err(format!("{BASELINE_FILE}: \"P001\" is not an object"));
        };
        let mut p001 = BTreeMap::new();
        for (path, count) in pairs {
            let n = count
                .as_u64()
                .ok_or_else(|| format!("{BASELINE_FILE}: count for '{path}' is not a count"))?;
            p001.insert(path.clone(), n);
        }
        Ok(Baseline { p001 })
    }

    /// Serialises to pretty JSON with sorted keys (ends with a newline).
    pub fn to_json(&self) -> String {
        let pairs =
            self.p001.iter().map(|(path, n)| (path.clone(), Json::Num(*n as f64))).collect();
        let mut text = Json::obj(vec![("P001", Json::Obj(pairs))]).to_pretty();
        text.push('\n');
        text
    }

    /// Builds a baseline that exactly matches an analysis (what
    /// `--update-baseline` writes).
    pub fn from_analysis(analysis: &Analysis) -> Baseline {
        Baseline { p001: analysis.p001_counts.clone() }
    }
}

/// What the ratchet gate concluded.
#[derive(Debug, Default)]
pub struct GateReport {
    /// All reportable violations: the hard ones plus `P001` sites in files
    /// whose count exceeds the baseline. Sorted by (path, line, rule).
    pub violations: Vec<Violation>,
    /// Files whose `P001` count fell below (or vanished from) the
    /// baseline — the tool demands a `--update-baseline` run so the
    /// ratchet can only tighten.
    pub stale: Vec<String>,
}

/// Scans every `.rs` file under `root` (skipping `target/`, hidden
/// directories, and anything outside the tree).
pub fn analyze_workspace(root: &Path) -> Result<Analysis, String> {
    let mut files = Vec::new();
    walk(root, "", &mut files)?;
    files.sort();
    let mut analysis = Analysis { files_scanned: files.len(), ..Analysis::default() };
    for rel in &files {
        let src =
            fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))?;
        let scan = rules::scan_file(rel, &src);
        if !scan.p001_sites.is_empty() {
            analysis.p001_counts.insert(rel.clone(), scan.p001_sites.len() as u64);
        }
        analysis.violations.extend(scan.violations);
        analysis.p001_sites.extend(scan.p001_sites);
    }
    analysis.violations.sort();
    analysis.p001_sites.sort();
    Ok(analysis)
}

/// Deterministic recursive walk: entries sorted by name, directories named
/// `target` or starting with `.` skipped.
fn walk(root: &Path, rel: &str, out: &mut Vec<String>) -> Result<(), String> {
    let dir = if rel.is_empty() { root.to_path_buf() } else { root.join(rel) };
    let entries = fs::read_dir(&dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    let mut names: Vec<(String, bool)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_dir = entry
            .file_type()
            .map_err(|e| format!("cannot stat {}/{name}: {e}", dir.display()))?
            .is_dir();
        names.push((name, is_dir));
    }
    names.sort();
    for (name, is_dir) in names {
        if name.starts_with('.') || (is_dir && name == "target") {
            continue;
        }
        let sub = if rel.is_empty() { name.clone() } else { format!("{rel}/{name}") };
        if is_dir {
            walk(root, &sub, out)?;
        } else if name.ends_with(".rs") {
            out.push(sub);
        }
    }
    Ok(())
}

/// Applies the ratchet: hard violations always report; `P001` sites report
/// only for files over their baseline count; files under their count are
/// flagged stale so the improvement gets locked in.
pub fn gate(analysis: &Analysis, baseline: &Baseline) -> GateReport {
    let mut report = GateReport { violations: analysis.violations.clone(), ..Default::default() };
    let files: BTreeSet<&String> =
        analysis.p001_counts.keys().chain(baseline.p001.keys()).collect();
    for file in files {
        let current = analysis.p001_counts.get(file).copied().unwrap_or(0);
        let allowed = baseline.p001.get(file).copied().unwrap_or(0);
        if current > allowed {
            for site in analysis.p001_sites.iter().filter(|s| s.path == **file) {
                let mut v = site.clone();
                v.message = format!("{} ({current} sites, baseline allows {allowed})", v.message);
                report.violations.push(v);
            }
        } else if current < allowed {
            report.stale.push(format!(
                "{file}: {current} P001 sites, baseline says {allowed} — run \
                 `cargo run -p rotary-lint -- --update-baseline` to lock the improvement in"
            ));
        }
    }
    report.violations.sort();
    report
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` — the lint root.
pub fn find_root(start: &Path) -> Result<std::path::PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)
                .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace Cargo.toml found above {}; pass --root",
                start.display()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips() {
        let mut p001 = BTreeMap::new();
        p001.insert("crates/a/src/lib.rs".to_string(), 3u64);
        p001.insert("src/main.rs".to_string(), 1u64);
        let b = Baseline { p001 };
        assert_eq!(Baseline::parse(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn baseline_rejects_malformed_documents() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"P001\": 3}").is_err());
        assert!(Baseline::parse("{\"P001\": {\"f.rs\": -1}}").is_err());
        assert!(Baseline::parse("not json").is_err());
    }

    fn analysis_with(path: &str, sites: usize) -> Analysis {
        let mut a = Analysis::default();
        if sites > 0 {
            a.p001_counts.insert(path.to_string(), sites as u64);
            for i in 0..sites {
                a.p001_sites.push(Violation {
                    path: path.to_string(),
                    line: i + 1,
                    rule: "P001",
                    message: "unwrap() may panic in control-plane code".into(),
                });
            }
        }
        a
    }

    #[test]
    fn ratchet_reports_over_baseline_sites() {
        let analysis = analysis_with("src/x.rs", 2);
        let mut baseline = Baseline::default();
        baseline.p001.insert("src/x.rs".to_string(), 1);
        let report = gate(&analysis, &baseline);
        assert_eq!(report.violations.len(), 2);
        assert!(report.violations[0].message.contains("baseline allows 1"));
        assert!(report.stale.is_empty());
    }

    #[test]
    fn ratchet_is_silent_at_exactly_the_baseline() {
        let analysis = analysis_with("src/x.rs", 2);
        let mut baseline = Baseline::default();
        baseline.p001.insert("src/x.rs".to_string(), 2);
        let report = gate(&analysis, &baseline);
        assert!(report.violations.is_empty());
        assert!(report.stale.is_empty());
    }

    #[test]
    fn ratchet_flags_improvement_as_stale() {
        let analysis = analysis_with("src/x.rs", 1);
        let mut baseline = Baseline::default();
        baseline.p001.insert("src/x.rs".to_string(), 3);
        baseline.p001.insert("src/gone.rs".to_string(), 2);
        let report = gate(&analysis, &baseline);
        assert!(report.violations.is_empty());
        assert_eq!(report.stale.len(), 2);
    }
}
