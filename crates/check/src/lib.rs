//! A small, dependency-free property-testing harness.
//!
//! `rotary-check` replaces the external `proptest` crate so the workspace
//! builds and tests fully offline. A property is a closure over a
//! [`Source`] of random choices; the harness runs it over many seeded
//! cases, and when a case fails it **shrinks** the failure and prints a
//! seed that replays it:
//!
//! ```
//! use rotary_check::check;
//!
//! check("addition_commutes", |src| {
//!     let a = src.i64_in(-1000, 1000);
//!     let b = src.i64_in(-1000, 1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! * Every case is derived deterministically from the property name and the
//!   case index, so runs are reproducible without any global state.
//! * `ROTARY_CHECK_CASES=n` overrides the default of 256 cases per property.
//! * On failure the harness prints `ROTARY_CHECK_SEED=<seed>`; exporting
//!   that variable makes every `check` call replay exactly that one case.
//!
//! Shrinking works on the *choice tape*: the raw `u64` stream a failing
//! case consumed is recorded, then greedily simplified (truncate, zero,
//! halve, decrement) while the property keeps failing. Because generators
//! re-interpret the simplified tape through the same bounded draws, a
//! shrunken counterexample always stays inside the generator's domain.

use std::panic::{self, AssertUnwindSafe};

/// Default number of cases per property.
pub const DEFAULT_CASES: usize = 256;

const GOLDEN: u64 = 0x9e3779b97f4a7c15;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// A xoshiro256++ generator private to the harness (the production RNG
/// lives in `rotary-sim`; duplicating ~20 lines here keeps `rotary-check`
/// dependency-free and usable from `rotary-core`'s dev-tests without a
/// cycle).
struct Rng {
    s: [u64; 4],
}

impl Rng {
    fn seed_from_u64(seed: u64) -> Rng {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        Rng { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

enum Choices {
    /// Fresh case: draw from the RNG and record every raw value.
    Record(Rng),
    /// Shrink replay: consume a previously recorded (and mutated) tape;
    /// draws past the end yield 0, the simplest choice.
    Replay(Vec<u64>, usize),
}

/// The stream of random choices a property draws its inputs from.
///
/// All draws bottom out in [`Source::raw`], one tape entry per draw, so the
/// shrinker can simplify a failure positionally. Bounded draws map the raw
/// value with a modulo rather than rejection sampling — a negligible bias
/// for testing, and it keeps tape replay aligned.
pub struct Source {
    choices: Choices,
    tape: Vec<u64>,
}

impl Source {
    fn recording(seed: u64) -> Source {
        Source { choices: Choices::Record(Rng::seed_from_u64(seed)), tape: Vec::new() }
    }

    fn replaying(tape: Vec<u64>) -> Source {
        Source { choices: Choices::Replay(tape, 0), tape: Vec::new() }
    }

    /// The next raw choice. Every other draw is a deterministic function of
    /// raw values, which is what makes tape shrinking sound.
    pub fn raw(&mut self) -> u64 {
        let value = match &mut self.choices {
            Choices::Record(rng) => rng.next_u64(),
            Choices::Replay(tape, pos) => {
                let v = tape.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                v
            }
        };
        self.tape.push(value);
        value
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "u64_in: empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.raw();
        }
        lo + self.raw() % (span + 1)
    }

    /// Uniform `i64` in `[lo, hi]` (inclusive).
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "i64_in: empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128) as u64;
        if span == u64::MAX {
            return self.raw() as i64;
        }
        (lo as i128 + (self.raw() % (span + 1)) as i128) as i64
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi]` (inclusive).
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(lo as u64, hi as u64) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "f64_in: empty range {lo}..{hi}");
        lo + self.unit_f64() * (hi - lo)
    }

    /// An arbitrary `f64` bit pattern — includes ±∞, NaN, and subnormals.
    /// Use for properties that must hold for *any* float.
    pub fn any_f64(&mut self) -> f64 {
        f64::from_bits(self.raw())
    }

    /// True with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.usize_in(0, items.len() - 1)]
    }

    /// A vector of `n ∈ [min_len, max_len]` elements drawn by `gen`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut gen: impl FnMut(&mut Source) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(min_len, max_len);
        (0..n).map(|_| gen(self)).collect()
    }
}

fn cases_from_env() -> usize {
    std::env::var("ROTARY_CHECK_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CASES)
}

fn replay_seed_from_env() -> Option<u64> {
    let raw = std::env::var("ROTARY_CHECK_SEED").ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    };
    // A typo'd seed must not silently fall back to a full run — the user
    // asked for one specific case.
    Some(parsed.unwrap_or_else(|| {
        panic!("rotary-check: ROTARY_CHECK_SEED={raw:?} is not a decimal or 0x-hex u64")
    }))
}

/// The seed of case `index` of the named property.
fn case_seed(name: &str, index: usize) -> u64 {
    let mut state = fnv1a(name.as_bytes()) ^ (index as u64).wrapping_mul(GOLDEN);
    splitmix64(&mut state)
}

/// Runs the property once and reports failure instead of unwinding.
/// Returns the recorded tape on failure.
fn run_once(
    prop: &(impl Fn(&mut Source) + panic::RefUnwindSafe),
    source: Source,
) -> Result<(), Vec<u64>> {
    let mut source = source;
    let result = panic::catch_unwind(AssertUnwindSafe(|| prop(&mut source)));
    match result {
        Ok(()) => Ok(()),
        Err(_) => Err(source.tape),
    }
}

fn still_fails(
    prop: &(impl Fn(&mut Source) + panic::RefUnwindSafe),
    tape: Vec<u64>,
) -> Option<Vec<u64>> {
    run_once(prop, Source::replaying(tape)).err()
}

/// Greedy tape shrinking: repeatedly try simpler tapes (shorter, then
/// element-wise smaller) and keep any that still fails, until a full pass
/// makes no progress or the attempt budget runs out.
fn shrink(prop: &(impl Fn(&mut Source) + panic::RefUnwindSafe), mut tape: Vec<u64>) -> Vec<u64> {
    let mut attempts = 0usize;
    const MAX_ATTEMPTS: usize = 2000;
    loop {
        let mut improved = false;

        // Truncation: drop the tail, halving first for big jumps.
        for keep in [tape.len() / 2, tape.len().saturating_sub(1)] {
            if keep < tape.len() && attempts < MAX_ATTEMPTS {
                attempts += 1;
                if let Some(t) = still_fails(prop, tape[..keep].to_vec()) {
                    tape = t;
                    improved = true;
                }
            }
        }

        // Element-wise simplification toward zero.
        let mut i = 0;
        while i < tape.len() && attempts < MAX_ATTEMPTS {
            let original = tape[i];
            for candidate in [0, original / 2, original.saturating_sub(1)] {
                if candidate >= original {
                    continue;
                }
                attempts += 1;
                let mut mutated = tape.clone();
                mutated[i] = candidate;
                if let Some(t) = still_fails(prop, mutated) {
                    tape = t;
                    improved = true;
                    break;
                }
            }
            i += 1;
        }

        if !improved || attempts >= MAX_ATTEMPTS {
            return tape;
        }
    }
}

/// Runs `prop` over many seeded cases, shrinking and reporting any failure.
///
/// `name` must be unique per property (the test function's name is the
/// convention); it keys the deterministic per-case seeds.
///
/// On failure, prints the failing case's replay seed, shrinks the choice
/// tape, and re-runs the shrunken case *without* catching the panic so the
/// original assertion message reaches the test runner.
pub fn check(name: &str, prop: impl Fn(&mut Source) + panic::RefUnwindSafe) {
    if let Some(seed) = replay_seed_from_env() {
        // Replay mode: run exactly one case, panicking normally.
        eprintln!("rotary-check: replaying `{name}` with ROTARY_CHECK_SEED={seed}");
        let mut source = Source::recording(seed);
        prop(&mut source);
        return;
    }

    let cases = cases_from_env();
    for index in 0..cases {
        let seed = case_seed(name, index);
        // Silence the per-candidate panic output while probing and
        // shrinking; the final replay below panics with the hook restored.
        let failing = {
            let hook = panic::take_hook();
            panic::set_hook(Box::new(|_| {}));
            let failing =
                run_once(&prop, Source::recording(seed)).err().map(|tape| shrink(&prop, tape));
            panic::set_hook(hook);
            failing
        };
        if let Some(tape) = failing {
            eprintln!(
                "rotary-check: property `{name}` failed at case {index}/{cases} \
                 (shrunk to {} choices)",
                tape.len()
            );
            eprintln!("rotary-check: replay with ROTARY_CHECK_SEED={seed}");
            // Deliberately unwinds with the property's own assertion message.
            let mut source = Source::replaying(tape);
            prop(&mut source);
            unreachable!("shrunken case stopped failing on final replay");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;

    #[test]
    fn passing_property_runs_all_cases() {
        // Counts cases via the tape: every case draws once.
        check("passing_property_runs_all_cases", |src| {
            let v = src.u64_in(0, 9);
            assert!(v < 10);
        });
    }

    #[test]
    fn failing_property_panics_with_original_message() {
        let result = catch_unwind(|| {
            check("failing_property_panics", |src| {
                let v = src.u64_in(0, 100);
                assert!(v < 101, "impossible");
                assert!(v < 50, "v was {v}");
            });
        });
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("v was"), "got panic message {msg:?}");
    }

    #[test]
    fn shrinking_reaches_a_minimal_counterexample() {
        // Property fails for v >= 50; the minimal failing tape re-interprets
        // to exactly 50 (tape entries shrink toward 0, and 50 is the
        // smallest raw % 101 that still fails).
        let result = catch_unwind(|| {
            check("shrinking_reaches_minimal", |src| {
                let v = src.u64_in(0, 100);
                assert!(v < 50, "counterexample {v}");
            });
        });
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("counterexample 50"), "shrink did not minimise: {msg:?}");
    }

    #[test]
    fn case_seeds_are_deterministic_and_name_keyed() {
        assert_eq!(case_seed("a", 0), case_seed("a", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
    }

    #[test]
    fn draws_respect_bounds() {
        check("draws_respect_bounds", |src| {
            let u = src.u64_in(5, 9);
            assert!((5..=9).contains(&u));
            let i = src.i64_in(-3, 3);
            assert!((-3..=3).contains(&i));
            let f = src.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let items = [10, 20, 30];
            assert!(items.contains(src.pick(&items)));
            let v = src.vec_of(2, 5, |s| s.u64_in(0, 1));
            assert!((2..=5).contains(&v.len()));
        });
    }

    #[test]
    fn replay_tape_out_of_bounds_yields_zero() {
        let mut src = Source::replaying(vec![7]);
        assert_eq!(src.raw(), 7);
        assert_eq!(src.raw(), 0);
        assert_eq!(src.u64_in(3, 9), 3, "exhausted tape draws the smallest value");
    }

    #[test]
    fn full_u64_range_is_reachable() {
        let mut src = Source::replaying(vec![u64::MAX, u64::MAX]);
        assert_eq!(src.u64_in(0, u64::MAX), u64::MAX);
        assert_eq!(src.i64_in(i64::MIN, i64::MAX), -1);
    }
}
