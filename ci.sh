#!/usr/bin/env sh
# Tier-1 verification, fully offline. The workspace has no external
# dependencies by policy (see DESIGN.md), so this must pass with the
# network disabled and an empty cargo registry.
set -eu

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test --workspace =="
cargo test --workspace -q
