#!/usr/bin/env sh
# Tier-1 verification, fully offline. The workspace has no external
# dependencies by policy (see DESIGN.md), so this must pass with the
# network disabled and an empty cargo registry.
#
# Usage:
#   ./ci.sh                 format + lint + build + test
#   ./ci.sh --bench         ... then run the engine, arbitration, and
#                           serve benches and compare against the
#                           checked-in BENCH_engine.json (±25%),
#                           BENCH_arbitration.json (+35%, plus the
#                           sub-linear scaling assertion), and
#                           BENCH_serve.json (+35% on p99 wait and
#                           ns/submission, plus the socket front-end's
#                           p50/p99 latency) baselines, failing on
#                           regression
#   ./ci.sh --bench-update  ... then refresh all three baselines in place
#   ./ci.sh --lint-update   refresh LINT_baseline.json (the ratchet for
#                           P001/F001/F002/F003) in place instead of
#                           gating on it
set -eu

export CARGO_NET_OFFLINE=true

MODE="${1:-}"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

# Determinism & robustness invariants (DESIGN.md §11): fails on any
# D/U/A/R/L-rule violation and on ratchet drift (P001/F001/F002/F003) in
# either direction — a count above LINT_baseline.json is a regression,
# below it a stale baseline that --lint-update locks in. The machine-
# readable report (spans, ratchet counts, the R003 lock-order graph) lands
# in target/lint-report.json; CI uploads it as a workflow artifact.
echo "== rotary-lint =="
if [ "$MODE" = "--lint-update" ]; then
    cargo run -q -p rotary-lint -- --update-baseline
else
    cargo run -q -p rotary-lint -- --json target/lint-report.json
fi

echo "== cargo build --release =="
cargo build --release

echo "== cargo test --workspace =="
cargo test --workspace -q

# The chaos suite runs as part of the workspace tests above; re-running it
# with the case count pinned guards against a lowered ROTARY_CHECK_CASES in
# the ambient environment quietly weakening the fault-injection coverage.
echo "== chaos property suite (256 fault plans) =="
ROTARY_CHECK_CASES=256 cargo test -q --test chaos

# Control-plane equivalence gate (DESIGN.md §13): the indexed arbitration
# path (priority indexes, incremental refits, decision memoization) must
# stay byte-identical to the retired dense re-sort oracle, including under
# chaos fault plans. Pinned for the same reason as the chaos suite.
echo "== control-plane equivalence suite (256 cases) =="
ROTARY_CHECK_CASES=256 cargo test -q --test control_plane

# Kernel-equivalence gate (DESIGN.md §5): every vectorized kernel in the
# columnar data plane must stay bit-identical to its row-at-a-time oracle,
# including NaN/inf payloads and empty/full selections. Pinned at 256 cases
# per property for the same reason as the chaos suite above.
echo "== kernel-equivalence property suite (256 cases per kernel) =="
ROTARY_CHECK_CASES=256 cargo test -q -p rotary-engine --test kernel_equivalence

# Durable-recovery gate (DESIGN.md §12): the store's corrupted-fixture
# suite must keep turning damaged generation files (torn writes, bit
# flips, truncated headers) into typed errors with newest-valid fallback —
# rerun by name so a fixture regression is called out here rather than
# buried in the workspace test run.
echo "== rotary-store corrupted-fixture suite =="
cargo test -q -p rotary-store

# Service-layer gate (DESIGN.md §14): admission edge cases (quota refill
# boundaries, drain-time queue pressure, shed/complete races, resume with
# a queued backlog) as 256-case property suites, plus the AQP-backed kill
# chains and the overload determinism assertions. Pinned for the same
# reason as the chaos suite.
echo "== rotary-serve admission suite (256 cases) =="
ROTARY_CHECK_CASES=256 cargo test -q --test serve
cargo test -q -p rotary-serve

# Network front-end gate (DESIGN.md §15): the framed wire codec property
# suite (256 cases per property, plus the checked-in corrupted-frame
# fixtures), the loopback transport smoke tests, and the socket chaos run
# that must stay byte-identical to the in-process daemon under torn
# writes, bit flips, resets, dribbled bytes and reconnect storms. Rerun
# by name so a wire regression is called out here rather than buried in
# the workspace test run.
echo "== rotary-serve wire =="
ROTARY_CHECK_CASES=256 cargo test -q -p rotary-serve --test wire_props
cargo test -q -p rotary-serve --test transport_loopback --test net_chaos

case "$MODE" in
--bench)
    echo "== bench gate (BENCH_engine.json, ±25%) =="
    cargo build --release -q -p rotary-bench
    ./target/release/bench_engine --check BENCH_engine.json
    # Control-plane strong scaling (DESIGN.md §13): per-event arbitration
    # cost at 100/1k/10k/100k concurrent jobs, gated per scale and on the
    # fitted 1k→100k scaling exponent staying sub-linear.
    echo "== arbitration gate (BENCH_arbitration.json, +35% / sub-linear) =="
    ./target/release/bench_arbitration --check BENCH_arbitration.json
    # Service-layer load (DESIGN.md §14): one million closed-loop users
    # against the simulated backend; gates per-submission wall cost and
    # the (deterministic) p99 admission wait.
    echo "== serve gate (BENCH_serve.json, +35%) =="
    ./target/release/bench_serve --check BENCH_serve.json
    # Socket front-end load (DESIGN.md §15): an open-loop arrival schedule
    # over real loopback TCP; gates client-observed p50/p99 response
    # latency and the error-close canary.
    echo "== serve socket gate (BENCH_serve.json, +35%) =="
    ./target/release/bench_serve --socket --check BENCH_serve.json
    ;;
--bench-update)
    # Refreshing re-measures every throughput key from scratch, so the
    # columnar speedups act as a ratchet: a refresh that drops q6
    # seq/rowwise back toward pre-columnar numbers is a real regression
    # and should be investigated, not committed. The arbitration refresh
    # keeps its own ratchet: the sub-linearity assertion runs in --write
    # mode too, so a super-linear control plane cannot be baselined in.
    echo "== bench baseline refresh =="
    cargo build --release -q -p rotary-bench
    ./target/release/bench_engine --write BENCH_engine.json
    ./target/release/bench_arbitration --write BENCH_arbitration.json
    ./target/release/bench_serve --write BENCH_serve.json
    ./target/release/bench_serve --socket --write BENCH_serve.json
    ;;
--lint-update) ;;
"") ;;
*)
    echo "unknown option: $MODE (use --bench, --bench-update, or --lint-update)" >&2
    exit 2
    ;;
esac

echo "CI OK"
