#!/usr/bin/env sh
# Tier-1 verification, fully offline. The workspace has no external
# dependencies by policy (see DESIGN.md), so this must pass with the
# network disabled and an empty cargo registry.
#
# Usage:
#   ./ci.sh                 format + lint + build + test
#   ./ci.sh --bench         ... then run the engine bench and compare
#                           against the checked-in BENCH_engine.json
#                           baseline (±25%), failing on regression
#   ./ci.sh --bench-update  ... then refresh the baseline in place
set -eu

export CARGO_NET_OFFLINE=true

MODE="${1:-}"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test --workspace =="
cargo test --workspace -q

# The chaos suite runs as part of the workspace tests above; re-running it
# with the case count pinned guards against a lowered ROTARY_CHECK_CASES in
# the ambient environment quietly weakening the fault-injection coverage.
echo "== chaos property suite (256 fault plans) =="
ROTARY_CHECK_CASES=256 cargo test -q --test chaos

case "$MODE" in
--bench)
    echo "== bench gate (BENCH_engine.json, ±25%) =="
    ./target/release/bench_engine --check BENCH_engine.json
    ;;
--bench-update)
    echo "== bench baseline refresh =="
    ./target/release/bench_engine --write BENCH_engine.json
    ;;
"") ;;
*)
    echo "unknown option: $MODE (use --bench or --bench-update)" >&2
    exit 2
    ;;
esac

echo "CI OK"
